"""IMDB case study (paper Sec. 6.6 / Fig. 8).

Generates the IMDB-style case-study lake, retrieves k tuples with D3L,
Starmie (and their duplicate-free variants) and DUST, and reports how many
*new* unique titles / languages / filming locations each method adds to the
query table.

Run with:  python examples/imdb_case_study.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401

from repro.benchgen import generate_imdb_case_study
from repro.core import DustDiversifier
from repro.diversify import DiversificationRequest
from repro.embeddings import RobertaLikeModel
from repro.evaluation import prepare_query_workload
from repro.evaluation.case_study import case_study_series, tuples_from_table_union
from repro.search import D3LSearcher, StarmieSearcher


def main() -> None:
    k = 50
    columns_of_interest = ["title", "languages", "filming_locations"]
    benchmark = generate_imdb_case_study(
        num_movies=200, num_lake_tables=10, rows_per_table=60, query_rows=25, seed=4
    )
    query = benchmark.query_tables[0]
    print(f"Query: {query.name} with {query.num_rows} movies; lake of "
          f"{benchmark.lake.num_tables} unionable tables, k={k}\n")

    # Table-search baselines: union their top tables and LIMIT k.
    d3l = D3LSearcher()
    d3l.index(benchmark.lake)
    starmie = StarmieSearcher()
    starmie.index(benchmark.lake)
    d3l_tables = d3l.search_tables(query, benchmark.lake.num_tables)
    starmie_tables = starmie.search_tables(query, benchmark.lake.num_tables)

    methods = {
        "D3L": tuples_from_table_union(d3l_tables, query.columns, k),
        "D3L-D": tuples_from_table_union(d3l_tables, query.columns, k, deduplicate=True),
        "Starmie": tuples_from_table_union(starmie_tables, query.columns, k),
        "Starmie-D": tuples_from_table_union(starmie_tables, query.columns, k, deduplicate=True),
    }

    # DUST: diversify the unionable tuples of the lake.
    workload = prepare_query_workload(benchmark, query, RobertaLikeModel())
    dust = DustDiversifier()
    request = DiversificationRequest(
        query_embeddings=workload.query_embeddings,
        candidate_embeddings=workload.candidate_embeddings,
        k=min(k, workload.num_candidates),
    )
    selection = dust.select(request, table_ids=workload.table_ids)
    methods["DUST"] = [workload.candidates[index] for index in selection]

    series = case_study_series(query, methods, columns_of_interest)
    print(f"{'Method':<10} " + " ".join(f"{column:>20}" for column in columns_of_interest))
    print("-" * (12 + 21 * len(columns_of_interest)))
    for method, counts in series.items():
        print(
            f"{method:<10} "
            + " ".join(f"{counts[column]:>20}" for column in columns_of_interest)
        )
    print("\n(Each cell: number of new unique values the method adds to that query column.)")


if __name__ == "__main__":
    main()
