"""Example 1 of the paper, literally: parks, paintings and redundant copies.

Builds the exact tables of Fig. 1 — a parks query table, a near-copy lake
table, a non-unionable paintings table and a unionable parks table with new
information — and shows that a similarity-driven baseline returns the
redundant copy's tuples while DUST returns the novel ones (Fig. 1 (e) vs (f)).

Run with:  python examples/parks_discovery.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401

from repro import DataLake, Table
from repro.api import Discovery
from repro.search import StarmieSearcher


def build_tables() -> tuple[Table, DataLake]:
    """The query table (a) and lake tables (b)-(d) from Fig. 1 of the paper."""
    query = Table(
        name="query_parks",
        columns=["Park Name", "Supervisor", "City", "Country"],
        rows=[
            ("River Park", "Vera Onate", "Fresno", "USA"),
            ("West Lawn Park", "Paul Veliotis", "Chicago", "USA"),
            ("Hyde Park", "Jenny Rishi", "London", "UK"),
        ],
    )
    near_copy = Table(  # Fig. 1 (b): mostly a copy of the query table.
        name="lake_parks_copy",
        columns=["Park Name", "Supervisor", "Country"],
        rows=[
            ("River Park", "Vera Onate", "USA"),
            ("West Lawn Park", "Paul Veliotis", "USA"),
            ("Hyde Park", "Jenny Rishi", "UK"),
            ("Grant Park", "Alice Morgan", "USA"),
        ],
    )
    paintings = Table(  # Fig. 1 (c): not unionable with the query.
        name="lake_paintings",
        columns=["Painting", "Medium", "Dimensions", "Date", "Country"],
        rows=[
            ("Northern Lake", "Oil on canvas", "91.4 x 121.9 cm", 2006, "Canada"),
            ("Memory Landscape 2", "Mixed media", "33 x 324 cm", 2018, "USA"),
            ("Harbor Dusk", "Watercolor", "40 x 60 cm", 2011, "Canada"),
        ],
    )
    new_parks = Table(  # Fig. 1 (d): unionable AND novel.
        name="lake_parks_new",
        columns=["Park Name", "Park City", "Park Country", "Park Phone", "Supervised by"],
        rows=[
            ("Chippewa Park", "Brandon, MN", "USA", "773 731-0380", "Tim Erickson"),
            ("Lawler Park", "Chicago, IL", "USA", "773 284-7328", "Enrique Garcia"),
            ("Cedar Commons", "Madison, WI", "USA", "608 555-0110", "Nadia Khan"),
            ("Otter Creek Reserve", "Portland, OR", "USA", "503 555-0161", "Marco Rossi"),
        ],
    )
    lake = DataLake([near_copy, paintings, new_parks], name="fig1-lake")
    return query, lake


def main() -> None:
    query, lake = build_tables()

    # Baseline behaviour (paper Fig. 1 (e)): the most *unionable* tuples simply
    # repeat the query table, because the near-copy table is the most similar.
    starmie = StarmieSearcher()
    starmie.index(lake)
    baseline_tuples = starmie.search_tuples(query, k=4)
    print("Most unionable tuples (similarity-driven baseline):")
    for tuple_ in baseline_tuples:
        print(f"  from {tuple_.source_table}: {dict(tuple_.values)}")

    # DUST behaviour (paper Fig. 1 (f)): unionable AND diverse tuples, wired
    # declaratively through the discovery facade.
    discovery = Discovery.from_config(
        {
            "searcher": {"name": "overlap"},
            "column_encoder": {"name": "cell-level", "base": "fasttext"},
            "tuple_encoder": {"name": "roberta"},
            "pipeline": {"k": 4, "num_search_tables": 2, "min_query_rows": 3},
        }
    ).attach(lake)
    result = discovery.query(query).run()

    print("\nDiverse unionable tuples (DUST):")
    for tuple_ in result.selected_tuples:
        print(f"  from {tuple_.source_table}: {dict(tuple_.values)}")

    new_names = {
        str(t.values.get("Park Name"))
        for t in result.selected_tuples
        if t.values.get("Park Name") is not None
    } - {str(row[0]) for row in query.rows}
    print(f"\nNew park names added to the query table: {sorted(new_names)}")


if __name__ == "__main__":
    main()
