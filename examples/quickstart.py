"""Quickstart: run the full DUST pipeline on a small generated data lake.

This reproduces the scenario of the paper's Example 1 / Fig. 1 at library
scale: a query table about parks, a data lake containing near-copies of the
query plus genuinely new tables, and DUST returning k tuples that are both
unionable and *diverse* with respect to the query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DustPipeline, PipelineConfig
from repro.benchgen import generate_ugen_benchmark
from repro.embeddings import ColumnLevelColumnEncoder, RobertaLikeModel
from repro.search import ValueOverlapSearcher


def main() -> None:
    # 1. A small UGEN-style benchmark: topical query tables, a lake mixing
    #    unionable tables and same-topic distractors.
    benchmark = generate_ugen_benchmark(num_queries=3, seed=7)
    query = benchmark.query_tables[0]
    print(f"Query table: {query.name}  ({query.num_rows} rows, columns: {query.columns})")

    # 2. Assemble the pipeline: any union searcher + a column encoder for
    #    alignment + a tuple encoder for diversification.
    encoder = RobertaLikeModel()
    pipeline = DustPipeline(
        searcher=ValueOverlapSearcher(),
        column_encoder=ColumnLevelColumnEncoder(encoder),
        tuple_encoder=encoder,
        config=PipelineConfig(k=10, num_search_tables=6),
    ).index(benchmark.lake)

    # 3. Run Algorithm 1 end to end.
    result = pipeline.run(query)

    print("\nTop unionable tables found by search:")
    for hit in result.search_results[:5]:
        print(f"  {hit.rank:>2}. {hit.table_name}  (score {hit.score:.3f})")

    print(f"\nUnionable candidate tuples formed: {result.num_candidate_tuples}")
    print(f"Diverse tuples returned (k): {len(result.selected_tuples)}")

    diverse_table = result.as_table(query)
    print("\nDiverse unionable tuples (query schema):")
    print("  " + " | ".join(diverse_table.columns))
    for row in diverse_table.rows[:10]:
        print("  " + " | ".join("" if value is None else str(value) for value in row))

    scores = result.diversity()
    print(
        f"\nDiversity of the result: average={scores['average_diversity']:.3f}, "
        f"min={scores['min_diversity']:.3f}"
    )
    print("Stage timings (s):", {k: round(v, 3) for k, v in result.timings.items()})


if __name__ == "__main__":
    main()
