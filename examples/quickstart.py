"""Quickstart: run the full DUST pipeline through the unified discovery API.

This reproduces the scenario of the paper's Example 1 / Fig. 1 at library
scale: a query table about parks, a data lake containing near-copies of the
query plus genuinely new tables, and DUST returning k tuples that are both
unionable and *diverse* with respect to the query.

Everything is driven through the public front door — a declarative config,
the :class:`~repro.api.Discovery` facade and a fluent query — so swapping the
search backend or encoders is a one-line config change (see
``available_searchers()`` etc. for the registered component names).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401

from repro.api import Discovery, available_searchers
from repro.benchgen import generate_ugen_benchmark


def main() -> None:
    # 1. A small UGEN-style benchmark: topical query tables, a lake mixing
    #    unionable tables and same-topic distractors.
    benchmark = generate_ugen_benchmark(num_queries=3, seed=7)
    query = benchmark.query_tables[0]
    print(f"Query table: {query.name}  ({query.num_rows} rows, columns: {query.columns})")
    print(f"Registered search backends: {available_searchers()}")

    # 2. One declarative config wires the whole deployment: any registered
    #    union searcher + a column encoder for alignment + a tuple encoder
    #    for diversification.
    discovery = Discovery.from_config(
        {
            "searcher": {"name": "overlap"},
            "column_encoder": {"name": "column-level", "base": "roberta"},
            "tuple_encoder": {"name": "roberta"},
            "pipeline": {"k": 10, "num_search_tables": 6},
        }
    ).attach(benchmark.lake)

    # 3. Run Algorithm 1 end to end with a fluent query.
    result = discovery.query(query).k(10).run()

    print("\nTop unionable tables found by search:")
    for hit in result.search_results[:5]:
        print(f"  {hit.rank:>2}. {hit.table_name}  (score {hit.score:.3f})")

    print(f"\nUnionable candidate tuples formed: {result.result.num_candidate_tuples}")
    print(f"Diverse tuples returned (k): {len(result)}")

    diverse_table = result.as_table(query)
    print("\nDiverse unionable tuples (query schema):")
    print("  " + " | ".join(diverse_table.columns))
    for row in diverse_table.rows[:10]:
        print("  " + " | ".join("" if value is None else str(value) for value in row))

    scores = result.diversity()
    print(
        f"\nDiversity of the result: average={scores['average_diversity']:.3f}, "
        f"min={scores['min_diversity']:.3f}"
    )
    print("Stage timings (s):", {k: round(v, 3) for k, v in result.timings.items()})
    print("Provenance:", {k: str(v)[:16] for k, v in result.provenance.items()})


if __name__ == "__main__":
    main()
