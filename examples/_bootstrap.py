"""Make the in-repo ``repro`` package importable when it is not installed.

Every example does ``import _bootstrap  # noqa: F401`` as its first import.
When the package is pip-installed (``pip install -e .`` exposes the ``dust``
console script too) this is a no-op; otherwise the repository's ``src/``
directory is put on ``sys.path`` so the examples run straight from a clone.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
