"""Fine-tune the DUST tuple embedding model (paper Sec. 4 / Fig. 6).

Generates a TUS-style benchmark, builds the balanced tuple-pair fine-tuning
dataset, fine-tunes DUST (RoBERTa) and compares its unionability-prediction
accuracy against the un-finetuned BERT/RoBERTa/sBERT baselines.

Run with:  python examples/finetune_tuple_model.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401

from repro.benchgen import generate_finetuning_dataset, generate_tus_benchmark
from repro.evaluation.representation import (
    default_pretrained_baselines,
    evaluate_representation_models,
    format_representation_results,
)
from repro.models import FineTuneConfig, build_dust_model


def main() -> None:
    print("Generating TUS-style benchmark and fine-tuning pairs ...")
    benchmark = generate_tus_benchmark(
        num_base_tables=8, base_rows=60, lake_tables_per_base=6, num_queries=8, seed=0
    )
    dataset = generate_finetuning_dataset(benchmark, num_pairs=1200, seed=5)
    print(f"  pairs: {dataset.size}  split balance: {dataset.balance_report()}")

    print("\nFine-tuning DUST (RoBERTa) ...")
    config = FineTuneConfig(max_epochs=40, patience=8, batch_size=32)
    model, run = build_dust_model(dataset, base="roberta", config=config)
    print(
        f"  trained for {run.epochs_run} epochs "
        f"(best epoch {run.best_epoch}, early stop: {run.stopped_early})"
    )
    print(f"  final train loss: {run.train_losses[-1]:.4f}  "
          f"validation loss: {run.validation_losses[run.best_epoch]:.4f}")

    print("\nEvaluating against pre-trained baselines (Fig. 6):")
    models = dict(default_pretrained_baselines())
    models["dust (roberta)"] = model
    results = evaluate_representation_models(dataset, models)
    print(format_representation_results(results))


if __name__ == "__main__":
    main()
