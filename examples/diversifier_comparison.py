"""Compare diversification algorithms on one benchmark query (paper Table 2).

Runs GMC, GNE, CLT, SWAP, greedy Max-Min, random selection and DUST on the
same set of unionable tuples and prints the Average / Min Diversity scores and
runtimes of each — a single-query slice of the paper's Table 2.

Run with:  python examples/diversifier_comparison.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401

import time

from repro.api import DIVERSIFIERS, TUPLE_ENCODERS
from repro.benchgen import generate_ugen_benchmark
from repro.core import DustDiversifier, average_diversity, min_diversity
from repro.diversify import DiversificationRequest
from repro.evaluation import prepare_query_workload


def main() -> None:
    k = 20
    benchmark = generate_ugen_benchmark(num_queries=2, seed=5)
    query = benchmark.query_tables[0]
    workload = prepare_query_workload(benchmark, query, TUPLE_ENCODERS.create("roberta"))
    print(
        f"Query {query.name}: {workload.query_embeddings.shape[0]} query tuples, "
        f"{workload.num_candidates} unionable candidate tuples, k={k}"
    )

    # Every method is resolved by registry name — exactly what a config file
    # or the CLI would do.
    method_params = {
        "gne": {"iterations": 2, "max_swaps": 100},
        "random": {"seed": 1},
    }
    methods = {
        name: DIVERSIFIERS.create(name, **method_params.get(name, {}))
        for name in ("gmc", "gne", "clt", "swap", "maxmin", "random", "dust")
    }

    print(f"\n{'Method':<10} {'AvgDiv':>8} {'MinDiv':>8} {'Time (s)':>9}")
    print("-" * 40)
    for name, method in methods.items():
        request = DiversificationRequest(
            query_embeddings=workload.query_embeddings,
            candidate_embeddings=workload.candidate_embeddings,
            k=min(k, workload.num_candidates),
        )
        start = time.perf_counter()
        if isinstance(method, DustDiversifier):
            selection = method.select(request, table_ids=workload.table_ids)
        else:
            selection = method.select(request)
        elapsed = time.perf_counter() - start
        selected = workload.candidate_embeddings[selection]
        print(
            f"{name:<10} "
            f"{average_diversity(workload.query_embeddings, selected):>8.3f} "
            f"{min_diversity(workload.query_embeddings, selected):>8.3f} "
            f"{elapsed:>9.3f}"
        )


if __name__ == "__main__":
    main()
