"""Locating and measuring sharded backends for online rebalancing.

The rebalancing machinery itself lives on
:class:`~repro.search.sharded.ShardedSearcher` (it owns the shard state);
this module supplies the glue the
:class:`~repro.ingest.controller.IngestController` needs: unwrap a built
backend down to its sharded composite (the facade may wrap it in a
:class:`~repro.search.cascade.CascadeSearcher`), and read its load/skew so
the controller only pays for a rebalance when drift crossed the configured
threshold.
"""

from __future__ import annotations

from repro.search.base import TableUnionSearcher
from repro.search.sharded import ShardedSearcher, skew_of


def find_sharded(searcher: TableUnionSearcher | None) -> ShardedSearcher | None:
    """Unwrap ``searcher`` to the :class:`ShardedSearcher` inside, if any.

    Follows the cascade's ``base`` chain (a ``CascadeSearcher`` wraps its
    exact backend as ``self.base``); returns ``None`` for unsharded
    backends.
    """
    seen = 0
    while searcher is not None and seen < 8:  # defensively bounded unwrap
        if isinstance(searcher, ShardedSearcher):
            return searcher
        searcher = getattr(searcher, "base", None)
        seen += 1
    return None


def shard_loads(searcher: TableUnionSearcher | None) -> list[int] | None:
    """Per-shard cell-count loads of the sharded composite inside ``searcher``."""
    sharded = find_sharded(searcher)
    if sharded is None:
        return None
    return sharded.shard_loads()


def shard_skew(searcher: TableUnionSearcher | None) -> float | None:
    """Current load skew (``max/mean``) of the sharded composite, if any."""
    loads = shard_loads(searcher)
    if loads is None:
        return None
    return skew_of(loads)
