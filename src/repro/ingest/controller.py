"""The :class:`IngestController` — streaming ingestion for a deployment.

``Discovery.ingest()`` builds one controller per deployment (configured by
the :class:`~repro.api.config.DiscoveryConfig` ``ingest`` section).  It owns
the queue → registry → micro-batcher chain targeting the facade's attached
lake, runs every applied batch through :meth:`Discovery.resync` (per-shard
``update_index``) while holding the deployment's
:class:`~repro.serving.maintenance.ActivityGate`, checkpoints the journal
after each batch so re-anchoring consumers never hit the full-rebuild floor,
and triggers online shard rebalancing when size skew drifts past the
configured threshold.  The server's maintenance loop drives
:meth:`flush_if_due`/:meth:`maybe_rebalance` between request bursts; embedded
callers can flush explicitly or run the batcher's own timer thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.ingest.batcher import MicroBatcher
from repro.ingest.events import TableEvent, event_from_payload
from repro.ingest.queue import IngestQueue
from repro.ingest.rebalance import find_sharded
from repro.search.sharded import skew_of
from repro.utils.errors import IngestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> ingest)
    from repro.api.facade import Discovery
    from repro.serving.maintenance import ActivityGate


class IngestController:
    """Streaming write path for one :class:`~repro.api.facade.Discovery`.

    Thread-safe for producers: :meth:`submit`/:meth:`submit_many` may be
    called from any thread; flushing serialises internally and (with a gate)
    excludes live queries per batch.
    """

    def __init__(
        self,
        discovery: "Discovery",
        *,
        gate: "ActivityGate | None" = None,
        max_batch_events: int = 256,
        max_batch_bytes: int = 1_048_576,
        max_latency_seconds: float = 0.5,
        checkpoint: bool = True,
        rebalance_skew_threshold: float = 2.0,
        exclusive_timeout_seconds: float = 5.0,
    ) -> None:
        self.discovery = discovery
        lake = discovery.lake  # raises when not attached
        self.rebalance_skew_threshold = float(rebalance_skew_threshold)
        self.queue = IngestQueue(fingerprint_of=self._fingerprint_of)
        self.batcher = MicroBatcher(
            self.queue,
            lake,
            refresh=discovery.resync,
            gate=gate,
            max_events=max_batch_events,
            max_bytes=max_batch_bytes,
            max_latency_seconds=max_latency_seconds,
            checkpoint=checkpoint,
            exclusive_timeout=exclusive_timeout_seconds,
        )
        self._rebalances = 0
        self._rebalance_moved = 0

    # ------------------------------------------------------------------- gate
    @property
    def gate(self) -> "ActivityGate | None":
        return self.batcher.gate

    def bind_gate(self, gate: "ActivityGate | None") -> "IngestController":
        """(Re)bind the activity gate batches must hold exclusively."""
        self.batcher.gate = gate
        return self

    def _fingerprint_of(self, name: str) -> str | None:
        lake = self.batcher.lake
        if name not in lake:
            return None
        return lake.get(name).content_fingerprint()

    # ------------------------------------------------------------- submission
    def submit(self, event: "TableEvent | Mapping") -> bool:
        """Net one event (or its wire payload) into the queue."""
        if isinstance(event, Mapping):
            event = event_from_payload(event)
        elif not isinstance(event, TableEvent):
            raise IngestError(
                f"submit() accepts TableEvent or payload mappings, got "
                f"{type(event).__name__}"
            )
        return self.queue.submit(event)

    def submit_many(self, events: Iterable["TableEvent | Mapping"]) -> int:
        """Submit every event; returns how many left work pending."""
        return sum(1 for event in events if self.submit(event))

    # --------------------------------------------------------------- flushing
    @property
    def pending_events(self) -> int:
        return self.queue.pending_events

    @property
    def pending_bytes(self) -> int:
        return self.queue.pending_bytes

    def due(self) -> bool:
        """Whether a flush bound (count, bytes, latency) has tripped."""
        return self.batcher.due()

    def flush(self) -> list[dict]:
        """Apply all pending events now; one report dict per micro-batch."""
        return [report.to_dict() for report in self.batcher.flush()]

    def flush_if_due(self) -> list[dict]:
        """Flush only when a bound has tripped (maintenance-loop entry point)."""
        return [report.to_dict() for report in self.batcher.flush_if_due()]

    # ------------------------------------------------------------- rebalancing
    def maybe_rebalance(self, *, force: bool = False) -> list[dict]:
        """Rebalance every sharded backend whose size skew drifted too far.

        Walks the deployment's built backends, unwraps each to its sharded
        composite (if any), and — when the skew exceeds the configured
        threshold, or ``force`` is set — runs
        :meth:`~repro.search.sharded.ShardedSearcher.rebalance` under the
        gate's exclusive mode, so queries never observe a half-moved
        partition.  Returns one report per backend considered; a gate drain
        timeout skips that backend until the next cycle (never blocks
        traffic, never loses state).
        """
        reports: list[dict] = []
        for key in self.discovery.built_backends:
            sharded = find_sharded(self.discovery._searchers.get(key))
            if sharded is None:
                continue
            skew = skew_of(sharded.shard_loads())
            if not force and skew <= self.rebalance_skew_threshold:
                continue
            gate = self.gate
            if gate is not None and not gate.acquire_exclusive(
                timeout=self.batcher.exclusive_timeout
            ):
                reports.append(
                    {"backend": key, "rebalanced": False, "yielded": True}
                )
                continue
            try:
                report = sharded.rebalance(
                    skew_threshold=self.rebalance_skew_threshold
                )
            finally:
                if gate is not None:
                    gate.release_exclusive()
            if report.get("rebalanced"):
                self._rebalances += 1
                self._rebalance_moved += int(report.get("moved", 0))
            reports.append({"backend": key, **report})
        return reports

    # ------------------------------------------------------------------ stats
    @property
    def stats(self) -> dict:
        """Netting, batching and rebalancing counters plus pending state."""
        merged: dict = dict(self.queue.stats)
        merged.update(self.batcher.stats)
        merged.update(
            pending_events=self.pending_events,
            pending_bytes=self.pending_bytes,
            rebalances=self._rebalances,
            rebalance_moved_tables=self._rebalance_moved,
        )
        return merged

    def close(self) -> None:
        """Stop the batcher's timer thread, if one was started."""
        self.batcher.stop()
