"""The :class:`MicroBatcher` — atomic micro-batch application to the lake.

The batcher sits between the :class:`~repro.ingest.queue.IngestQueue` and
the :class:`~repro.datalake.lake.DataLake`.  A batch becomes **due** when
any bound trips: pending event count, pending byte estimate, or the oldest
pending operation exceeding the max-latency deadline.  Applying a batch:

1. acquires the :class:`~repro.serving.maintenance.ActivityGate` in
   exclusive mode *before* draining the queue — on drain timeout nothing is
   consumed and every event stays queued, so admission pressure never loses
   writes;
2. drains one bounded batch and applies each operation to the lake with
   membership-resolved semantics (an ``add`` for a name already present is
   applied as a replace, a ``remove`` for an absent name is skipped) so a
   replayed or racy stream cannot wedge the pipeline;
3. runs the ``refresh`` callback (typically ``Discovery.resync`` — the
   per-shard ``update_index`` path) while still exclusive, so live queries
   never observe the lake ahead of its indexes;
4. checkpoints the lake (:meth:`~repro.datalake.lake.DataLake.checkpoint`),
   re-anchoring ``changes_since`` consumers at the batch-boundary version
   even after the bounded journal trims past them.

An optional background timer thread (:meth:`MicroBatcher.start`) flushes on
the latency deadline when no maintenance loop is driving
:meth:`flush_if_due`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.datalake.lake import DataLake
from repro.ingest.events import TableEvent
from repro.ingest.queue import IngestQueue
from repro.utils.errors import IngestError, ReproError


@dataclass(frozen=True)
class MicroBatchReport:
    """What one applied micro-batch did to the lake."""

    events: int
    added: int
    replaced: int
    removed: int
    skipped: int
    version_before: int
    version_after: int
    checkpoint_version: int | None
    seconds: float

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "added": self.added,
            "replaced": self.replaced,
            "removed": self.removed,
            "skipped": self.skipped,
            "version_before": self.version_before,
            "version_after": self.version_after,
            "checkpoint_version": self.checkpoint_version,
            "seconds": self.seconds,
        }


class MicroBatcher:
    """Coalesces queued events into atomically-applied micro-batches.

    Parameters
    ----------
    queue:
        The netting queue to drain.
    lake:
        The lake to mutate.
    refresh:
        Callback invoked after each batch's lake mutations, while still
        holding the gate — typically ``Discovery.resync``, which walks the
        per-backend ``update_index`` delta path.
    gate:
        Optional :class:`~repro.serving.maintenance.ActivityGate`.  When
        present, each batch is applied under exclusive mode; when absent the
        batcher assumes single-threaded use (tests, benchmarks).
    max_events / max_bytes / max_latency_seconds:
        The three flush bounds.  ``max_bytes`` uses the events' estimated
        cost, not serialized size.
    checkpoint:
        Record a lake compaction checkpoint after each applied batch
        (default ``True``).
    exclusive_timeout:
        Seconds to wait for in-flight queries to drain before giving up on
        this flush attempt (events stay queued).
    """

    def __init__(
        self,
        queue: IngestQueue,
        lake: DataLake,
        *,
        refresh: Callable[[], object] | None = None,
        gate: "ActivityGateLike | None" = None,
        max_events: int = 256,
        max_bytes: int = 1_048_576,
        max_latency_seconds: float = 0.5,
        checkpoint: bool = True,
        exclusive_timeout: float = 5.0,
    ) -> None:
        if max_events < 1:
            raise IngestError(f"max_events must be >= 1, got {max_events}")
        if max_bytes < 1:
            raise IngestError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_latency_seconds <= 0:
            raise IngestError(
                f"max_latency_seconds must be > 0, got {max_latency_seconds}"
            )
        self.queue = queue
        self.lake = lake
        self.refresh = refresh
        self.gate = gate
        self.max_events = max_events
        self.max_bytes = max_bytes
        self.max_latency_seconds = max_latency_seconds
        self.checkpoint = checkpoint
        self.exclusive_timeout = exclusive_timeout
        self._flush_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats: dict[str, int] = {
            "batches_applied": 0,
            "events_applied": 0,
            "flush_timeouts": 0,
        }

    # --------------------------------------------------------------- flushing
    def due(self) -> bool:
        """True when any flush bound (count, bytes, latency) has tripped."""
        pending = self.queue.pending_events
        if pending == 0:
            return False
        if pending >= self.max_events:
            return True
        if self.queue.pending_bytes >= self.max_bytes:
            return True
        return self.queue.oldest_pending_seconds() >= self.max_latency_seconds

    def flush(self) -> list[MicroBatchReport]:
        """Apply batches until the queue is empty; returns one report per batch.

        Raises :class:`IngestError` when the gate cannot be acquired within
        ``exclusive_timeout`` — nothing is drained in that case, so the
        caller can simply retry later.
        """
        reports: list[MicroBatchReport] = []
        with self._flush_lock:
            while self.queue.pending_events > 0:
                report = self._apply_one_batch()
                if report is None:
                    self.stats["flush_timeouts"] += 1
                    raise IngestError(
                        "ingest flush timed out waiting for in-flight queries "
                        f"to drain (exclusive_timeout={self.exclusive_timeout}s); "
                        "events remain queued"
                    )
                reports.append(report)
        return reports

    def flush_if_due(self) -> list[MicroBatchReport]:
        """Flush only when a bound has tripped; cheap to call in a loop."""
        if not self.due():
            return []
        return self.flush()

    def _apply_one_batch(self) -> MicroBatchReport | None:
        started = time.monotonic()
        exclusive = False
        if self.gate is not None:
            if not self.gate.acquire_exclusive(timeout=self.exclusive_timeout):
                return None
            exclusive = True
        try:
            batch = self.queue.drain(
                max_events=self.max_events, max_bytes=self.max_bytes
            )
            if not batch:
                return MicroBatchReport(
                    events=0, added=0, replaced=0, removed=0, skipped=0,
                    version_before=self.lake.version,
                    version_after=self.lake.version,
                    checkpoint_version=None,
                    seconds=time.monotonic() - started,
                )
            version_before = self.lake.version
            added = replaced = removed = skipped = 0
            for event in batch:
                outcome = self._apply_event(event)
                if outcome == "added":
                    added += 1
                elif outcome == "replaced":
                    replaced += 1
                elif outcome == "removed":
                    removed += 1
                else:
                    skipped += 1
            if self.refresh is not None:
                self.refresh()
            checkpoint_version = self.lake.checkpoint() if self.checkpoint else None
            self.stats["batches_applied"] += 1
            self.stats["events_applied"] += len(batch)
            return MicroBatchReport(
                events=len(batch),
                added=added,
                replaced=replaced,
                removed=removed,
                skipped=skipped,
                version_before=version_before,
                version_after=self.lake.version,
                checkpoint_version=checkpoint_version,
                seconds=time.monotonic() - started,
            )
        finally:
            if exclusive:
                self.gate.release_exclusive()

    def _apply_event(self, event: TableEvent) -> str:
        """Apply one netted operation with membership-resolved semantics."""
        present = event.name in self.lake
        if event.op == "remove":
            if not present:
                return "skipped"
            self.lake.remove_table(event.name)
            return "removed"
        assert event.table is not None  # enforced by TableEvent validation
        if present:
            previous = self.lake.replace_table(event.table)
            if previous.content_fingerprint() == event.table.content_fingerprint():
                return "skipped"  # fingerprint no-op inside replace_table
            return "replaced"
        self.lake.add_table(event.table)
        return "added"

    # ----------------------------------------------------- background flushing
    def start(self) -> "MicroBatcher":
        """Start a daemon timer thread that flushes on the latency deadline.

        Unnecessary when a :class:`~repro.serving.maintenance.MaintenanceLoop`
        drives :meth:`flush_if_due`; useful for embedded use.
        """
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-ingest-flush", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = max(self.max_latency_seconds / 4, 0.01)
        while not self._stop.wait(interval):
            try:
                self.flush_if_due()
            except ReproError:
                # Gate drain timeout: events remain queued; retry next tick.
                continue

    def stop(self) -> None:
        """Stop the timer thread (if running); pending events stay queued."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None


class ActivityGateLike:
    """Structural protocol for the gate (documentation only)."""

    def acquire_exclusive(self, timeout: float) -> bool:  # pragma: no cover
        raise NotImplementedError

    def release_exclusive(self) -> None:  # pragma: no cover
        raise NotImplementedError
