"""The :class:`IngestQueue` — thread-safe front door for mutation events.

Producers on any thread call :meth:`IngestQueue.submit`; the queue nets
events through its :class:`~repro.ingest.registry.DeltaRegistry` under a
lock and tracks how long the oldest pending operation has been waiting, so
the :class:`~repro.ingest.batcher.MicroBatcher` can honour its max-latency
flush deadline.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from repro.ingest.events import TableEvent
from repro.ingest.registry import DeltaRegistry


class IngestQueue:
    """Thread-safe, netting event queue.

    All mutation of the underlying :class:`DeltaRegistry` happens under one
    lock, so producers may submit concurrently with each other and with the
    batcher's drain.
    """

    def __init__(
        self, *, fingerprint_of: Callable[[str], str | None] | None = None
    ) -> None:
        self._registry = DeltaRegistry(fingerprint_of=fingerprint_of)
        self._lock = threading.Lock()
        #: ``time.monotonic()`` of the first event since the last full drain,
        #: or ``None`` when nothing is pending — drives the latency deadline.
        self._first_pending_at: float | None = None

    def submit(self, event: TableEvent) -> bool:
        """Net one event into the queue; returns ``True`` if it left work pending."""
        with self._lock:
            kept = self._registry.record(event)
            if self._registry.pending_events == 0:
                self._first_pending_at = None
            elif self._first_pending_at is None:
                self._first_pending_at = time.monotonic()
            return kept

    def submit_many(self, events: Iterable[TableEvent]) -> int:
        """Submit every event; returns how many left work pending."""
        return sum(1 for event in events if self.submit(event))

    @property
    def pending_events(self) -> int:
        with self._lock:
            return self._registry.pending_events

    @property
    def pending_bytes(self) -> int:
        with self._lock:
            return self._registry.pending_bytes

    def oldest_pending_seconds(self) -> float:
        """Seconds the oldest pending operation has been waiting (0.0 if none)."""
        with self._lock:
            if self._first_pending_at is None:
                return 0.0
            return time.monotonic() - self._first_pending_at

    def drain(
        self, *, max_events: int | None = None, max_bytes: int | None = None
    ) -> list[TableEvent]:
        """Drain up to one micro-batch of netted operations (oldest first)."""
        with self._lock:
            batch = self._registry.drain(max_events=max_events, max_bytes=max_bytes)
            if self._registry.pending_events == 0:
                self._first_pending_at = None
            elif batch:
                # Remaining events inherit "now" as their wait anchor: they
                # were younger than everything just drained, and resetting
                # avoids an immediate spurious latency-deadline flush.
                self._first_pending_at = time.monotonic()
            return batch

    @property
    def stats(self) -> dict[str, int]:
        """Copy of the registry's netting counters."""
        with self._lock:
            return dict(self._registry.stats)
