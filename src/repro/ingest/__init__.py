"""Streaming ingestion: coalesced micro-batch writes for live lakes.

The write-path counterpart of the serving layer.  A stream of table
add/remove/replace events (:mod:`repro.ingest.events`) flows through a
netting :class:`~repro.ingest.queue.IngestQueue` (one pending operation per
table — dedup, supersede, cancel; :mod:`repro.ingest.registry`), is
coalesced into bounded micro-batches and applied atomically to the lake and
its indexes under the deployment's activity gate
(:mod:`repro.ingest.batcher`), with journal compaction checkpoints so
``changes_since`` consumers re-anchor instead of hitting the full-rebuild
floor, and online shard rebalancing when size skew drifts
(:mod:`repro.ingest.rebalance`).  :class:`~repro.ingest.controller.IngestController`
ties the chain to one :class:`~repro.api.facade.Discovery` deployment —
``Discovery.ingest()`` is the front door, ``POST /v1/ingest`` and
``python -m repro ingest`` the wire/CLI surfaces.
"""

from repro.ingest.batcher import MicroBatcher, MicroBatchReport
from repro.ingest.controller import IngestController
from repro.ingest.events import (
    EVENT_OPS,
    TableEvent,
    event_from_payload,
    events_from_jsonl,
)
from repro.ingest.queue import IngestQueue
from repro.ingest.rebalance import find_sharded, shard_loads, shard_skew
from repro.ingest.registry import DeltaRegistry

__all__ = [
    "EVENT_OPS",
    "DeltaRegistry",
    "IngestController",
    "IngestQueue",
    "MicroBatchReport",
    "MicroBatcher",
    "TableEvent",
    "event_from_payload",
    "events_from_jsonl",
    "find_sharded",
    "shard_loads",
    "shard_skew",
]
