"""The :class:`DeltaRegistry` — per-table dedup and netting of ingest events.

A raw event stream is redundant: the same table may be replaced five times
between flushes, added and then removed, or "replaced" with content identical
to what the lake already holds.  The registry keeps at most **one pending
operation per table name** and nets every incoming event against it, so the
micro-batcher only ever applies the minimal surviving mutation set:

- ``add`` followed by ``remove`` cancels outright (the lake never saw it);
- consecutive ``add``/``replace`` supersede — only the newest content
  survives (the pending op *kind* is kept, so an unapplied ``add`` stays an
  ``add`` even when later events arrive as ``replace``);
- ``remove`` followed by ``add``/``replace`` nets to a replace of the table
  that is still in the lake;
- events whose content fingerprint equals the lake's current content (and
  with nothing pending for that name) are dropped as no-ops.

Order across *different* tables is preserved (FIFO by first-touch), which
keeps drained batches deterministic.  The netting shape follows the
delta-registry pattern named in the ROADMAP's streaming-ingestion item.
"""

from __future__ import annotations

from typing import Callable

from repro.ingest.events import TableEvent


class DeltaRegistry:
    """Nets a stream of :class:`TableEvent` into minimal pending mutations.

    Parameters
    ----------
    fingerprint_of:
        Optional callable mapping a table name to the lake's current content
        fingerprint for that table (``None`` when absent).  When provided,
        incoming add/replace events whose payload fingerprint matches the
        lake — and that have no pending op to supersede — are dropped as
        no-ops before they ever cost a batch slot.
    """

    def __init__(
        self, *, fingerprint_of: Callable[[str], str | None] | None = None
    ) -> None:
        self._pending: dict[str, TableEvent] = {}
        self._fingerprint_of = fingerprint_of
        self.stats: dict[str, int] = {
            "received": 0,
            "noops_dropped": 0,
            "cancelled": 0,
            "superseded": 0,
            "deduped": 0,
            "drained": 0,
        }

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_events(self) -> int:
        """Number of tables with a pending netted operation."""
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        """Estimated byte cost of all pending operations."""
        return sum(event.cost_bytes for event in self._pending.values())

    def record(self, event: TableEvent) -> bool:
        """Net ``event`` against the pending state.

        Returns ``True`` when the event left a pending operation for its
        table, ``False`` when it was absorbed (no-op drop, dedup, or an
        add+remove cancellation).
        """
        self.stats["received"] += 1
        previous = self._pending.get(event.name)

        if previous is None:
            if event.op != "remove" and self._fingerprint_of is not None:
                if self._fingerprint_of(event.name) == event.fingerprint():
                    self.stats["noops_dropped"] += 1
                    return False
            self._pending[event.name] = event
            return True

        if event.op == "remove":
            if previous.op == "add":
                # The lake never saw this table: add + remove cancels.
                del self._pending[event.name]
                self.stats["cancelled"] += 1
                return False
            if previous.op == "remove":
                self.stats["deduped"] += 1
                return True
            # replace + remove nets to a plain remove.
            self._pending[event.name] = TableEvent(op="remove", name=event.name)
            self.stats["superseded"] += 1
            return True

        # event is add/replace from here on.
        if previous.op == "remove":
            # remove + (add|replace): the table is still in the lake, so the
            # net effect is replacing it with the new content.
            self._pending[event.name] = TableEvent(
                op="replace", name=event.name, table=event.table
            )
            self.stats["superseded"] += 1
            return True

        if previous.fingerprint() == event.fingerprint():
            self.stats["deduped"] += 1
            return True
        # Newest content wins; keep the pending op kind so an unapplied
        # ``add`` stays an ``add`` regardless of how later events arrived.
        self._pending[event.name] = TableEvent(
            op=previous.op, name=event.name, table=event.table
        )
        self.stats["superseded"] += 1
        return True

    def drain(
        self, *, max_events: int | None = None, max_bytes: int | None = None
    ) -> list[TableEvent]:
        """Remove and return pending operations, oldest-first (FIFO).

        Stops at ``max_events`` operations or once ``max_bytes`` of estimated
        cost is reached — but always yields at least one operation when any
        is pending, so a single table larger than the byte budget still
        flows through (as a batch of one) instead of wedging the queue.
        """
        batch: list[TableEvent] = []
        cost = 0
        for name in list(self._pending):
            if max_events is not None and len(batch) >= max_events:
                break
            event = self._pending[name]
            if batch and max_bytes is not None and cost + event.cost_bytes > max_bytes:
                break
            del self._pending[name]
            batch.append(event)
            cost += event.cost_bytes
        self.stats["drained"] += len(batch)
        return batch
