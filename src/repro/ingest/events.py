"""Table mutation events — the unit of streaming ingestion.

A :class:`TableEvent` describes one intended lake mutation: add, remove, or
replace a named table.  Events are what producers hand to the
:class:`~repro.ingest.queue.IngestQueue`; the
:class:`~repro.ingest.registry.DeltaRegistry` nets them per table name and
the :class:`~repro.ingest.batcher.MicroBatcher` applies the survivors in
bounded micro-batches.

Events also have a wire form (:meth:`TableEvent.to_payload` /
:func:`event_from_payload`) shared by the ``POST /v1/ingest`` server
endpoint and the ``python -m repro ingest`` CLI, and a JSONL reader
(:func:`events_from_jsonl`) for file/stdin streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterator, Mapping

from repro.datalake.io import table_from_payload, table_to_payload
from repro.datalake.table import Table
from repro.utils.errors import IngestError

#: Operations an event may carry.
EVENT_OPS = ("add", "remove", "replace")


@dataclass(frozen=True)
class TableEvent:
    """One intended lake mutation.

    ``op`` is one of :data:`EVENT_OPS`.  ``add`` and ``replace`` carry the
    table payload; ``remove`` carries only the name.  ``cost_bytes`` is a
    cheap size estimate (cells, not serialized bytes) used by the
    micro-batcher's byte budget.
    """

    op: str
    name: str
    table: Table | None = None
    cost_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.op not in EVENT_OPS:
            raise IngestError(
                f"unknown ingest op {self.op!r}; expected one of {EVENT_OPS}"
            )
        if not self.name:
            raise IngestError("ingest event requires a non-empty table name")
        if self.op == "remove":
            if self.table is not None:
                raise IngestError("remove events must not carry a table payload")
        else:
            if self.table is None:
                raise IngestError(f"{self.op!r} events require a table payload")
            if self.table.name != self.name:
                raise IngestError(
                    f"event name {self.name!r} does not match its table's name "
                    f"{self.table.name!r}"
                )
        object.__setattr__(self, "cost_bytes", _estimate_cost(self.table))

    def fingerprint(self) -> str | None:
        """Content fingerprint of the carried table (``None`` for removes)."""
        return None if self.table is None else self.table.content_fingerprint()

    def to_payload(self) -> dict:
        """Wire form: ``{"op", "name"}`` plus ``"table"`` for add/replace."""
        payload: dict = {"op": self.op, "name": self.name}
        if self.table is not None:
            payload["table"] = table_to_payload(self.table)
        return payload


def _estimate_cost(table: Table | None) -> int:
    if table is None:
        return 64  # a remove is just a name — charge a small constant
    total = 64
    for column in table.columns:
        total += 16 + len(column)
    for row in table.rows:
        for value in row:
            total += 8 if value is None else 8 + len(str(value))
    return total


def event_from_payload(payload: Mapping) -> TableEvent:
    """Parse the wire form produced by :meth:`TableEvent.to_payload`."""
    if not isinstance(payload, Mapping):
        raise IngestError(
            f"ingest event payload must be an object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    name = payload.get("name")
    if not isinstance(op, str) or not isinstance(name, str):
        raise IngestError("ingest event payload requires string 'op' and 'name'")
    table = None
    raw_table = payload.get("table")
    if raw_table is not None:
        try:
            table = table_from_payload(raw_table)
        except Exception as exc:
            raise IngestError(
                f"ingest event for {name!r} carries an invalid table payload: {exc}"
            ) from exc
    return TableEvent(op=op, name=name, table=table)


def events_from_jsonl(stream: IO[str]) -> Iterator[TableEvent]:
    """Yield events from a JSONL stream, one event object per line.

    Blank lines are skipped.  Malformed lines raise :class:`IngestError`
    with the 1-based line number, so a bad feed fails loudly instead of
    silently dropping mutations.
    """
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise IngestError(f"line {line_number}: invalid JSON: {exc}") from exc
        try:
            yield event_from_payload(payload)
        except IngestError as exc:
            raise IngestError(f"line {line_number}: {exc}") from exc
