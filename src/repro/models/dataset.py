"""Fine-tuning pair datasets (paper Sec. 4, "Dataset Preparation" and Sec. 6.1.1).

Each data point is a pair of serialized tuples plus a binary unionability
label: 1 when the tuples come from the same table or from two unionable
tables, 0 when they come from two non-unionable tables.  The dataset is
balanced, split 70:15:15 into train/validation/test, and leakage-free (no
tuple appears in more than one split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.datalake.table import Table
from repro.embeddings.serialization import serialize_tuple
from repro.utils.errors import TrainingError
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class TuplePair:
    """One labelled pair of serialized tuples."""

    first: str
    second: str
    label: int
    first_source: str = ""
    second_source: str = ""

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise TrainingError(f"pair label must be 0 or 1, got {self.label}")


@dataclass
class TuplePairDataset:
    """Train/validation/test splits of labelled tuple pairs."""

    train: list[TuplePair] = field(default_factory=list)
    validation: list[TuplePair] = field(default_factory=list)
    test: list[TuplePair] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total number of pairs across all splits."""
        return len(self.train) + len(self.validation) + len(self.test)

    def balance_report(self) -> dict[str, tuple[int, int]]:
        """Return ``(positives, negatives)`` per split."""
        report = {}
        for name, split in (
            ("train", self.train),
            ("validation", self.validation),
            ("test", self.test),
        ):
            positives = sum(1 for pair in split if pair.label == 1)
            report[name] = (positives, len(split) - positives)
        return report


def _serialize_rows(table: Table) -> list[str]:
    """Serialize every row of ``table`` over its own columns."""
    return [
        serialize_tuple(dict(zip(table.columns, row)), table.columns)
        for row in table.rows
    ]


def build_pair_dataset(
    tables: Sequence[Table],
    unionable_groups: Mapping[str, Sequence[str]] | Sequence[Sequence[str]],
    *,
    num_pairs: int = 2000,
    train_fraction: float = 0.70,
    validation_fraction: float = 0.15,
    seed: int | None = None,
    max_rows_per_table: int = 30,
) -> TuplePairDataset:
    """Build a balanced, leak-free tuple-pair dataset from labelled tables.

    Parameters
    ----------
    tables:
        The benchmark tables to draw tuples from.
    unionable_groups:
        Either a mapping ``group id -> table names`` or a sequence of table
        name groups.  Tables within a group are mutually unionable; tables in
        different groups are non-unionable (the TUS benchmark convention:
        tables derived from the same base table are unionable).
    num_pairs:
        Total number of pairs to generate (half positive, half negative).
    train_fraction, validation_fraction:
        Split fractions; the remainder is the test split (defaults give the
        paper's 70:15:15).
    seed:
        Seed controlling pair sampling and split assignment.
    max_rows_per_table:
        Cap on the rows sampled per table, keeping generation fast on big
        benchmarks.

    Leakage control: every *tuple* (a specific row of a specific table) is
    assigned to exactly one split before pairing, and a pair is kept only when
    both of its tuples live in the same split.
    """
    if not 0.0 < train_fraction < 1.0 or not 0.0 < validation_fraction < 1.0:
        raise TrainingError("split fractions must lie strictly between 0 and 1")
    if train_fraction + validation_fraction >= 1.0:
        raise TrainingError("train and validation fractions must sum to below 1")
    if num_pairs < 10:
        raise TrainingError(f"num_pairs must be at least 10, got {num_pairs}")

    if isinstance(unionable_groups, Mapping):
        groups = [list(names) for names in unionable_groups.values()]
    else:
        groups = [list(names) for names in unionable_groups]
    if len(groups) < 2:
        raise TrainingError(
            "need at least two non-unionable groups to form negative pairs"
        )

    tables_by_name = {table.name: table for table in tables}
    for group in groups:
        for name in group:
            if name not in tables_by_name:
                raise TrainingError(f"unionable group references unknown table {name!r}")

    rng = seeded_rng(seed)

    # Serialize a capped sample of rows per table and assign each tuple a split.
    split_names = ("train", "validation", "test")
    split_probabilities = (
        train_fraction,
        validation_fraction,
        1.0 - train_fraction - validation_fraction,
    )
    serialized: dict[str, list[tuple[str, str]]] = {}  # table -> [(text, split)]
    # Identical serialized tuples (e.g. the same base row sampled into two
    # derived tables) must land in the same split, otherwise a pair in the test
    # split could contain a tuple also seen during training.
    split_of_text: dict[str, str] = {}
    for group in groups:
        for name in group:
            table = tables_by_name[name]
            rows = _serialize_rows(table)
            if len(rows) > max_rows_per_table:
                chosen = rng.choice(len(rows), size=max_rows_per_table, replace=False)
                rows = [rows[i] for i in sorted(chosen)]
            assignments = rng.choice(len(split_names), size=len(rows), p=split_probabilities)
            table_rows = []
            for text, assignment in zip(rows, assignments):
                split = split_of_text.setdefault(text, split_names[assignment])
                table_rows.append((text, split))
            serialized[name] = table_rows

    splits: dict[str, list[TuplePair]] = {name: [] for name in split_names}
    positives_needed = num_pairs // 2
    negatives_needed = num_pairs - positives_needed

    def sample_tuple(table_name: str) -> tuple[str, str] | None:
        rows = serialized.get(table_name, [])
        if not rows:
            return None
        return rows[int(rng.integers(len(rows)))]

    # Positive pairs: same table or same unionable group.
    attempts = 0
    produced_positive = 0
    while produced_positive < positives_needed and attempts < positives_needed * 20:
        attempts += 1
        group = groups[int(rng.integers(len(groups)))]
        first_table = group[int(rng.integers(len(group)))]
        second_table = group[int(rng.integers(len(group)))]
        first = sample_tuple(first_table)
        second = sample_tuple(second_table)
        if first is None or second is None:
            continue
        if first[1] != second[1] or first[0] == second[0]:
            continue
        splits[first[1]].append(
            TuplePair(
                first=first[0],
                second=second[0],
                label=1,
                first_source=first_table,
                second_source=second_table,
            )
        )
        produced_positive += 1

    # Negative pairs: tuples from two different (non-unionable) groups.
    attempts = 0
    produced_negative = 0
    while produced_negative < negatives_needed and attempts < negatives_needed * 20:
        attempts += 1
        first_group_index = int(rng.integers(len(groups)))
        second_group_index = int(rng.integers(len(groups)))
        if first_group_index == second_group_index:
            continue
        first_group = groups[first_group_index]
        second_group = groups[second_group_index]
        first_table = first_group[int(rng.integers(len(first_group)))]
        second_table = second_group[int(rng.integers(len(second_group)))]
        first = sample_tuple(first_table)
        second = sample_tuple(second_table)
        if first is None or second is None:
            continue
        if first[1] != second[1]:
            continue
        splits[first[1]].append(
            TuplePair(
                first=first[0],
                second=second[0],
                label=0,
                first_source=first_table,
                second_source=second_table,
            )
        )
        produced_negative += 1

    dataset = TuplePairDataset(
        train=splits["train"], validation=splits["validation"], test=splits["test"]
    )
    if not dataset.train or not dataset.validation or not dataset.test:
        raise TrainingError(
            "pair generation produced an empty split; increase num_pairs or "
            "provide tables with more rows"
        )
    return dataset
