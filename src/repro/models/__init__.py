"""Tuple representation models (paper Sec. 4 and Sec. 6.3).

The DUST tuple embedding model is a fine-tuned head (dropout + two linear
layers) on top of a frozen base encoder, trained with a cosine embedding loss
on pairs of unionable / non-unionable tuples.  This package contains the
pair-dataset builder, the numpy training stack (layers, Adam, trainer), the
DUST model itself and the Ditto entity-matching baseline.
"""

from repro.models.dataset import TuplePair, TuplePairDataset, build_pair_dataset
from repro.models.layers import Dropout, EmbeddingHead, Linear, Tanh
from repro.models.optim import AdamOptimizer
from repro.models.trainer import FineTuneConfig, FineTuneResult, FineTuningTrainer
from repro.models.dust import DustTupleModel, build_dust_model
from repro.models.ditto import DittoModel, build_ditto_model, build_entity_matching_pairs
from repro.models.evaluate import (
    pair_accuracy,
    select_threshold,
    evaluate_encoder_on_pairs,
)

__all__ = [
    "TuplePair",
    "TuplePairDataset",
    "build_pair_dataset",
    "Dropout",
    "EmbeddingHead",
    "Linear",
    "Tanh",
    "AdamOptimizer",
    "FineTuneConfig",
    "FineTuneResult",
    "FineTuningTrainer",
    "DustTupleModel",
    "build_dust_model",
    "DittoModel",
    "build_ditto_model",
    "build_entity_matching_pairs",
    "pair_accuracy",
    "select_threshold",
    "evaluate_encoder_on_pairs",
]
