"""Tuple-representation evaluation (paper Sec. 6.3.1, Eq. 3).

A pair of tuples is predicted *unionable* when the cosine distance between
their embeddings is below a threshold (0.7 in the paper, chosen on the
validation split); accuracy over the labelled test split is the reported
metric in Fig. 6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.distance import cosine_distance
from repro.embeddings.base import TupleEncoder
from repro.models.dataset import TuplePair
from repro.utils.errors import TrainingError

#: Cosine-distance threshold used in the paper's accuracy computation.
DEFAULT_DISTANCE_THRESHOLD = 0.7


def _pair_distances(encoder: TupleEncoder, pairs: Sequence[TuplePair]) -> np.ndarray:
    """Cosine distance between the embeddings of every pair."""
    if not pairs:
        raise TrainingError("cannot evaluate an encoder on an empty pair list")
    texts: dict[str, int] = {}
    for pair in pairs:
        texts.setdefault(pair.first, len(texts))
        texts.setdefault(pair.second, len(texts))
    ordered = sorted(texts, key=texts.__getitem__)
    embeddings = encoder.encode_many(ordered)
    return np.array(
        [
            cosine_distance(embeddings[texts[pair.first]], embeddings[texts[pair.second]])
            for pair in pairs
        ]
    )


def pair_accuracy(
    encoder: TupleEncoder,
    pairs: Sequence[TuplePair],
    *,
    threshold: float = DEFAULT_DISTANCE_THRESHOLD,
) -> float:
    """Accuracy of unionability prediction at a fixed cosine-distance threshold."""
    distances = _pair_distances(encoder, pairs)
    labels = np.array([pair.label for pair in pairs])
    predictions = (distances < threshold).astype(int)
    return float((predictions == labels).mean())


def select_threshold(
    encoder: TupleEncoder,
    validation_pairs: Sequence[TuplePair],
    *,
    candidates: Sequence[float] = tuple(np.round(np.arange(0.05, 1.0, 0.05), 2)),
) -> float:
    """Pick the distance threshold maximising validation accuracy.

    The paper reports 0.7 as the empirically best threshold on its validation
    set; this helper performs the same sweep for an arbitrary encoder.
    """
    distances = _pair_distances(encoder, validation_pairs)
    labels = np.array([pair.label for pair in validation_pairs])
    best_threshold, best_accuracy = float(candidates[0]), -1.0
    for threshold in candidates:
        predictions = (distances < threshold).astype(int)
        accuracy = float((predictions == labels).mean())
        if accuracy > best_accuracy:
            best_threshold, best_accuracy = float(threshold), accuracy
    return best_threshold


def evaluate_encoder_on_pairs(
    encoder: TupleEncoder,
    validation_pairs: Sequence[TuplePair],
    test_pairs: Sequence[TuplePair],
    *,
    tune_threshold: bool = True,
) -> dict[str, float]:
    """Validation-tuned threshold plus test accuracy for one encoder.

    Returns a dictionary with ``threshold``, ``validation_accuracy`` and
    ``test_accuracy`` — the numbers behind one cell of Fig. 6.
    """
    threshold = (
        select_threshold(encoder, validation_pairs)
        if tune_threshold
        else DEFAULT_DISTANCE_THRESHOLD
    )
    return {
        "threshold": threshold,
        "validation_accuracy": pair_accuracy(
            encoder, validation_pairs, threshold=threshold
        ),
        "test_accuracy": pair_accuracy(encoder, test_pairs, threshold=threshold),
    }
