"""Adam optimizer for the numpy training stack."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import TrainingError


class AdamOptimizer:
    """Adam (Kingma & Ba) over a fixed list of parameter arrays.

    Parameters are updated in place; gradients are read from the matching
    gradient arrays supplied at construction time (the layer objects own both
    arrays, so the optimizer needs no further wiring).
    """

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        *,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if len(parameters) != len(gradients):
            raise TrainingError(
                f"got {len(parameters)} parameters but {len(gradients)} gradients"
            )
        for parameter, gradient in zip(parameters, gradients):
            if parameter.shape != gradient.shape:
                raise TrainingError(
                    f"parameter/gradient shape mismatch: {parameter.shape} vs "
                    f"{gradient.shape}"
                )
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        self.parameters = parameters
        self.gradients = gradients
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._first_moments = [np.zeros_like(p) for p in parameters]
        self._second_moments = [np.zeros_like(p) for p in parameters]
        self._step = 0

    def step(self) -> None:
        """Apply one Adam update using the current gradient values."""
        self._step += 1
        bias_correction1 = 1.0 - self.beta1**self._step
        bias_correction2 = 1.0 - self.beta2**self._step
        for parameter, gradient, first, second in zip(
            self.parameters, self.gradients, self._first_moments, self._second_moments
        ):
            effective_grad = gradient
            if self.weight_decay > 0.0:
                effective_grad = gradient + self.weight_decay * parameter
            first *= self.beta1
            first += (1.0 - self.beta1) * effective_grad
            second *= self.beta2
            second += (1.0 - self.beta2) * (effective_grad**2)
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter -= (
                self.learning_rate
                * corrected_first
                / (np.sqrt(corrected_second) + self.epsilon)
            )

    @property
    def steps_taken(self) -> int:
        """Number of update steps applied so far."""
        return self._step
