"""Fine-tuning trainer for the DUST tuple embedding head.

Implements the training loop of paper Sec. 4: pairs of serialized tuples are
encoded independently by the (frozen) base encoder, pushed through the
trainable head, and the cosine embedding loss

    L(e1, e2) = 1 - cos(e1, e2)            if label == 1
    L(e1, e2) = max(0, cos(e1, e2) - m)    if label == 0   (margin m, default 0)

is minimised with Adam.  Training stops after ``max_epochs`` or when the
validation loss has not improved for ``patience`` epochs (early stopping with
patience 10 in the paper, Sec. 6.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.embeddings.base import TupleEncoder
from repro.models.dataset import TuplePair
from repro.models.layers import EmbeddingHead
from repro.models.optim import AdamOptimizer
from repro.utils.errors import TrainingError
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of the fine-tuning run."""

    hidden_dim: int = 256
    output_dim: int = 768
    dropout_rate: float = 0.1
    learning_rate: float = 1e-3
    batch_size: int = 32
    max_epochs: int = 100
    patience: int = 10
    margin: float = 0.0
    weight_decay: float = 0.0
    seed: int = 13

    def __post_init__(self) -> None:
        if self.max_epochs <= 0:
            raise TrainingError(f"max_epochs must be positive, got {self.max_epochs}")
        if self.patience <= 0:
            raise TrainingError(f"patience must be positive, got {self.patience}")
        if self.batch_size <= 0:
            raise TrainingError(f"batch_size must be positive, got {self.batch_size}")
        if not 0.0 <= self.margin < 1.0:
            raise TrainingError(f"margin must be in [0, 1), got {self.margin}")


@dataclass
class FineTuneResult:
    """Outcome of a fine-tuning run."""

    head: EmbeddingHead
    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    best_epoch: int = 0
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually executed."""
        return len(self.train_losses)


def cosine_embedding_loss_and_grad(
    first: np.ndarray,
    second: np.ndarray,
    labels: np.ndarray,
    *,
    margin: float = 0.0,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Batch cosine embedding loss and its gradients w.r.t. both embeddings.

    Parameters
    ----------
    first, second:
        Batches of embeddings, shape ``(batch, dim)``.
    labels:
        Binary labels (1 = unionable / similar, 0 = non-unionable / diverse).
    margin:
        Hinge margin for negative pairs (PyTorch's default of 0 reproduces the
        formula in the paper).

    Returns
    -------
    ``(mean_loss, grad_first, grad_second)``.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if first.shape != second.shape:
        raise TrainingError(
            f"embedding batches must have equal shapes, got {first.shape} and "
            f"{second.shape}"
        )
    batch = first.shape[0]
    epsilon = 1e-12
    norm_first = np.linalg.norm(first, axis=1, keepdims=True) + epsilon
    norm_second = np.linalg.norm(second, axis=1, keepdims=True) + epsilon
    dot = np.sum(first * second, axis=1, keepdims=True)
    cosine = dot / (norm_first * norm_second)

    positive_loss = 1.0 - cosine[:, 0]
    negative_loss = np.maximum(0.0, cosine[:, 0] - margin)
    losses = np.where(labels == 1.0, positive_loss, negative_loss)
    mean_loss = float(losses.mean()) if batch > 0 else 0.0

    # d cos / d first = second/(|first||second|) - cos * first/|first|^2
    dcos_dfirst = second / (norm_first * norm_second) - cosine * first / (norm_first**2)
    dcos_dsecond = first / (norm_first * norm_second) - cosine * second / (norm_second**2)

    # d loss / d cos: -1 for positives, 1 for active negatives, 0 otherwise.
    dloss_dcos = np.where(
        labels == 1.0,
        -1.0,
        np.where(cosine[:, 0] > margin, 1.0, 0.0),
    )[:, None]
    scale = dloss_dcos / max(batch, 1)
    return mean_loss, scale * dcos_dfirst, scale * dcos_dsecond


class FineTuningTrainer:
    """Trains an :class:`EmbeddingHead` on labelled tuple pairs."""

    def __init__(self, base_encoder: TupleEncoder, config: FineTuneConfig | None = None) -> None:
        self.base_encoder = base_encoder
        self.config = config or FineTuneConfig()

    # ----------------------------------------------------------- feature prep
    def _encode_pairs(
        self, pairs: Sequence[TuplePair]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode both sides of every pair with the frozen base encoder.

        The base encoder is deterministic and frozen, so features are computed
        once up front; only the head runs per epoch.
        """
        texts: dict[str, int] = {}
        for pair in pairs:
            texts.setdefault(pair.first, len(texts))
            texts.setdefault(pair.second, len(texts))
        ordered = sorted(texts, key=texts.__getitem__)
        features = self.base_encoder.encode_many(ordered)
        first = np.vstack([features[texts[pair.first]] for pair in pairs])
        second = np.vstack([features[texts[pair.second]] for pair in pairs])
        labels = np.array([pair.label for pair in pairs], dtype=np.float64)
        return first, second, labels

    # ----------------------------------------------------------------- train
    def train(
        self,
        train_pairs: Sequence[TuplePair],
        validation_pairs: Sequence[TuplePair],
    ) -> FineTuneResult:
        """Run fine-tuning and return the trained head plus loss curves."""
        if not train_pairs:
            raise TrainingError("cannot fine-tune with an empty training split")
        if not validation_pairs:
            raise TrainingError("cannot fine-tune with an empty validation split")
        config = self.config
        head = EmbeddingHead(
            input_dim=self.base_encoder.dimension,
            hidden_dim=config.hidden_dim,
            output_dim=config.output_dim,
            dropout_rate=config.dropout_rate,
            seed=config.seed,
        )
        optimizer = AdamOptimizer(
            head.parameters(),
            head.gradients(),
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        rng = seeded_rng(config.seed)

        train_first, train_second, train_labels = self._encode_pairs(train_pairs)
        val_first, val_second, val_labels = self._encode_pairs(validation_pairs)

        result = FineTuneResult(head=head)
        best_validation = np.inf
        best_parameters = [p.copy() for p in head.parameters()]
        epochs_without_improvement = 0

        num_samples = len(train_pairs)
        for epoch in range(config.max_epochs):
            order = rng.permutation(num_samples)
            head.set_training(True)
            epoch_losses = []
            for start in range(0, num_samples, config.batch_size):
                batch_indices = order[start : start + config.batch_size]
                head.zero_gradients()
                # Both sides of every pair are pushed through the head in one
                # stacked batch so a single forward/backward pass covers them
                # with consistent dropout masks and layer caches.
                stacked = np.vstack(
                    [train_first[batch_indices], train_second[batch_indices]]
                )
                outputs = head.forward(stacked)
                half = len(batch_indices)
                loss, grad_first, grad_second = cosine_embedding_loss_and_grad(
                    outputs[:half],
                    outputs[half:],
                    train_labels[batch_indices],
                    margin=config.margin,
                )
                head.backward(np.vstack([grad_first, grad_second]))
                optimizer.step()
                epoch_losses.append(loss)
            result.train_losses.append(float(np.mean(epoch_losses)))

            validation_loss = self.evaluate_loss(head, val_first, val_second, val_labels)
            result.validation_losses.append(validation_loss)

            if validation_loss < best_validation - 1e-6:
                best_validation = validation_loss
                best_parameters = [p.copy() for p in head.parameters()]
                result.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    result.stopped_early = True
                    break

        # Restore the best parameters observed on validation.
        for parameter, best in zip(head.parameters(), best_parameters):
            parameter[...] = best
        head.set_training(False)
        return result

    def evaluate_loss(
        self,
        head: EmbeddingHead,
        first: np.ndarray,
        second: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        """Mean cosine embedding loss of ``head`` on pre-encoded pairs."""
        head.set_training(False)
        first_out = head.forward(first)
        second_out = head.forward(second)
        loss, _, _ = cosine_embedding_loss_and_grad(
            first_out, second_out, labels, margin=self.config.margin
        )
        head.set_training(True)
        return loss
