"""Ditto baseline: an embedding model fine-tuned for entity matching.

The paper compares DUST against Ditto (Li et al. [30]), a transformer
fine-tuned to decide whether two tuples describe the *same real-world entity*.
That objective only partially transfers to tuple unionability, which is why
Ditto lands between the un-finetuned encoders and DUST in Fig. 6.

The stand-in uses the same trainable head and loss as DUST but is trained on
an entity-matching pair dataset: positives are a tuple paired with a slightly
perturbed copy of itself (same entity, different surface form), negatives are
two *different* rows — even when those rows come from the same or unionable
tables.  Because many unionable pairs are labelled negative under this
objective, the learned space separates entities rather than topics, yielding
the intermediate unionability accuracy the paper reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.datalake.table import Table
from repro.embeddings.contextual import RobertaLikeModel
from repro.embeddings.serialization import serialize_tuple
from repro.models.dataset import TuplePair, TuplePairDataset
from repro.models.dust import DustTupleModel
from repro.models.trainer import FineTuneConfig, FineTuneResult, FineTuningTrainer
from repro.utils.errors import TrainingError
from repro.utils.rng import seeded_rng
from repro.utils.text import is_null

#: Ditto reuses the DUST wrapper; the difference is purely the training data.
DittoModel = DustTupleModel


def _perturb_value(value: object, rng) -> object:
    """Produce a slightly different surface form of the same value."""
    if is_null(value):
        return value
    text = str(value)
    choice = int(rng.integers(3))
    if choice == 0:
        return text.upper()
    if choice == 1:
        return text.replace(" ", "  ").strip()
    return f"{text}."


def build_entity_matching_pairs(
    tables: Sequence[Table],
    *,
    num_pairs: int = 1500,
    train_fraction: float = 0.70,
    validation_fraction: float = 0.15,
    seed: int | None = None,
) -> TuplePairDataset:
    """Build an entity-matching pair dataset from ``tables``.

    Positives pair a row with a perturbed copy of itself; negatives pair two
    distinct rows (from any tables).  Splits follow the same 70:15:15 scheme
    as the unionability dataset.
    """
    if num_pairs < 10:
        raise TrainingError(f"num_pairs must be at least 10, got {num_pairs}")
    rng = seeded_rng(seed)
    rows: list[tuple[Table, int]] = [
        (table, index) for table in tables for index in range(table.num_rows)
    ]
    if len(rows) < 4:
        raise TrainingError("need at least four rows to build entity-matching pairs")

    split_names = ("train", "validation", "test")
    probabilities = (
        train_fraction,
        validation_fraction,
        1.0 - train_fraction - validation_fraction,
    )
    splits: dict[str, list[TuplePair]] = {name: [] for name in split_names}

    def serialize(table: Table, index: int, *, perturb: bool) -> str:
        row = table.rows[index]
        values = dict(zip(table.columns, row))
        if perturb:
            values = {key: _perturb_value(value, rng) for key, value in values.items()}
        return serialize_tuple(values, table.columns)

    half = num_pairs // 2
    for pair_index in range(num_pairs):
        split = split_names[int(rng.choice(len(split_names), p=probabilities))]
        if pair_index < half:
            table, index = rows[int(rng.integers(len(rows)))]
            pair = TuplePair(
                first=serialize(table, index, perturb=False),
                second=serialize(table, index, perturb=True),
                label=1,
                first_source=table.name,
                second_source=table.name,
            )
        else:
            first_table, first_index = rows[int(rng.integers(len(rows)))]
            second_table, second_index = rows[int(rng.integers(len(rows)))]
            if first_table.name == second_table.name and first_index == second_index:
                continue
            pair = TuplePair(
                first=serialize(first_table, first_index, perturb=False),
                second=serialize(second_table, second_index, perturb=False),
                label=0,
                first_source=first_table.name,
                second_source=second_table.name,
            )
        splits[split].append(pair)

    dataset = TuplePairDataset(
        train=splits["train"], validation=splits["validation"], test=splits["test"]
    )
    if not dataset.train or not dataset.validation:
        raise TrainingError(
            "entity-matching pair generation produced an empty split; increase num_pairs"
        )
    return dataset


def build_ditto_model(
    tables: Sequence[Table],
    *,
    num_pairs: int = 1500,
    config: FineTuneConfig | None = None,
    seed: int | None = None,
) -> tuple[DittoModel, FineTuneResult]:
    """Fine-tune the Ditto baseline on entity-matching pairs from ``tables``."""
    dataset = build_entity_matching_pairs(tables, num_pairs=num_pairs, seed=seed)
    base_encoder = RobertaLikeModel()
    trainer = FineTuningTrainer(base_encoder, config)
    result = trainer.train(dataset.train, dataset.validation)
    model = DustTupleModel(base_encoder, result.head, name="ditto")
    return model, result
