"""The DUST fine-tuned tuple embedding model (paper Sec. 4).

A :class:`DustTupleModel` wraps a frozen base encoder (the BERT-like or
RoBERTa-like stand-in) and a fine-tuned :class:`EmbeddingHead`.  It exposes the
:class:`~repro.embeddings.base.TupleEncoder` interface so the rest of the
pipeline — column alignment excepted, which uses column encoders — can consume
it exactly like any other tuple encoder.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.base import EncoderInfo, TupleEncoder, l2_normalize
from repro.embeddings.contextual import BertLikeModel, RobertaLikeModel
from repro.models.dataset import TuplePairDataset
from repro.models.layers import EmbeddingHead
from repro.models.trainer import FineTuneConfig, FineTuneResult, FineTuningTrainer
from repro.utils.errors import TrainingError


class DustTupleModel(TupleEncoder):
    """Frozen base encoder plus fine-tuned embedding head."""

    def __init__(self, base_encoder: TupleEncoder, head: EmbeddingHead, *, name: str | None = None) -> None:
        if head.input_dim != base_encoder.dimension:
            raise TrainingError(
                f"head expects {head.input_dim}-dim inputs but the base encoder "
                f"produces {base_encoder.dimension}-dim embeddings"
            )
        self.base_encoder = base_encoder
        self.head = head
        self.head.set_training(False)
        self._info = EncoderInfo(
            name=name or f"dust({base_encoder.info.name})",
            dimension=head.output_dim,
            family="dust",
            is_finetuned=True,
        )

    @property
    def info(self) -> EncoderInfo:
        return self._info

    def encode_text(self, text: str) -> np.ndarray:
        features = self.base_encoder.encode_text(text)
        embedding = self.head.forward(features[None, :])[0]
        return l2_normalize(embedding)

    def encode_many(self, texts: Sequence[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        features = self.base_encoder.encode_many(list(texts))
        embeddings = self.head.forward(features)
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        return embeddings / norms


def build_dust_model(
    dataset: TuplePairDataset,
    *,
    base: str = "roberta",
    config: FineTuneConfig | None = None,
) -> tuple[DustTupleModel, FineTuneResult]:
    """Fine-tune a DUST tuple model on ``dataset`` and return it with the run log.

    Parameters
    ----------
    dataset:
        A :class:`TuplePairDataset` (typically the TUS fine-tuning benchmark).
    base:
        ``"roberta"`` for DUST (RoBERTa), ``"bert"`` for DUST (BERT) — the two
        variations evaluated in Fig. 6.
    config:
        Fine-tuning hyper-parameters; the defaults match the paper (dropout +
        two linear layers, 768-dim output, early stopping with patience 10).
    """
    base = base.lower()
    if base == "roberta":
        base_encoder: TupleEncoder = RobertaLikeModel()
    elif base == "bert":
        base_encoder = BertLikeModel()
    else:
        raise TrainingError(f"base must be 'roberta' or 'bert', got {base!r}")

    trainer = FineTuningTrainer(base_encoder, config)
    result = trainer.train(dataset.train, dataset.validation)
    model = DustTupleModel(
        base_encoder, result.head, name=f"dust-{base}"
    )
    return model, result
