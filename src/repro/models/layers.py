"""Minimal neural-network layers with explicit forward/backward passes.

The DUST fine-tuning architecture (paper Fig. 3, bottom right) appends a
dropout layer and two linear layers to the frozen base encoder.  These layers
are implemented directly in numpy — forward, backward and parameter/gradient
access — so the trainer has no framework dependency.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.errors import TrainingError
from repro.utils.rng import seeded_rng


class Layer(abc.ABC):
    """A differentiable layer operating on batches of shape ``(batch, features)``."""

    training: bool = True

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute outputs and cache whatever backward needs."""

    @abc.abstractmethod
    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Propagate gradients back to the inputs, accumulating parameter grads."""

    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays matching :meth:`parameters` order."""
        return []

    def zero_gradients(self) -> None:
        """Reset accumulated parameter gradients."""
        for gradient in self.gradients():
            gradient.fill(0.0)


class Linear(Layer):
    """Fully connected layer ``y = x @ W + b`` with Xavier initialisation."""

    def __init__(self, in_features: int, out_features: int, *, seed: int | None = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise TrainingError(
                f"Linear layer dimensions must be positive, got "
                f"({in_features}, {out_features})"
            )
        rng = seeded_rng(seed)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = np.asarray(inputs, dtype=np.float64)
        return self._inputs @ self.weight + self.bias

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise TrainingError("Linear.backward called before forward")
        self.weight_grad += self._inputs.T @ grad_outputs
        self.bias_grad += grad_outputs.sum(axis=0)
        return grad_outputs @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.weight_grad, self.bias_grad]


class Tanh(Layer):
    """Element-wise tanh non-linearity."""

    def __init__(self) -> None:
        self._outputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._outputs = np.tanh(np.asarray(inputs, dtype=np.float64))
        return self._outputs

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._outputs is None:
            raise TrainingError("Tanh.backward called before forward")
        return grad_outputs * (1.0 - self._outputs**2)


class Dropout(Layer):
    """Inverted dropout: active during training, identity during inference."""

    def __init__(self, rate: float = 0.1, *, seed: int | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise TrainingError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = seeded_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep_probability = 1.0 - self.rate
        self._mask = (
            self._rng.random(inputs.shape) < keep_probability
        ).astype(np.float64) / keep_probability
        return inputs * self._mask

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_outputs
        return grad_outputs * self._mask


class EmbeddingHead:
    """The DUST fine-tuning head: dropout → linear → tanh → linear.

    The head maps frozen base-encoder features to the final tuple embedding
    space; only its parameters are updated during fine-tuning.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 256,
        output_dim: int = 768,
        *,
        dropout_rate: float = 0.1,
        seed: int | None = None,
    ) -> None:
        base_seed = seed if seed is not None else 0
        self.layers: list[Layer] = [
            Dropout(dropout_rate, seed=base_seed + 1),
            Linear(input_dim, hidden_dim, seed=base_seed + 2),
            Tanh(),
            Linear(hidden_dim, output_dim, seed=base_seed + 3),
        ]
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim

    # --------------------------------------------------------------- training
    def set_training(self, training: bool) -> None:
        """Switch dropout behaviour between training and inference."""
        for layer in self.layers:
            layer.training = training

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass over a batch ``(batch, input_dim)``."""
        outputs = np.asarray(inputs, dtype=np.float64)
        if outputs.ndim == 1:
            outputs = outputs[None, :]
        for layer in self.layers:
            outputs = layer.forward(outputs)
        return outputs

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Backward pass, accumulating parameter gradients."""
        gradient = grad_outputs
        for layer in reversed(self.layers):
            gradient = layer.backward(gradient)
        return gradient

    def parameters(self) -> list[np.ndarray]:
        """All trainable parameters in a stable order."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def zero_gradients(self) -> None:
        """Reset all accumulated gradients to zero."""
        for layer in self.layers:
            layer.zero_gradients()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p in self.parameters()))
