"""Lightweight wall-clock timing helpers used by the evaluation harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulates elapsed wall-clock time across one or more measurements.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure():
    ...     _ = sum(range(1000))
    >>> timer.total >= 0.0
    True
    """

    total: float = 0.0
    count: int = 0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager that adds the elapsed time of its block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.total += elapsed
            self.count += 1
            self.laps.append(elapsed)

    @property
    def mean(self) -> float:
        """Average seconds per measured block (0.0 if nothing measured)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.total = 0.0
        self.count = 0
        self.laps.clear()


def timed(func: Callable[..., T], *args: object, **kwargs: object) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
