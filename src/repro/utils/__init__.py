"""Shared utilities: errors, randomness, timing, validation, text and parallel helpers."""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    DataLakeError,
    AlignmentError,
    EmbeddingError,
    DiversificationError,
    TrainingError,
)
from repro.utils.parallel import (
    default_worker_count,
    forked_map,
    parallel_map,
    probe_gate,
    resolve_parallelism,
    threaded_map,
)
from repro.utils.rng import seeded_rng, derive_seed
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_non_empty,
    require_type,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataLakeError",
    "AlignmentError",
    "EmbeddingError",
    "DiversificationError",
    "TrainingError",
    "default_worker_count",
    "forked_map",
    "parallel_map",
    "probe_gate",
    "resolve_parallelism",
    "threaded_map",
    "seeded_rng",
    "derive_seed",
    "Timer",
    "timed",
    "require",
    "require_positive",
    "require_in_range",
    "require_non_empty",
    "require_type",
]
