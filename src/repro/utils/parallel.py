"""Shared parallel-execution machinery: executor selection, probe gating, maps.

Two subsystems fan work out over workers — :class:`~repro.serving.service.QueryService`
(multi-query serving) and the sharded index builder
(:func:`~repro.search.sharded.build_sharded` /
:class:`~repro.search.sharded.ShardedSearcher`).  Both face the same three
problems, solved here once:

* **Executor selection** — scoring and index building are Python-loop-heavy,
  so threads serialize on the GIL; forked worker *processes* inherit the
  parent's in-memory state for free (no pickling, no rebuild) and return only
  small results.  :func:`resolve_parallelism` maps ``"auto"`` to forked
  processes where the platform supports them.
* **Probe gating** — worker startup (fork + copy-on-write) costs real time,
  so tiny workloads must never pay it.  :func:`probe_gate` serves the first
  item(s) in-process, measures the per-item cost and reports whether the
  remaining work amortises a fan-out.
* **Inherited-state mapping** — :func:`forked_map` runs an arbitrary callable
  (closures and bound methods included) over picklable items in forked
  workers.  The callable itself is handed to the children through a module
  global set just before the fork — it is *inherited*, never pickled — and a
  lock serializes concurrent fan-outs so two callers cannot race on that slot.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.utils.errors import ConfigurationError

Item = TypeVar("Item")
Result = TypeVar("Result")

#: The parallelism modes understood by :func:`resolve_parallelism`.
PARALLELISM_MODES = ("auto", "process", "thread", "serial")

#: Callable inherited by forked worker processes (set just before forking).
_FORK_PAYLOAD: Callable | None = None
#: Serializes forked fan-outs so concurrent callers cannot race on the
#: inherited-payload slot between assignment and fork.
_FORK_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether this platform supports forked worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_parallelism(mode: str, *, threads_fallback: bool = True) -> str:
    """Resolve a requested parallelism mode to a concrete one.

    ``"auto"`` becomes ``"process"`` where fork is available — CPU-bound
    Python work gains nothing from threads — and otherwise ``"thread"``, or
    ``"serial"`` when ``threads_fallback`` is false (index *builds* mutate
    shared structures, so without fork they must stay in-process).  Explicit
    modes pass through unchanged: asking for ``"process"`` on a fork-less
    platform should fail loudly at fan-out, not silently degrade.
    """
    if mode not in PARALLELISM_MODES:
        raise ConfigurationError(
            f"parallelism must be one of {'/'.join(PARALLELISM_MODES)}, got {mode!r}"
        )
    if mode == "auto":
        if fork_available():
            return "process"
        return "thread" if threads_fallback else "serial"
    return mode


def default_worker_count(
    num_items: int, *, max_workers: int | None = None, cap: int = 8
) -> int:
    """Worker count for ``num_items`` tasks: explicit override or a bounded default."""
    if max_workers is not None:
        if max_workers <= 0:
            raise ConfigurationError(f"max_workers must be positive, got {max_workers}")
        return max_workers
    return max(1, min(cap, os.cpu_count() or 1, num_items))


def probe_gate(
    pending: Sequence[Item],
    run_probe: Callable[[Item], None],
    *,
    min_seconds: float,
    max_probes: int = 2,
) -> tuple[list[Item], bool]:
    """Serve leading items in-process to decide whether a fan-out amortises.

    Pops up to ``max_probes`` items off ``pending``, runs each through
    ``run_probe`` (which must record its own result — the gate only times it)
    and keeps the *fastest* observation: the first item often pays one-off
    warm-up costs (memo building, numpy initialisation) that would otherwise
    trigger unprofitable fan-outs.  Returns ``(remaining, fan_out)`` where
    ``fan_out`` is true when the estimated remaining work is at least
    ``min_seconds``.  With ``min_seconds=0`` the probes still run and any
    remaining work always fans out (useful for forcing parallelism in tests
    and benchmarks).
    """
    per_item = float("inf")
    remaining = list(pending)
    for _ in range(max_probes):
        if not remaining or per_item * len(remaining) < min_seconds:
            break
        head = remaining.pop(0)
        start = time.perf_counter()
        run_probe(head)
        per_item = min(per_item, time.perf_counter() - start)
    fan_out = bool(remaining) and per_item * len(remaining) >= min_seconds
    return remaining, fan_out


def _run_inherited(item):
    """Invoke the fork-inherited payload inside a worker process."""
    assert _FORK_PAYLOAD is not None  # set in the parent before the fork
    return _FORK_PAYLOAD(item)


def forked_map(
    func: Callable[[Item], Result], items: Iterable[Item], *, workers: int
) -> list[Result]:
    """``[func(item) for item in items]`` in forked worker processes.

    ``func`` may close over arbitrary unpicklable state (a built index, a
    service) — children inherit it through fork.  ``items`` and the results
    must be picklable.  Results come back in input order.
    """
    items = list(items)
    if not items:
        return []
    global _FORK_PAYLOAD
    context = multiprocessing.get_context("fork")
    with _FORK_LOCK:
        _FORK_PAYLOAD = func
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(items)), mp_context=context
            ) as pool:
                return list(pool.map(_run_inherited, items))
        finally:
            _FORK_PAYLOAD = None


def threaded_map(
    func: Callable[[Item], Result], items: Iterable[Item], *, workers: int
) -> list[Result]:
    """``[func(item) for item in items]`` on a thread pool (fork-less fallback)."""
    items = list(items)
    if not items:
        return []
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(func, items))


def parallel_map(
    func: Callable[[Item], Result],
    items: Iterable[Item],
    *,
    mode: str,
    workers: int,
) -> list[Result]:
    """Dispatch a map over ``items`` to the resolved parallelism ``mode``."""
    if mode == "process":
        return forked_map(func, items, workers=workers)
    if mode == "thread":
        return threaded_map(func, items, workers=workers)
    if mode != "serial":
        raise ConfigurationError(
            f"parallel_map mode must be process/thread/serial, got {mode!r}"
        )
    return [func(item) for item in items]
