"""Exception hierarchy for the DUST reproduction library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause while still being able
to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or configuration object was supplied."""


class DataLakeError(ReproError):
    """A table, column or data-lake operation received inconsistent data."""


class AlignmentError(ReproError):
    """Column alignment failed (e.g. no query columns could be matched)."""


class EmbeddingError(ReproError):
    """An embedding model received input it cannot encode."""


class DiversificationError(ReproError):
    """A diversification algorithm received an infeasible request."""


class TrainingError(ReproError):
    """Model fine-tuning failed (bad dataset, divergence, shape mismatch)."""


class SearchError(ReproError):
    """A table union search index or query operation failed."""


class IndexDeltaUnsupported(SearchError):
    """A searcher cannot apply a lake delta incrementally.

    Raised by :meth:`TableUnionSearcher._apply_index_delta` implementations
    when the requested mutation would invalidate parts of the index beyond the
    added/removed tables (or when a backend has no incremental path at all).
    :meth:`TableUnionSearcher.update_index` catches it and falls back to a
    full rebuild, so raising it is always safe — never wrong, only slower.
    """


class IndexMergeUnsupported(SearchError):
    """A searcher cannot assemble a full index from per-shard partials.

    Raised by :meth:`TableUnionSearcher._merge_partial_states` implementations
    (the default raises it unconditionally).
    :meth:`TableUnionSearcher.merge_partials` catches it and falls back to a
    monolithic build over the whole lake, so — like
    :class:`IndexDeltaUnsupported` — raising it is always safe: never wrong,
    only slower.
    """


class IngestError(ReproError):
    """A streaming-ingest event, batch, or rebalance operation failed."""


class BenchmarkError(ReproError):
    """A benchmark generator was asked for an impossible configuration."""


class ServingError(ReproError):
    """An index store or query serving operation failed."""


class IndexStoreMiss(ServingError):
    """The index store has no (valid) entry for the requested backend/lake."""
