"""Small text-normalisation helpers shared by tokenizers and value models."""

from __future__ import annotations

import math
import re
from typing import Any

_WHITESPACE_RE = re.compile(r"\s+")
_NON_ALNUM_RE = re.compile(r"[^0-9a-z ]+")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")

#: Values treated as missing/null throughout the library.
NULL_STRINGS = frozenset({"", "nan", "none", "null", "n/a", "na", "-", "--"})


def normalize_text(value: Any) -> str:
    """Lower-case ``value``, strip punctuation and collapse whitespace."""
    text = "" if value is None else str(value)
    text = text.lower().strip()
    text = _NON_ALNUM_RE.sub(" ", text)
    return _WHITESPACE_RE.sub(" ", text).strip()


def is_null(value: Any) -> bool:
    """Return ``True`` when ``value`` represents a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return str(value).strip().lower() in NULL_STRINGS


def is_numeric(value: Any) -> bool:
    """Return ``True`` when ``value`` parses as a number (int or float)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return not (isinstance(value, float) and math.isnan(value))
    text = str(value).strip().replace(",", "")
    return bool(_NUMBER_RE.match(text))


def to_float(value: Any) -> float | None:
    """Parse ``value`` as a float, returning ``None`` when it is not numeric."""
    if is_null(value):
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    text = str(value).strip().replace(",", "")
    if _NUMBER_RE.match(text):
        return float(text)
    return None


def character_ngrams(token: str, low: int = 3, high: int = 5) -> list[str]:
    """Return padded character n-grams of ``token`` (FastText-style subwords)."""
    padded = f"<{token}>"
    grams: list[str] = []
    for size in range(low, high + 1):
        if len(padded) < size:
            continue
        grams.extend(padded[i : i + size] for i in range(len(padded) - size + 1))
    return grams
