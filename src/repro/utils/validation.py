"""Argument-validation helpers.

The public API validates its inputs eagerly and raises
:class:`repro.utils.errors.ConfigurationError` with a precise message instead
of letting numpy broadcast errors surface far away from the mistake.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized

from repro.utils.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def require_non_empty(collection: Sized, name: str) -> None:
    """Require a non-empty sized collection."""
    if len(collection) == 0:
        raise ConfigurationError(f"{name} must not be empty")


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )


def require_same_length(first: Sized, second: Sized, names: str) -> None:
    """Require two collections to have equal length."""
    if len(first) != len(second):
        raise ConfigurationError(
            f"{names} must have equal lengths, got {len(first)} and {len(second)}"
        )


def require_unique(items: Iterable[Any], name: str) -> None:
    """Require all items in ``items`` to be distinct."""
    seen = set()
    for item in items:
        if item in seen:
            raise ConfigurationError(f"{name} contains duplicate entry {item!r}")
        seen.add(item)
