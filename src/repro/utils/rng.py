"""Deterministic random-number helpers.

All stochastic components of the library (benchmark generators, dropout,
dataset shuffling, the GNE randomized diversifier, ...) draw from
``numpy.random.Generator`` instances produced here, so that every experiment
is reproducible bit-for-bit from a single integer seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used across the library when the caller does not provide one.
DEFAULT_SEED = 20260324  # EDBT 2026 opening day.


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` seeded with ``seed``.

    Parameters
    ----------
    seed:
        Any non-negative integer.  ``None`` selects :data:`DEFAULT_SEED`
        (the library never uses OS entropy so results stay reproducible).
    """
    if seed is None:
        seed = DEFAULT_SEED
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The same ``(base_seed, labels)`` pair always maps to the same child seed,
    and different label paths map to (practically) independent seeds.  This is
    how benchmark generators give every table, column and row its own stream
    without the streams interfering with each other.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % (2**63 - 1)


def stable_hash(text: str, *, buckets: int | None = None) -> int:
    """Hash ``text`` to a stable non-negative integer.

    Python's built-in ``hash`` is salted per process, which would make hashed
    embeddings differ between runs; this helper uses SHA-256 instead.  When
    ``buckets`` is given the result is reduced modulo ``buckets``.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big")
    if buckets is not None:
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        value %= buckets
    return value
