"""Embedding matrix wrapper: one dtype, rows normalised once.

Every stage of Algorithm 2 re-derives the same quantities from the raw
embedding rows — L2 norms for cosine distances, unit rows for similarity
matmuls.  :class:`EmbeddingMatrix` computes each of them at most once and
serves cached views, so the cost of preparing a candidate set is paid a single
time per query regardless of how many downstream consumers touch it.
"""

from __future__ import annotations

import numpy as np


class EmbeddingMatrix:
    """A ``(rows, dim)`` embedding matrix with cached norms and unit rows.

    Parameters
    ----------
    data:
        Anything array-like; 1-D input is promoted to a single row.  The data
        is converted to ``dtype`` exactly once and never mutated.
    dtype:
        Floating dtype of the stored matrix (``float64`` by default so the
        numerics match the per-call paths this class replaces).
    """

    __slots__ = ("data", "_norms", "_unit")

    def __init__(self, data, *, dtype: np.dtype | type = np.float64) -> None:
        matrix = np.asarray(data, dtype=dtype)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2:
            raise ValueError(f"expected a 1-D or 2-D array, got shape {matrix.shape}")
        self.data = matrix
        self._norms: np.ndarray | None = None
        self._unit: np.ndarray | None = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def wrap(cls, data, *, dtype: np.dtype | type = np.float64) -> "EmbeddingMatrix":
        """Return ``data`` unchanged if it already is an :class:`EmbeddingMatrix`."""
        if isinstance(data, EmbeddingMatrix):
            return data
        if data is None:
            return cls(np.zeros((0, 0), dtype=dtype), dtype=dtype)
        return cls(data, dtype=dtype)

    # ------------------------------------------------------------- basic shape
    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def num_rows(self) -> int:
        return self.data.shape[0]

    @property
    def dimension(self) -> int:
        return self.data.shape[1]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmbeddingMatrix(shape={self.data.shape}, dtype={self.data.dtype})"

    # ---------------------------------------------------------- cached derived
    @property
    def norms(self) -> np.ndarray:
        """Row L2 norms, computed once."""
        if self._norms is None:
            self._norms = np.linalg.norm(self.data, axis=1)
        return self._norms

    @property
    def unit(self) -> np.ndarray:
        """Rows scaled to unit L2 norm; zero rows stay zero.  Computed once.

        Zero rows are detected with the exact ``norm == 0`` test
        :func:`~repro.cluster.distance.cosine_distance_matrix` uses, so unit
        rows and masks feed
        :func:`~repro.cluster.distance.cosine_distance_matrix_from_unit`
        with bit-identical results.
        """
        if self._unit is None:
            norms = self.norms
            safe = np.where(norms == 0.0, 1.0, norms)
            self._unit = self.data / safe[:, None]
        return self._unit

    @property
    def zero_rows(self) -> np.ndarray:
        """Boolean mask of all-zero rows."""
        return self.norms == 0.0

    # ------------------------------------------------------------------- views
    def take(self, rows) -> "EmbeddingMatrix":
        """Sub-matrix over ``rows``, propagating any already-computed caches."""
        index = np.asarray(rows, dtype=int)
        subset = EmbeddingMatrix(self.data[index], dtype=self.data.dtype)
        if self._norms is not None:
            subset._norms = self._norms[index]
        if self._unit is not None:
            subset._unit = self._unit[index]
        return subset
