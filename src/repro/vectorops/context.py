"""Shared per-query distance computation (the DUST hot path, Sec. 5.1/6.2.5).

Algorithm 2 and every IR diversification baseline need overlapping slices of
one conceptual object: the pairwise distance matrix over the query tuples and
the candidate unionable tuples.  The seed implementation recomputed those
slices independently in pruning, clustering, medoid extraction, re-ranking,
the k-shortfall fallback and the Eq. 1/Eq. 2 metrics.  A
:class:`DistanceContext` computes each block of the full (query ∪ candidate)
matrix lazily — once per metric — and serves cheap sub-matrix views to every
consumer.

The full matrix is maintained as two independently-cached blocks per metric:
the ``(s, s)`` candidate square and the ``(s, n)`` candidate-to-query block.
The ``(n, n)`` query square is only materialised by :meth:`full`, because no
stage of Algorithm 2 needs it (Eq. 1 explicitly excludes query↔query
distances as constant across methods).

All public accessors take *candidate-relative* indices, because that is the
index space every Algorithm 2 stage works in.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cluster.distance import (
    cosine_distance_matrix_from_unit,
    pairwise_distance_matrix,
)
from repro.vectorops.matrix import EmbeddingMatrix

#: Signature of the matrix kernel: ``kernel(first, second=None, metric=...)``.
DistanceKernel = Callable[..., np.ndarray]


class DistanceContext:
    """Lazily-computed, metric-keyed distance cache over query ∪ candidates.

    Parameters
    ----------
    query_embeddings:
        ``(n, dim)`` query tuple embeddings (may be empty / ``None``).
    candidate_embeddings:
        ``(s, dim)`` candidate tuple embeddings.
    metric:
        Default metric used when an accessor is called without one.
    kernel:
        The pairwise matrix kernel; injectable so tests can count invocations.
        Defaults to :func:`repro.cluster.distance.pairwise_distance_matrix`.
    """

    def __init__(
        self,
        query_embeddings,
        candidate_embeddings,
        *,
        metric: str = "cosine",
        kernel: DistanceKernel | None = None,
    ) -> None:
        self.candidates = EmbeddingMatrix.wrap(candidate_embeddings)
        query = EmbeddingMatrix.wrap(query_embeddings)
        if query.num_rows == 0:
            query = EmbeddingMatrix(
                np.zeros((0, self.candidates.dimension), dtype=self.candidates.data.dtype)
            )
        self.query = query
        if (
            self.query.num_rows > 0
            and self.query.dimension != self.candidates.dimension
        ):
            raise ValueError(
                "query and candidate embeddings have different dimensionality: "
                f"{self.query.dimension} vs {self.candidates.dimension}"
            )
        self.metric = metric
        self.kernel: DistanceKernel = kernel or pairwise_distance_matrix
        self._square: dict[str, np.ndarray] = {}
        self._to_query: dict[str, np.ndarray] = {}
        self._full: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ shapes
    @property
    def num_queries(self) -> int:
        return self.query.num_rows

    @property
    def num_candidates(self) -> int:
        return self.candidates.num_rows

    # ---------------------------------------------------------------- matrices
    def _compute(
        self,
        left: EmbeddingMatrix,
        right: EmbeddingMatrix | None,
        metric: str,
    ) -> np.ndarray:
        """One distance block.  The default cosine path reuses the unit rows
        each :class:`EmbeddingMatrix` normalises once (bit-identical to the
        kernel, which would re-derive the norms per call); injected kernels
        always receive the raw rows so counting spies see every computation.
        """
        if metric == "cosine" and self.kernel is pairwise_distance_matrix:
            if right is None:
                return cosine_distance_matrix_from_unit(
                    left.unit, left_zero=left.zero_rows
                )
            return cosine_distance_matrix_from_unit(
                left.unit,
                right.unit,
                left_zero=left.zero_rows,
                right_zero=right.zero_rows,
            )
        if right is None:
            return self.kernel(left.data, metric=metric)
        return self.kernel(left.data, right.data, metric=metric)

    def candidate_distances(self, metric: str | None = None) -> np.ndarray:
        """``(s, s)`` pairwise candidate square, computed once per metric."""
        metric = metric or self.metric
        cached = self._square.get(metric)
        if cached is None:
            cached = self._compute(self.candidates, None, metric)
            self._square[metric] = cached
        return cached

    def query_candidate_distances(self, metric: str | None = None) -> np.ndarray:
        """``(s, n)`` candidate-to-query block, computed once per metric."""
        metric = metric or self.metric
        if self.num_queries == 0:
            return np.zeros((self.num_candidates, 0), dtype=np.float64)
        cached = self._to_query.get(metric)
        if cached is None:
            cached = self._compute(self.candidates, self.query, metric)
            self._to_query[metric] = cached
        return cached

    def full(self, metric: str | None = None) -> np.ndarray:
        """The assembled ``(n + s, n + s)`` matrix (query rows first).

        Built from the cached blocks plus the (otherwise unneeded) query
        square; cached per metric.  Hot-path consumers use the block accessors
        instead — this exists for analyses that want the whole matrix.
        """
        metric = metric or self.metric
        cached = self._full.get(metric)
        if cached is None:
            square = self.candidate_distances(metric)
            if self.num_queries == 0:
                cached = square
            else:
                to_query = self.query_candidate_distances(metric)
                query_square = self._compute(self.query, None, metric)
                cached = np.block([[query_square, to_query.T], [to_query, square]])
            self._full[metric] = cached
        return cached

    def is_cached(self, metric: str | None = None) -> bool:
        """Whether the candidate square for ``metric`` is already materialised."""
        return (metric or self.metric) in self._square

    def computed_metrics(self) -> tuple[str, ...]:
        """Metrics whose candidate square has already been materialised."""
        return tuple(self._square)

    # ------------------------------------------------------------------- views
    def block(
        self,
        rows: Sequence[int] | np.ndarray | None,
        cols: Sequence[int] | np.ndarray | None,
        *,
        metric: str | None = None,
    ) -> np.ndarray:
        """Distances between two candidate subsets (candidate-relative indices).

        Served as a view of the cached square when it exists (or when the
        whole square is requested); a narrow one-off block on a cold cache is
        computed directly without materialising the ``(s, s)`` square.
        """
        metric = metric or self.metric
        if rows is None and cols is None:
            return self.candidate_distances(metric)
        row_index = np.arange(self.num_candidates) if rows is None else np.asarray(rows, dtype=int)
        col_index = np.arange(self.num_candidates) if cols is None else np.asarray(cols, dtype=int)
        if self.is_cached(metric):
            return self._square[metric][np.ix_(row_index, col_index)]
        left = self.candidates.take(row_index)
        # Equal index sets mean a within-subset matrix: use the self-mode
        # kernel (zeroed diagonal) so warm and cold caches agree.
        if np.array_equal(row_index, col_index):
            return self._compute(left, None, metric)
        return self._compute(left, self.candidates.take(col_index), metric)

    def within(
        self,
        rows: Sequence[int] | np.ndarray | None = None,
        *,
        metric: str | None = None,
    ) -> np.ndarray:
        """Square pairwise matrix among a candidate subset (all when ``None``)."""
        return self.block(rows, rows, metric=metric)

    def to_query(
        self,
        rows: Sequence[int] | np.ndarray | None = None,
        *,
        metric: str | None = None,
    ) -> np.ndarray:
        """``(len(rows), n)`` distances from candidate rows to the query tuples.

        Served as a slice of the cached ``(s, n)`` block when it exists; a
        narrow request on a cold cache is computed directly without
        materialising the full block.
        """
        if rows is None:
            return self.query_candidate_distances(metric)
        index = np.asarray(rows, dtype=int)
        metric = metric or self.metric
        cached = self._to_query.get(metric)
        if cached is not None:
            return cached[index]
        if self.num_queries == 0:
            return np.zeros((len(index), 0), dtype=np.float64)
        return self._compute(self.candidates.take(index), self.query, metric)

    # ---------------------------------------------------------------- narrowing
    def subset(self, rows: Sequence[int] | np.ndarray) -> "DistanceContext":
        """Context over (query ∪ ``candidates[rows]``), reusing computed blocks.

        Any block already materialised on the parent is sliced into the
        child's cache, so narrowing after pruning never recomputes a distance.
        The child shares the parent's kernel (and therefore any counting spy).
        """
        index = np.asarray(rows, dtype=int)
        child = DistanceContext(
            self.query,
            self.candidates.take(index),
            metric=self.metric,
            kernel=self.kernel,
        )
        for metric, square in self._square.items():
            child._square[metric] = square[np.ix_(index, index)]
        for metric, to_query in self._to_query.items():
            child._to_query[metric] = to_query[index]
        return child
