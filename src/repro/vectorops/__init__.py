"""Shared vector engine: batch embeddings, cached per-query distance matrices.

The DUST runtime study (paper Sec. 6.2.5) shows pairwise distance computation
dominating Algorithm 2.  This package is the single place that cost is paid:

* :class:`EmbeddingMatrix` — a dtype-controlled embedding matrix whose row
  norms and unit rows are computed once and cached.
* :class:`DistanceContext` — lazily computes the full (query ∪ candidate)
  pairwise distance matrix per metric and serves sub-matrix views
  (``block``, ``to_query``, ``within``) to pruning, clustering, medoid
  extraction, re-ranking, the k-shortfall fallback, the Eq. 1/Eq. 2 metrics
  and every IR diversification baseline.
"""

from repro.vectorops.context import DistanceContext
from repro.vectorops.matrix import EmbeddingMatrix

__all__ = ["DistanceContext", "EmbeddingMatrix"]
