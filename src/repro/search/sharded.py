"""Sharded index construction and fan-out/merge search serving.

Two entry points turn the per-shard protocol of
:class:`~repro.search.base.TableUnionSearcher` (``build_partial`` /
``merge_partials`` / ``finalize_shard_group``) into whole-lake machinery:

* :func:`build_sharded` — partition a lake, build every shard's partial index
  **concurrently in forked worker processes** (probe-gated, so tiny lakes
  never pay fork startup) and merge the partials into one monolithic index on
  the given searcher.  The merged index is bit-identical to a serial
  ``searcher.index(lake)`` — ranks *and* scores.
* :class:`ShardedSearcher` — a composite :class:`TableUnionSearcher` that
  keeps one independently-indexed searcher per shard and answers queries by
  **fanning out** over the shard indexes and merging their top-k lists by
  ``(-score, table name)`` — the exact ordering of the monolithic
  ``search()``, so served rankings are bit-identical to an unsharded backend.
  Because it *is* a ``TableUnionSearcher``, everything downstream
  (``QueryService`` caching and multi-query fan-out, ``DustPipeline``, the
  ``Discovery`` facade) composes with it unchanged.

Per-shard persistence: give :class:`ShardedSearcher` an
:class:`~repro.serving.store.IndexStore` and each shard is loaded from /
persisted to its own store entry, keyed by the shard's content fingerprint.
Mutating the lake therefore re-indexes and re-persists **only the shards
whose fingerprints moved**, and each shard's store entry composes with the
store's snapshot-delta path (PR 4): a shard that drifted slightly is healed
by delta-updating its closest prior snapshot, not rebuilt.

Why fan-out equals monolithic, per backend: every backend's per-table score
depends only on the query and that table's index entry — except Starmie,
whose TF-IDF corpus is lake-global.  ``finalize_shard_group`` closes that
gap after every (re)build by loading the exact global fit (summed integer
corpus contributions) into each shard searcher and re-encoding the rare
oversized tables, so per-table scores — and hence merged rankings — are
bit-identical to one flat index.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable, Sequence

from repro.datalake.lake import DataLake
from repro.datalake.partition import LakePartitioner, LakeShard, _stable_shard_hash
from repro.search.base import IndexState, SearchResult, TableUnionSearcher
from repro.utils.errors import IndexStoreMiss, SearchError, ServingError
from repro.utils.parallel import (
    default_worker_count,
    forked_map,
    probe_gate,
    resolve_parallelism,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> search)
    from repro.serving.store import IndexStore


def skew_of(loads: Sequence[int]) -> float:
    """Size skew of a shard load vector: ``max(load) / mean(load)``.

    1.0 means perfectly balanced; 2.0 means the hottest shard carries twice
    the average.  Empty or all-zero vectors report 1.0 (nothing to balance).
    """
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 1.0
    return max(loads) / mean


def balanced_assignment(
    assignment: dict[str, int],
    sizes: dict[str, int],
    num_shards: int,
    *,
    skew_threshold: float = 2.0,
) -> tuple[dict[str, int], list[str]]:
    """Rebalance ``assignment`` by moving as few tables as possible.

    Greedy descent: while the load skew exceeds ``skew_threshold``, move the
    largest table off the hottest shard onto the coldest shard — but only
    when the move strictly lowers the pair's max load, so the loop always
    terminates and never thrashes a table back and forth.  Minimizing *moved
    tables* (rather than recomputing a globally optimal layout) is the point:
    every mover is a shard index rebuild and a store re-persist.

    Returns ``(new_assignment, moved_names)``.
    """
    assignment = dict(assignment)
    loads = [0] * num_shards
    members: list[list[str]] = [[] for _ in range(num_shards)]
    for name, shard_id in assignment.items():
        loads[shard_id] += sizes.get(name, 1)
        members[shard_id].append(name)
    moved: list[str] = []
    for _ in range(2 * max(1, len(assignment))):
        if skew_of(loads) <= skew_threshold:
            break
        hot = max(range(num_shards), key=lambda i: loads[i])
        cold = min(range(num_shards), key=lambda i: loads[i])
        if hot == cold:
            break
        chosen = None
        for name in sorted(members[hot], key=lambda n: -sizes.get(n, 1)):
            size = sizes.get(name, 1)
            if max(loads[hot] - size, loads[cold] + size) < loads[hot]:
                chosen = name
                break
        if chosen is None:
            break  # no single move improves the hot/cold pair further
        size = sizes.get(chosen, 1)
        members[hot].remove(chosen)
        members[cold].append(chosen)
        loads[hot] -= size
        loads[cold] += size
        assignment[chosen] = cold
        moved.append(chosen)
    return assignment, moved


def _shards_from_assignment(
    lake: DataLake, assignment: dict[str, int], num_shards: int
) -> list[LakeShard]:
    """Materialise :class:`LakeShard` views from an explicit assignment map."""
    members: list[list[str]] = [[] for _ in range(num_shards)]
    for name in lake.table_names():  # lake insertion order within shards
        members[assignment[name]].append(name)
    return [
        LakeShard(
            parent=lake,
            shard_id=shard_id,
            num_shards=num_shards,
            strategy="pinned",
            table_names=tuple(names),
        )
        for shard_id, names in enumerate(members)
    ]


def _ensure_store_capacity(store: "IndexStore | None", num_shards: int) -> None:
    """Raise the store's per-backend entry bound to fit live shard entries.

    Live shard entries (plus the merged whole-lake entry) all share one
    backend directory, and the store's eviction treats everything but the
    latest save as a superseded snapshot — with a bound sized for single-lake
    deployments it would delete *live* shard entries mid-build and every
    later warm would rebuild a rotating victim.  Raising the bound only
    retains more disk, so the composite does it once, centrally, instead of
    every call site having to know the arithmetic.
    """
    if store is None or store.max_entries_per_backend is None:
        return
    required = 2 * num_shards + 2  # live shards + merged entry + delta headroom
    if store.max_entries_per_backend < required:
        store.max_entries_per_backend = required


def _materialize_shard_state(
    searcher: TableUnionSearcher,
    shard_lake: DataLake,
    store: "IndexStore | None",
) -> IndexState:
    """Build (or restore) one shard's index and return its serialized state.

    Runs inside a forked worker during parallel builds — the searcher and
    shard lake are fork-inherited, only the returned state is pickled.  With
    a store, the shard round-trips through ``load_or_build``: an existing
    entry for the shard's content is a fast load, a drifted shard is healed
    by the store's snapshot-delta path, and anything else is built once and
    persisted — all per shard.
    """
    if store is not None and searcher.SHARD_LOCAL_INDEX:
        store.load_or_build(searcher, shard_lake)
        return searcher.index_state()
    return searcher.build_partial(shard_lake)


def _build_partials(
    searchers: Sequence[TableUnionSearcher],
    shard_lakes: Sequence[DataLake],
    jobs: Sequence[int],
    *,
    store: "IndexStore | None",
    workers: int | None,
    parallelism: str,
    parallel_min_seconds: float,
    capture_in_process: bool = True,
) -> dict[int, IndexState | None]:
    """Materialise every shard index in ``jobs``; return captured states.

    The shared probe-gated fan-out heuristic (one build serves as the probe;
    the rest fork only when the estimated remaining work amortises worker
    startup).  Threads are never used: partial builds mutate searcher
    internals, and index building is GIL-bound anyway.

    Forked shards always come back as serialized states (the only way index
    structures cross the process boundary).  Shards built *in-process* are
    left live on their searcher; with ``capture_in_process=False`` their map
    entry is ``None`` instead of a redundant dump-and-reload round-trip —
    callers that keep one searcher per shard (:class:`ShardedSearcher`) need
    no state for them, while :func:`build_sharded` (one scratch searcher for
    every shard) must capture each state before the next build clobbers it.
    """
    states: dict[int, IndexState | None] = {}

    def materialize(shard_id: int) -> IndexState:
        return _materialize_shard_state(
            searchers[shard_id], shard_lakes[shard_id], store
        )

    def build_in_process(shard_id: int) -> None:
        if capture_in_process:
            states[shard_id] = materialize(shard_id)
            return
        searcher, shard_lake = searchers[shard_id], shard_lakes[shard_id]
        if store is not None and searcher.SHARD_LOCAL_INDEX:
            store.load_or_build(searcher, shard_lake)
        elif searcher.SHARD_LOCAL_INDEX:
            searcher.index(shard_lake)
        else:  # oracle-style: index() would validate against the bare shard
            searcher.load_partial(shard_lake, *searcher.build_partial(shard_lake))
        states[shard_id] = None  # already live on the shard's own searcher

    mode = resolve_parallelism(parallelism, threads_fallback=False)
    worker_count = default_worker_count(len(jobs), max_workers=workers)
    # Builds are CPU-bound: more workers than cores never helps and the
    # oversubscription context-switching actively hurts, so the requested
    # worker count is capped at the machine's physical parallelism.
    worker_count = max(1, min(worker_count, os.cpu_count() or 1))
    if mode != "process" or worker_count <= 1 or len(jobs) <= 1:
        for shard_id in jobs:
            build_in_process(shard_id)
        return states

    remaining, fan_out = probe_gate(
        jobs, build_in_process, min_seconds=parallel_min_seconds, max_probes=1
    )
    if fan_out:
        for shard_id, state in zip(
            remaining, forked_map(materialize, remaining, workers=worker_count)
        ):
            states[shard_id] = state
    else:
        for shard_id in remaining:
            build_in_process(shard_id)
    return states


def build_sharded(
    searcher: TableUnionSearcher,
    lake: DataLake,
    *,
    num_shards: int,
    strategy: str = "hash",
    workers: int | None = None,
    parallelism: str = "auto",
    parallel_min_seconds: float = 0.5,
    store: "IndexStore | None" = None,
) -> TableUnionSearcher:
    """Index ``lake`` on ``searcher`` via parallel per-shard builds + merge.

    Bit-identical to ``searcher.index(lake)`` — the partials are merged with
    the backend's exact-merge implementation (corpus-contribution summation
    for Starmie, signature/signal unions elsewhere, oracle re-validation).
    With a ``store``, every shard is served through its own persisted entry
    *and* the merged whole-lake index is persisted too, so both sharded and
    unsharded consumers of the same content hit warm entries afterwards; an
    already-warm whole-lake entry short-circuits the partition entirely.
    The store's per-backend entry bound is raised as needed so live shard
    entries are never evicted as superseded snapshots.
    """
    if store is not None:
        _ensure_store_capacity(store, num_shards)
        try:
            return store.load(searcher, lake)  # warm whole-lake entry: done
        except IndexStoreMiss:
            pass
        except ServingError:
            pass  # corrupt entry: rebuild below overwrites and heals it
    partitioner = LakePartitioner(num_shards, strategy=strategy)
    shards = partitioner.partition(lake)
    shard_lakes = [shard.to_lake() for shard in shards]
    jobs = [i for i, shard_lake in enumerate(shard_lakes) if shard_lake.num_tables]
    if len(jobs) <= 1:
        if store is not None:
            return store.load_or_build(searcher, lake)
        return searcher.index(lake)
    states = _build_partials(
        [searcher] * len(shards),  # workers fork copies; serial reuse is safe
        shard_lakes,
        jobs,
        store=store,
        workers=workers,
        parallelism=parallelism,
        parallel_min_seconds=parallel_min_seconds,
    )
    searcher.merge_partials(lake, [states[shard_id] for shard_id in jobs])
    if store is not None:
        try:
            store.save(searcher, lake)
        except SearchError:
            pass  # backends without index_state() still serve in-process
    return searcher


class ShardedSearcher(TableUnionSearcher):
    """Partition-parallel composite searcher with fan-out/merge serving.

    Parameters
    ----------
    factory:
        Zero-argument callable building one configured backend instance; one
        searcher is built per shard (plus a prototype used for configuration
        fingerprints and shard-group finalization).
    num_shards, strategy:
        The :class:`~repro.datalake.partition.LakePartitioner` configuration.
        ``"hash"`` keeps table->shard assignment mutation-stable, so a lake
        mutation touches exactly the shards whose tables changed.
    workers, parallelism, parallel_min_seconds:
        Parallel-build knobs shared with :func:`build_sharded`.
    store:
        Optional :class:`~repro.serving.store.IndexStore`.  Each shard then
        persists as its own entry keyed by shard content fingerprint;
        refreshes re-persist only the mutated shards.  The store's
        per-backend entry bound counts shard entries, so give lakes sharded
        N ways a store whose ``max_entries_per_backend`` comfortably exceeds
        N (the facade and warm CLI do this automatically).

    The composite's ``config_fingerprint()`` is the *prototype's*: sharding
    is an execution strategy, not a semantic configuration — rankings are
    bit-identical to the flat backend, so result caches and store entries
    are deliberately shared with unsharded deployments of the same config.
    """

    def __init__(
        self,
        factory: Callable[[], TableUnionSearcher],
        *,
        num_shards: int,
        strategy: str = "hash",
        workers: int | None = None,
        parallelism: str = "auto",
        parallel_min_seconds: float = 0.5,
        store: "IndexStore | None" = None,
    ) -> None:
        super().__init__()
        self.factory = factory
        self.partitioner = LakePartitioner(num_shards, strategy=strategy)
        self.workers = workers
        self.parallelism = parallelism
        self.parallel_min_seconds = parallel_min_seconds
        self.store = store
        _ensure_store_capacity(store, self.partitioner.num_shards)
        self._prototype = factory()
        if not isinstance(self._prototype, TableUnionSearcher):
            raise SearchError(
                "ShardedSearcher factory must build TableUnionSearcher instances, "
                f"got {type(self._prototype).__name__}"
            )
        self._shards: list[LakeShard] = []
        self._shard_lakes: list[DataLake] = []
        self._shard_searchers: list[TableUnionSearcher | None] = []
        self._shard_of_table: dict[str, int] = {}
        #: Pinned table->shard assignment installed by :meth:`rebalance`.
        #: While pinned, re-partitions honour it (new tables route by stable
        #: name hash, departed names are pruned) instead of re-deriving from
        #: the partitioner — otherwise the next mutation's refresh would
        #: silently undo the rebalance.
        self._assignment: dict[str, int] | None = None
        self._assignment_shards: int = self.partitioner.num_shards
        #: Shards whose restoration is deferred until first touch: shard id
        #: -> the shard content fingerprints the warm store entry covers.
        #: Populated by :meth:`_build_index` when every non-empty shard has a
        #: warm store entry (see :meth:`_can_defer_restore`); drained by
        #: :meth:`_materialize_shard` as queries/refreshes touch shards.
        self._deferred: dict[int, dict[str, str]] = {}
        self._restore_lock = threading.Lock()

    # ------------------------------------------------------------- properties
    @property
    def num_shards(self) -> int:
        if self._assignment is not None:
            return self._assignment_shards
        return self.partitioner.num_shards

    @property
    def shards(self) -> list[LakeShard]:
        """The current partition (empty before :meth:`index`)."""
        return list(self._shards)

    @property
    def shard_searchers(self) -> list[TableUnionSearcher | None]:
        """Per-shard backend instances (``None`` for empty or deferred shards)."""
        return list(self._shard_searchers)

    @property
    def deferred_shards(self) -> list[int]:
        """Shard ids whose restoration is still pending first touch."""
        return sorted(self._deferred)

    @property
    def manages_own_persistence(self) -> bool:
        """With a store, shards persist themselves — consumers must not
        additionally save this composite as one monolithic entry."""
        return self.store is not None

    def config_state(self) -> dict:
        return {
            "base_class": type(self._prototype).__name__,
            "base": self._prototype.config_state(),
            "num_shards": self.partitioner.num_shards,
            "strategy": self.partitioner.strategy,
        }

    def config_fingerprint(self) -> str:
        """The *prototype's* fingerprint — see the class docstring."""
        return self._prototype.config_fingerprint()

    # ------------------------------------------------------------------ build
    def _partition(self, lake: DataLake) -> list[LakeShard]:
        """Partition ``lake``, honouring a pinned rebalanced assignment.

        Without a pinned assignment this is exactly
        ``self.partitioner.partition(lake)``.  With one, membership follows
        the pinned map: tables the map has never seen route by stable name
        hash onto the pinned shard count, and names no longer in the lake
        are pruned — so the assignment tracks the lake without drifting back
        to the partitioner's layout.
        """
        if self._assignment is None:
            return self.partitioner.partition(lake)
        count = self._assignment_shards
        assignment = {
            name: self._assignment.get(name, _stable_shard_hash(name) % count)
            for name in lake.table_names()
        }
        self._assignment = assignment
        return _shards_from_assignment(lake, assignment, count)

    def _adopt_partition(
        self,
        lake: DataLake,
        shards: list[LakeShard],
        shard_lakes: list[DataLake],
        searchers: list[TableUnionSearcher | None],
    ) -> None:
        self._shards = shards
        self._shard_lakes = shard_lakes
        self._shard_searchers = searchers
        self._shard_of_table = {
            name: shard.shard_id for shard in shards for name in shard.table_names
        }
        self._prototype.finalize_shard_group(
            lake, [searcher for searcher in searchers if searcher is not None]
        )

    def _can_defer_restore(
        self, jobs: list[int], shard_lakes: list[DataLake]
    ) -> bool:
        """Whether restoration can defer per-shard loads until first touch.

        All-or-nothing, and only when deferral is provably equivalent to the
        eager path: a store with ``lazy_shards`` enabled, a shard-local
        backend whose ``finalize_shard_group`` is the no-op default (Starmie
        aligns a lake-global TF-IDF fit across live shard searchers at adopt
        time, the oracle re-validates — both need every searcher live), and
        a warm store entry for **every** non-empty shard, so no deferred
        touch can silently turn into a full shard build.
        """
        if (
            self.store is None
            or not getattr(self.store, "lazy_shards", False)
            or not self._prototype.SHARD_LOCAL_INDEX
            or type(self._prototype).finalize_shard_group
            is not TableUnionSearcher.finalize_shard_group
            or len(jobs) <= 1
        ):
            return False
        return all(
            self.store.contains(self._prototype, shard_lakes[shard_id])
            for shard_id in jobs
        )

    def _materialize_shard(self, shard_id: int) -> TableUnionSearcher | None:
        """The shard's live searcher, restoring a deferred one on first touch."""
        searcher = self._shard_searchers[shard_id]
        if searcher is not None or shard_id not in self._deferred:
            return searcher
        with self._restore_lock:
            searcher = self._shard_searchers[shard_id]
            if searcher is not None:  # lost the race: another thread restored it
                return searcher
            searcher = self.factory()
            self.store.load_or_build(searcher, self._shard_lakes[shard_id])
            self._shard_searchers[shard_id] = searcher
            self._deferred.pop(shard_id, None)
            return searcher

    def _materialize_all(self) -> None:
        for shard_id in sorted(self._deferred):
            self._materialize_shard(shard_id)

    def _build_index(self, lake: DataLake) -> None:
        shards = self._partition(lake)
        shard_lakes = [shard.to_lake() for shard in shards]
        searchers: list[TableUnionSearcher | None] = [None] * len(shards)
        jobs = [i for i, shard_lake in enumerate(shard_lakes) if shard_lake.num_tables]
        if self._can_defer_restore(jobs, shard_lakes):
            # Fully warm store: adopt the partition with every shard slot
            # empty and restore each shard from its entry on first touch —
            # cold start becomes O(touched shards) instead of O(lake).
            self._deferred = {
                shard_id: shard_lakes[shard_id].table_fingerprints()
                for shard_id in jobs
            }
            self._adopt_partition(lake, shards, shard_lakes, searchers)
            return
        self._deferred = {}
        for shard_id in jobs:
            searchers[shard_id] = self.factory()
        states = _build_partials(
            searchers,  # type: ignore[arg-type]  (jobs index only built slots)
            shard_lakes,
            jobs,
            store=self.store,
            workers=self.workers,
            parallelism=self.parallelism,
            parallel_min_seconds=self.parallel_min_seconds,
            capture_in_process=False,  # in-process shards are live already
        )
        for shard_id in jobs:
            state = states[shard_id]
            if state is not None:  # fork-built shards arrive as states
                searchers[shard_id].load_partial(  # type: ignore[union-attr]
                    shard_lakes[shard_id], *state
                )
        self._adopt_partition(lake, shards, shard_lakes, searchers)

    # ------------------------------------------------------------ maintenance
    def _apply_index_delta(self, added, removed) -> None:
        """Re-derive the partition and touch only the shards that changed.

        The added/removed lists are ignored in favour of per-shard content
        fingerprint diffs — they see exactly the same net change, and the
        diff is what decides *which shard* pays.  Unchanged shards keep
        their searchers untouched; changed shards are delta-updated in
        memory (:meth:`~TableUnionSearcher.rebase`) and, with a store,
        re-persisted — only them.
        """
        lake = self.lake
        shards = self._partition(lake)
        shard_lakes = [shard.to_lake() for shard in shards]
        searchers: list[TableUnionSearcher | None] = [None] * len(shards)
        new_deferred: dict[int, dict[str, str]] = {}
        for shard_id, shard_lake in enumerate(shard_lakes):
            previous = (
                self._shard_searchers[shard_id]
                if shard_id < len(self._shard_searchers)
                else None
            )
            if shard_lake.num_tables == 0:
                continue
            if previous is None and shard_id in self._deferred:
                if self._deferred[shard_id] == shard_lake.table_fingerprints():
                    # Deferred shard the mutation never touched: stay
                    # deferred — a refresh costs O(touched shards) too.
                    new_deferred[shard_id] = self._deferred[shard_id]
                    continue
                # Deferred shard whose content drifted: restore through the
                # store's exact/delta path (which persists the new entry).
                searcher = self.factory()
                self.store.load_or_build(searcher, shard_lake)
                searchers[shard_id] = searcher
                continue
            if (
                previous is not None
                and previous.is_indexed
                and previous._indexed_table_fps == shard_lake.table_fingerprints()
            ):
                searchers[shard_id] = previous  # shard content untouched
                continue
            searcher = previous if previous is not None else self.factory()
            if not searcher.SHARD_LOCAL_INDEX:
                searcher.load_partial(shard_lake, *searcher.build_partial(shard_lake))
            else:
                searcher.rebase(shard_lake)
                if self.store is not None:
                    try:
                        self.store.save(searcher, shard_lake)
                    except SearchError:
                        pass
            searchers[shard_id] = searcher
        self._deferred = new_deferred
        self._adopt_partition(lake, shards, shard_lakes, searchers)

    # ------------------------------------------------------------- rebalancing
    def shard_loads(self) -> list[int]:
        """Per-shard load (total cell count) of the current partition."""
        loads = [0] * max(1, len(self._shard_searchers) or self.num_shards)
        if not self._shard_of_table:
            return loads
        lake = self.lake
        for name, shard_id in self._shard_of_table.items():
            table = lake.get(name)
            loads[shard_id] += max(1, table.num_rows * table.num_columns)
        return loads

    def rebalance(
        self, *, skew_threshold: float = 2.0, num_shards: int | None = None
    ) -> dict:
        """Online shard rebalancing: fix size drift, touching only movers.

        Measures the current partition's load skew (:func:`skew_of` over
        per-shard cell counts).  When it exceeds ``skew_threshold`` — or
        ``num_shards`` asks for a different shard count (split/merge) — a
        minimal-move balanced reassignment (:func:`balanced_assignment`) is
        computed and **pinned**: subsequent refreshes honour it instead of
        drifting back to the partitioner's layout.

        Shards whose membership is untouched keep their searcher objects
        (and store entries) as-is; only shards that gained or lost tables
        are delta-rebuilt (:meth:`~TableUnionSearcher.rebase` reuses the
        best-overlapping previous shard searcher) and re-persisted.  Served
        rankings are bit-identical before and after — sharding is an
        execution strategy, so rebalancing can never change results, only
        per-shard cost.

        Returns a report: ``rebalanced``, ``num_shards``, ``skew_before``,
        ``skew_after``, ``moved`` (tables reassigned), ``shards_rebuilt``.
        """
        lake = self.lake  # raises before index()
        if skew_threshold < 1.0:
            raise SearchError(
                f"skew_threshold must be >= 1.0, got {skew_threshold}"
            )
        current = dict(self._shard_of_table)
        count_before = len(self._shard_searchers) or self.num_shards
        count = int(num_shards) if num_shards is not None else count_before
        if count < 1:
            raise SearchError(f"num_shards must be >= 1, got {count}")
        sizes = {
            table.name: max(1, table.num_rows * table.num_columns) for table in lake
        }
        loads_before = [0] * count_before
        for name, shard_id in current.items():
            loads_before[shard_id] += sizes.get(name, 1)
        skew_before = skew_of(loads_before)
        if count == count_before and skew_before <= skew_threshold:
            return {
                "rebalanced": False,
                "num_shards": count_before,
                "skew_before": skew_before,
                "skew_after": skew_before,
                "moved": 0,
                "shards_rebuilt": 0,
            }
        # Rebalancing reassigns tables across shard searchers, so every
        # still-deferred shard must be live before passes 1 and 2 inspect
        # their indexed fingerprints.
        self._materialize_all()
        # A changed shard count re-seeds by stable name hash (the layout new
        # tables will route to anyway); an unchanged count starts from the
        # current assignment so the balancer moves as little as possible.
        if count == count_before:
            base = current
        else:
            base = {
                name: _stable_shard_hash(name) % count
                for name in lake.table_names()
            }
        new_assignment, _ = balanced_assignment(
            base, sizes, count, skew_threshold=skew_threshold
        )
        moved = [
            name
            for name in lake.table_names()
            if new_assignment[name] != current.get(name)
        ]
        _ensure_store_capacity(self.store, count)
        shards = _shards_from_assignment(lake, new_assignment, count)
        shard_lakes = [shard.to_lake() for shard in shards]
        searchers: list[TableUnionSearcher | None] = [None] * count
        unclaimed: dict[int, TableUnionSearcher] = {
            i: s for i, s in enumerate(self._shard_searchers) if s is not None
        }
        # Pass 1: shards whose member content is exactly a previous shard's
        # reuse that searcher object untouched — no rebuild, no re-persist.
        pending: list[int] = []
        for shard_id, shard_lake in enumerate(shard_lakes):
            if shard_lake.num_tables == 0:
                continue
            target_fps = shard_lake.table_fingerprints()
            match = next(
                (
                    pid
                    for pid, prev in unclaimed.items()
                    if prev.is_indexed and prev._indexed_table_fps == target_fps
                ),
                None,
            )
            if match is not None:
                searchers[shard_id] = unclaimed.pop(match)
            else:
                pending.append(shard_id)
        # Pass 2: mover shards delta-rebuild from their best-overlapping
        # previous searcher (rebase = remove departed + add arrivals) and
        # re-persist — only these shards pay.
        rebuilt = 0
        for shard_id in pending:
            shard_lake = shard_lakes[shard_id]
            names = set(shard_lake.table_names())
            best_id, best_overlap = None, 0
            for pid, prev in unclaimed.items():
                overlap = len(
                    names & set(getattr(prev, "_indexed_table_fps", None) or {})
                )
                if overlap > best_overlap:
                    best_id, best_overlap = pid, overlap
            searcher = (
                unclaimed.pop(best_id) if best_id is not None else self.factory()
            )
            if not searcher.SHARD_LOCAL_INDEX:
                searcher.load_partial(shard_lake, *searcher.build_partial(shard_lake))
            else:
                searcher.rebase(shard_lake)
                if self.store is not None:
                    try:
                        self.store.save(searcher, shard_lake)
                    except SearchError:
                        pass
            searchers[shard_id] = searcher
            rebuilt += 1
        self._assignment = new_assignment
        self._assignment_shards = count
        self._adopt_partition(lake, shards, shard_lakes, searchers)
        loads_after = [0] * count
        for name, shard_id in new_assignment.items():
            loads_after[shard_id] += sizes.get(name, 1)
        return {
            "rebalanced": True,
            "num_shards": count,
            "skew_before": skew_before,
            "skew_after": skew_of(loads_after),
            "moved": len(moved),
            "shards_rebuilt": rebuilt,
        }

    # ----------------------------------------------------------------- search
    def search(self, query_table, k: int) -> list[SearchResult]:
        """Fan out over the shard indexes and merge their top-k lists.

        Each shard returns its local top-k under the monolithic ordering
        ``(-score, table name)``; every member of the global top-k is by
        definition in its own shard's local top-k, so re-sorting the union
        and truncating reproduces the flat ``search()`` ranking — scores,
        ties and all — exactly.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.lake  # raises before index()
        self._materialize_all()  # full fan-out touches every shard
        merged: list[SearchResult] = []
        for searcher in self._shard_searchers:
            if searcher is not None:
                merged.extend(searcher.search(query_table, k))
        merged.sort(key=lambda hit: (-hit.score, hit.table_name))
        return [
            SearchResult(table_name=hit.table_name, score=hit.score, rank=rank)
            for rank, hit in enumerate(merged[:k], start=1)
        ]

    def _score_table(self, query_table, lake_table) -> float:
        """Delegate to the shard index holding ``lake_table``."""
        shard_id = self._shard_of_table.get(lake_table.name)
        searcher = self._materialize_shard(shard_id) if shard_id is not None else None
        if searcher is None:
            raise SearchError(
                f"table {lake_table.name!r} is not covered by any shard index"
            )
        return searcher._score_table(query_table, lake_table)

    # ------------------------------------------------------- cascade prefilter
    def score_candidates(self, query_table, names) -> dict[str, float]:
        """Per-shard candidate pushdown: the cascade's global candidate budget
        is split by ownership, so each shard exact-scores only its own members
        through the backend's narrow path — no shard pays a full local search.
        Per-table scores are shard-independent (``finalize_shard_group``
        closes Starmie's corpus gap), so the union is bit-identical to the
        flat backend's ``score_candidates``."""
        self.lake  # raises before index()
        unique = [name for name in dict.fromkeys(names) if name != query_table.name]
        by_shard: dict[int, list[str]] = {}
        for name in unique:
            shard_id = self._shard_of_table.get(name)
            if shard_id is None or (
                self._shard_searchers[shard_id] is None
                and shard_id not in self._deferred
            ):
                raise SearchError(
                    f"candidate table {name!r} is not in the indexed lake"
                )
            by_shard.setdefault(shard_id, []).append(name)
        scores: dict[str, float] = {}
        # Only owner shards materialize — on a warm deferred deployment this
        # is the O(touched shards) cold-start path the cascade queries ride.
        for shard_id, shard_names in by_shard.items():
            scores.update(
                self._materialize_shard(shard_id).score_candidates(
                    query_table, shard_names
                )
            )
        return {name: scores[name] for name in unique if name in scores}

    def prefilter_table_vectors(self):
        """Union of the shard searchers' vectors (``None`` if any shard lacks
        them — the cascade then falls back to the LSH prefilter uniformly)."""
        self._materialize_all()  # a prefilter fit covers every shard
        merged: dict = {}
        for searcher in self._shard_searchers:
            if searcher is None:
                continue
            vectors = searcher.prefilter_table_vectors()
            if vectors is None:
                return None
            merged.update(vectors)
        return merged or None

    def prefilter_query_vector(self, query_table):
        for shard_id in range(len(self._shard_searchers)):
            searcher = self._materialize_shard(shard_id)
            if searcher is not None:
                # Query embeddings match across shards: stateless encoders
                # everywhere, and finalize_shard_group aligns Starmie's fit.
                return searcher.prefilter_query_vector(query_table)
        raise SearchError("ShardedSearcher has no shard searchers to embed with")

    def prefilter_minhash_signatures(self, num_hashes: int, seed: int):
        """Union of the shard searchers' table signatures (signatures are pure
        functions of one table's token sets, so shard-local ones are exact)."""
        self._materialize_all()  # a prefilter fit covers every shard
        merged: dict = {}
        for searcher in self._shard_searchers:
            if searcher is None:
                continue
            signatures = searcher.prefilter_minhash_signatures(num_hashes, seed)
            if signatures is None:
                return None
            merged.update(signatures)
        return merged or None
