"""Table union search substrate.

Given a query table, these searchers return the top-k data lake tables ranked
by unionability.  DUST (Algorithm 1, line 3) can use any of them; the paper's
experiments use Starmie and D3L as end-to-end baselines (Sec. 6.5) plus a
ground-truth oracle when isolating the diversification stage.
"""

from repro.search.base import TableUnionSearcher, SearchResult
from repro.search.minhash import MinHashSignature, MinHashLSHIndex
from repro.search.overlap import ValueOverlapSearcher
from repro.search.starmie import StarmieSearcher
from repro.search.d3l import D3LSearcher
from repro.search.santos import SantosSearcher
from repro.search.oracle import OracleSearcher

__all__ = [
    "TableUnionSearcher",
    "SearchResult",
    "MinHashSignature",
    "MinHashLSHIndex",
    "ValueOverlapSearcher",
    "StarmieSearcher",
    "D3LSearcher",
    "SantosSearcher",
    "OracleSearcher",
]
