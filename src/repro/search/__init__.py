"""Table union search substrate.

Given a query table, these searchers return the top-k data lake tables ranked
by unionability.  DUST (Algorithm 1, line 3) can use any of them; the paper's
experiments use Starmie and D3L as end-to-end baselines (Sec. 6.5) plus a
ground-truth oracle when isolating the diversification stage.

Indexes are maintainable, not just buildable: every backend supports
``update_index(added=..., removed=...)``/``refresh()`` for mutating lakes
(with a full-rebuild correctness fallback) and ``index_state()``/
``load_index_state()`` for cross-process persistence.
"""

from repro.search.base import TableUnionSearcher, SearchResult
from repro.search.minhash import MinHashSignature, MinHashLSHIndex
from repro.search.overlap import ValueOverlapSearcher
from repro.search.starmie import StarmieSearcher
from repro.search.d3l import D3LSearcher
from repro.search.santos import SantosSearcher
from repro.search.oracle import OracleSearcher

__all__ = [
    "TableUnionSearcher",
    "SearchResult",
    "MinHashSignature",
    "MinHashLSHIndex",
    "ValueOverlapSearcher",
    "StarmieSearcher",
    "D3LSearcher",
    "SantosSearcher",
    "OracleSearcher",
]
