"""Table union search substrate.

Given a query table, these searchers return the top-k data lake tables ranked
by unionability.  DUST (Algorithm 1, line 3) can use any of them; the paper's
experiments use Starmie and D3L as end-to-end baselines (Sec. 6.5) plus a
ground-truth oracle when isolating the diversification stage.

Indexes are maintainable, not just buildable: every backend supports
``update_index(added=..., removed=...)``/``refresh()`` for mutating lakes
(with a full-rebuild correctness fallback) and ``index_state()``/
``load_index_state()`` for cross-process persistence.  Indexes are also
**partitionable**: ``build_partial(shard)``/``merge_partials(lake, parts)``
let a lake's index be assembled from per-shard builds —
:func:`~repro.search.sharded.build_sharded` runs those builds concurrently
in forked workers, and :class:`~repro.search.sharded.ShardedSearcher` keeps
the shards separate and serves queries by fan-out/merge, bit-identical to a
flat index either way.

Query latency is made sub-linear in lake size by the **tiered cascade**
(:mod:`repro.search.cascade`): :class:`~repro.search.cascade.CascadeSearcher`
wraps any backend, prunes the lake with an approximate
:class:`~repro.search.cascade.CandidatePrefilter` (LSH bucket probe or
low-dimensional random projection), exact-scores only the surviving
candidates through the backends' ``score_candidates`` narrow hook, and
escalates to the full exact path when the approximate margin is ambiguous.
"""

from repro.search.base import TableUnionSearcher, SearchResult
from repro.search.minhash import MinHashSignature, MinHashLSHIndex
from repro.search.overlap import ValueOverlapSearcher
from repro.search.starmie import StarmieSearcher
from repro.search.d3l import D3LSearcher
from repro.search.santos import SantosSearcher
from repro.search.oracle import OracleSearcher
from repro.search.sharded import ShardedSearcher, build_sharded
from repro.search.cascade import (
    CandidatePrefilter,
    CascadeSearcher,
    LSHPrefilter,
    ProjectionPrefilter,
)

__all__ = [
    "TableUnionSearcher",
    "SearchResult",
    "MinHashSignature",
    "MinHashLSHIndex",
    "ValueOverlapSearcher",
    "StarmieSearcher",
    "D3LSearcher",
    "SantosSearcher",
    "OracleSearcher",
    "ShardedSearcher",
    "build_sharded",
    "CandidatePrefilter",
    "CascadeSearcher",
    "LSHPrefilter",
    "ProjectionPrefilter",
]
