"""Starmie-style table union search (Fan et al. [11] stand-in).

Starmie embeds each column with the context of its whole table and scores a
candidate table by the maximum-weight bipartite matching between its column
embeddings and the query table's column embeddings.  The same encoder also
supports the paper's tuple-search adaptation of Starmie (Sec. 6.5.1): index
every data lake *tuple* as a single-row table and return the top-k tuples.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Iterable, Mapping

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.api.registry import register_searcher
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.embeddings.column import CorpusContribution, StarmieColumnEncoder
from repro.embeddings.contextual import RobertaLikeModel
from repro.embeddings.serialization import AlignedTuple
from repro.search.base import (
    IndexState,
    SearchResult,
    TableUnionSearcher,
    merge_shard_table_maps,
)
from repro.utils.errors import IndexDeltaUnsupported, SearchError


@register_searcher("starmie")
class StarmieSearcher(TableUnionSearcher):
    """Contextualized-column-embedding union search with bipartite scoring."""

    #: v2 adds the per-table TF-IDF corpus contributions that incremental
    #: updates need; v1 entries become index-store misses and are rebuilt.
    INDEX_FORMAT_VERSION = 2

    def __init__(
        self,
        column_encoder: StarmieColumnEncoder | None = None,
        *,
        min_similarity: float = 0.0,
    ) -> None:
        super().__init__()
        self.column_encoder = column_encoder or StarmieColumnEncoder(RobertaLikeModel())
        self.min_similarity = min_similarity
        self._column_embeddings: dict[str, dict[str, np.ndarray]] = {}
        #: Per-table TF-IDF corpus contributions; their sum *is* the fitted
        #: selector state, which is what makes corpus deltas exact.
        self._corpus: dict[str, CorpusContribution] = {}
        self._query_memo = threading.local()

    # ------------------------------------------------------------------ index
    def _corpus_fit_state(self) -> dict:
        """The selector fit state implied by ``self._corpus``.

        Summing per-table contributions in any order is bit-identical to
        ``fit_tables`` over the same tables: both count each token once per
        column document, in plain integer arithmetic.
        """
        num_documents = 0
        frequency: Counter = Counter()
        for contribution in self._corpus.values():
            num_documents += contribution.num_documents
            frequency.update(contribution.document_frequency)
        return {"num_documents": num_documents, "document_frequency": dict(frequency)}

    def _fit_from_corpus(self) -> None:
        """Load the selector fit state implied by ``self._corpus``."""
        self.column_encoder.load_fit_state(self._corpus_fit_state())

    def _build_index(self, lake: DataLake) -> None:
        self._corpus = {
            table.name: self.column_encoder.corpus_contribution(table) for table in lake
        }
        self._fit_from_corpus()
        self._column_embeddings = {
            table.name: self.column_encoder.encode_table_columns(table) for table in lake
        }
        # Query embeddings depend on the fitted TF-IDF state: drop every
        # thread's memo whenever the index (and thus that state) changes.
        self._query_memo = threading.local()

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """Maintain the corpus statistics exactly; re-encode only what moved.

        The fitted TF-IDF state after the delta is derived by integer
        arithmetic on the per-table contributions, so it equals a refit over
        the mutated lake bit for bit.  Embeddings of retained tables only
        consult that state when one of their column documents exceeds the
        token limit (``CorpusContribution.oversized``); if the corpus changed
        *and* a retained table is oversized, its persisted embedding would
        diverge from a rebuild, so the delta is declared unsupported and the
        base class rebuilds instead — the correctness fallback.
        """
        before = self.column_encoder.fit_state()
        for name in removed:
            self._corpus.pop(name, None)
        retained_oversized = any(
            contribution.oversized for contribution in self._corpus.values()
        )
        self._corpus.update(
            {table.name: self.column_encoder.corpus_contribution(table) for table in added}
        )
        after = self._corpus_fit_state()
        corpus_changed = after != before
        if corpus_changed and retained_oversized:
            raise IndexDeltaUnsupported(
                "corpus statistics changed and a retained table's embeddings "
                "depend on them (oversized column documents); rebuilding"
            )
        if corpus_changed:
            self.column_encoder.load_fit_state(after)
            self._query_memo = threading.local()
        for name in removed:
            self._column_embeddings.pop(name, None)
        for table in added:
            self._column_embeddings[table.name] = self.column_encoder.encode_table_columns(
                table
            )

    def _merge_partial_states(self, lake: DataLake, parts: list[IndexState]) -> None:
        """Corpus-contribution summation: the merged fit is exact by construction.

        Each shard partial carries its tables' :class:`CorpusContribution`
        integer counts; summing them in any order reproduces a monolithic
        ``fit`` over the whole lake bit for bit (the same arithmetic as the
        incremental-update path).  Shard-built embeddings were encoded under
        a *shard-local* fit, but only oversized column documents consult the
        fitted state at all — so retained embeddings are already exact and
        only the oversized tables are re-encoded under the merged corpus.
        """
        per_part_entries: list[dict[str, tuple]] = []
        for state, arrays in parts:
            embeddings = self._decode_column_embeddings(state, arrays)
            per_part_entries.append(
                {
                    name: (
                        CorpusContribution.from_state(state["corpus"][name]),
                        embeddings[name],
                    )
                    for name in embeddings
                }
            )
        entries = merge_shard_table_maps(
            lake, per_part_entries, what="Starmie partial merge"
        )
        self._corpus = {name: contribution for name, (contribution, _) in entries.items()}
        self._fit_from_corpus()
        self._column_embeddings = {
            name: (
                self.column_encoder.encode_table_columns(lake.get(name))
                if contribution.oversized
                else embeddings
            )
            for name, (contribution, embeddings) in entries.items()
        }
        self._query_memo = threading.local()

    def finalize_shard_group(
        self, lake: DataLake, shard_searchers: "Iterable[TableUnionSearcher]"
    ) -> None:
        """Align every shard searcher to the global TF-IDF corpus.

        Per-shard indexes are built (or delta-updated) under shard-local
        corpus statistics; summing every shard's contributions yields the
        global fit exactly, which each shard then loads so query embeddings —
        and the embeddings of oversized tables, which are re-encoded here —
        match a monolithic index bit for bit.  Idempotent: re-running with
        unchanged shards recomputes the same fit and the same embeddings.
        """
        searchers = [
            searcher for searcher in shard_searchers if isinstance(searcher, StarmieSearcher)
        ]
        num_documents = 0
        frequency: Counter = Counter()
        for searcher in searchers:
            for contribution in searcher._corpus.values():
                num_documents += contribution.num_documents
                frequency.update(contribution.document_frequency)
        fit = {"num_documents": num_documents, "document_frequency": dict(frequency)}
        for searcher in searchers:
            searcher.column_encoder.load_fit_state(fit)
            searcher._query_memo = threading.local()
            for name, contribution in searcher._corpus.items():
                if contribution.oversized:
                    searcher._column_embeddings[name] = (
                        searcher.column_encoder.encode_table_columns(lake.get(name))
                    )

    def _query_embeddings(self, query_table: Table) -> dict[str, np.ndarray]:
        # The base class scores the query against every lake table through
        # _score_table; memoise the query-side encoding (one entry, keyed by
        # object identity plus the cached content fingerprint so in-place
        # append_rows invalidates it, thread-local) so it is computed once
        # per query instead of once per candidate table.
        cached = getattr(self._query_memo, "entry", None)
        if (
            cached is not None
            and cached[0] is query_table
            and cached[1] == query_table.content_fingerprint()
        ):
            return cached[2]
        embeddings = self.column_encoder.encode_table_columns(query_table)
        self._query_memo.entry = (
            query_table,
            query_table.content_fingerprint(),
            embeddings,
        )
        return embeddings

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        return {
            "min_similarity": self.min_similarity,
            "encoder": self.column_encoder.info.name,
            "table_context_weight": self.column_encoder.table_context_weight,
        }

    def _index_state(self) -> IndexState:
        tables: list[dict] = []
        vectors: list[np.ndarray] = []
        for name, columns in self._column_embeddings.items():
            tables.append({"name": name, "columns": list(columns)})
            vectors.extend(columns.values())
        dimension = self.column_encoder.info.dimension
        matrix = (
            np.vstack(vectors)
            if vectors
            else np.zeros((0, dimension), dtype=np.float64)
        )
        state = {
            "tables": tables,
            "tfidf": self.column_encoder.fit_state(),
            "corpus": {
                name: contribution.to_state()
                for name, contribution in self._corpus.items()
            },
        }
        return state, {"column_embeddings": matrix}

    @staticmethod
    def _decode_column_embeddings(
        state: dict, arrays: Mapping[str, np.ndarray]
    ) -> dict[str, dict[str, np.ndarray]]:
        """Rehydrate the per-table column-embedding dicts of one index state."""
        matrix = np.asarray(arrays["column_embeddings"], dtype=np.float64)
        expected = sum(len(entry["columns"]) for entry in state["tables"])
        if expected != matrix.shape[0]:
            raise SearchError(
                f"Starmie index state lists {expected} columns but the "
                f"embedding matrix has {matrix.shape[0]} rows"
            )
        embeddings: dict[str, dict[str, np.ndarray]] = {}
        row = 0
        for entry in state["tables"]:
            embeddings[entry["name"]] = {
                column: matrix[row + offset]
                for offset, column in enumerate(entry["columns"])
            }
            row += len(entry["columns"])
        return embeddings

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self._query_memo = threading.local()
        self.column_encoder.load_fit_state(state["tfidf"])
        self._corpus = {
            name: CorpusContribution.from_state(contribution)
            for name, contribution in state["corpus"].items()
        }
        self._column_embeddings = self._decode_column_embeddings(state, arrays)

    # ------------------------------------------------------- cascade prefilter
    def _mean_embedding(self, embeddings: Mapping[str, np.ndarray]) -> np.ndarray:
        if not embeddings:
            return np.zeros(self.column_encoder.info.dimension, dtype=np.float64)
        return np.mean(np.vstack(list(embeddings.values())), axis=0)

    def prefilter_table_vectors(self) -> dict[str, np.ndarray] | None:
        """Per-table mean of the indexed column embeddings — a cheap aggregate
        whose cosine neighbourhoods track the bipartite-matching score."""
        if not self._column_embeddings:
            return None
        return {
            name: self._mean_embedding(columns)
            for name, columns in self._column_embeddings.items()
        }

    def prefilter_query_vector(self, query_table: Table) -> np.ndarray:
        return self._mean_embedding(self._query_embeddings(query_table))

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Narrow exact scoring: the query encoding is memoised, so each
        candidate costs one bipartite matching over its own columns."""
        return self._score_candidate_names(query_table, names)

    # ----------------------------------------------------------------- scoring
    def _bipartite_score(
        self,
        query_embeddings: dict[str, np.ndarray],
        lake_embeddings: dict[str, np.ndarray],
    ) -> float:
        if not query_embeddings or not lake_embeddings:
            return 0.0
        query_matrix = np.vstack(list(query_embeddings.values()))
        lake_matrix = np.vstack(list(lake_embeddings.values()))
        similarity = query_matrix @ lake_matrix.T
        row_indices, col_indices = linear_sum_assignment(-similarity)
        matched = [
            float(similarity[row, col])
            for row, col in zip(row_indices, col_indices)
            if similarity[row, col] >= self.min_similarity
        ]
        if not matched:
            return 0.0
        # Normalise by the number of query columns so wide tables do not win
        # simply by having more columns to match.
        return float(sum(matched)) / len(query_embeddings)

    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        query_embeddings = self._query_embeddings(query_table)
        lake_embeddings = self._column_embeddings.get(lake_table.name)
        if lake_embeddings is None:
            lake_embeddings = self.column_encoder.encode_table_columns(lake_table)
        return self._bipartite_score(query_embeddings, lake_embeddings)

    # ---------------------------------------------------- tuple-search variant
    def search_tuples(self, query_table: Table, k: int) -> list[AlignedTuple]:
        """Return the top-``k`` most unionable *tuples* from the lake.

        This is the adaptation described in Sec. 6.5.1: every data lake tuple
        is treated as its own single-row table, scored against the query table
        and the tuples of the top-scoring rows are returned.  Tuples keep the
        lake column headers that matched query columns.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        query_embeddings = self._query_embeddings(query_table)
        scored: list[tuple[float, str, int, AlignedTuple]] = []
        for lake_table in self.lake:
            if lake_table.name == query_table.name:
                continue
            mapping = self._column_mapping(query_table, lake_table)
            if not mapping:
                continue
            lake_embeddings = self._column_embeddings[lake_table.name]
            table_score = self._bipartite_score(query_embeddings, lake_embeddings)
            for position, row in enumerate(lake_table.rows):
                values = {
                    query_column: row[lake_table.column_index(lake_column)]
                    for lake_column, query_column in mapping.items()
                }
                aligned = AlignedTuple(
                    source_table=lake_table.name, source_row=position, values=values
                )
                # Rank rows primarily by their table's unionability; rows of the
                # most unionable tables surface first, reproducing Starmie's
                # similarity-driven redundancy that DUST addresses.
                scored.append((table_score, lake_table.name, position, aligned))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        return [aligned for _, _, _, aligned in scored[:k]]

    def _column_mapping(self, query_table: Table, lake_table: Table) -> dict[str, str]:
        """Best-match mapping ``lake column -> query column`` via bipartite matching."""
        query_embeddings = self._query_embeddings(query_table)
        lake_embeddings = self._column_embeddings.get(lake_table.name)
        if lake_embeddings is None:
            lake_embeddings = self.column_encoder.encode_table_columns(lake_table)
        query_columns = list(query_embeddings)
        lake_columns = list(lake_embeddings)
        if not query_columns or not lake_columns:
            return {}
        similarity = np.zeros((len(lake_columns), len(query_columns)))
        for i, lake_column in enumerate(lake_columns):
            for j, query_column in enumerate(query_columns):
                similarity[i, j] = float(
                    lake_embeddings[lake_column] @ query_embeddings[query_column]
                )
        rows, cols = linear_sum_assignment(-similarity)
        return {
            lake_columns[row]: query_columns[col]
            for row, col in zip(rows, cols)
            if similarity[row, col] >= self.min_similarity
        }

    # ----------------------------------------------------------- table vectors
    def table_embedding(self, table: Table) -> np.ndarray:
        """Whole-table embedding (used by the Fig. 2 spread experiment)."""
        return self.column_encoder.encode_table(table)

    def search(self, query_table: Table, k: int) -> list[SearchResult]:  # noqa: D102
        return super().search(query_table, k)
