"""SANTOS-style relationship-aware table search (Khatiwada et al. [24] stand-in).

SANTOS scores a candidate table not only by how well its columns match the
query columns semantically but also by whether the *binary relationships*
between column pairs of the query table are preserved.  Without a knowledge
base, column semantics are approximated by column-content embeddings and a
relationship between two columns is represented by the embedding of their
paired values.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

import numpy as np

from repro.api.registry import register_searcher
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.embeddings.word import FastTextLikeModel
from repro.search.base import IndexState, TableUnionSearcher, merge_shard_table_maps
from repro.utils.errors import SearchError
from repro.utils.text import is_null


@register_searcher("santos")
class SantosSearcher(TableUnionSearcher):
    """Column-semantics plus binary-relationship union search.

    The table score is ``column_weight * column_score + (1 - column_weight) *
    relationship_score`` where the column score is the mean best column-content
    similarity per query column and the relationship score is the mean best
    similarity between query column-pair relationship embeddings and candidate
    column-pair relationship embeddings.
    """

    def __init__(
        self,
        *,
        column_weight: float = 0.5,
        max_value_pairs: int = 50,
        max_relationship_columns: int = 6,
    ) -> None:
        super().__init__()
        if not 0.0 <= column_weight <= 1.0:
            raise ValueError(f"column_weight must be in [0, 1], got {column_weight}")
        self.column_weight = column_weight
        self.max_value_pairs = max_value_pairs
        self.max_relationship_columns = max_relationship_columns
        self._word_model = FastTextLikeModel()
        self._column_vectors: dict[str, dict[str, np.ndarray]] = {}
        self._relationship_vectors: dict[str, dict[tuple[str, str], np.ndarray]] = {}
        self._query_memo = threading.local()

    def _query_vectors(
        self, query_table: Table
    ) -> tuple[dict[str, np.ndarray], dict[tuple[str, str], np.ndarray]]:
        """Query column + relationship embeddings, computed once per query.

        One-entry thread-local memo keyed by object identity plus the table's
        (cached) content fingerprint (so ``append_rows`` invalidates it): the
        base class calls :meth:`_score_table` once per lake table, and
        without the memo the (quadratic-in-columns) relationship embeddings
        of the query would be re-derived for every candidate.
        """
        cached = getattr(self._query_memo, "entry", None)
        if (
            cached is not None
            and cached[0] is query_table
            and cached[1] == query_table.content_fingerprint()
        ):
            return cached[2]
        vectors = (
            {
                column: self._column_vector(query_table, column)
                for column in query_table.columns
            },
            self._table_relationships(query_table),
        )
        self._query_memo.entry = (
            query_table,
            query_table.content_fingerprint(),
            vectors,
        )
        return vectors

    # -------------------------------------------------------------- embeddings
    def _column_vector(self, table: Table, column: str) -> np.ndarray:
        values = [
            str(value) for value in table.column_values(column) if not is_null(value)
        ][:64]
        return self._word_model.encode_text(" ".join([column, *values]))

    def _relationship_vector(self, table: Table, first: str, second: str) -> np.ndarray:
        """Embedding of the binary relationship between two columns.

        The relationship is represented by the concatenated value pairs
        ("subject object" strings), which captures which entities co-occur —
        the same intuition as SANTOS's relationship semantics.
        """
        first_index = table.column_index(first)
        second_index = table.column_index(second)
        pairs = []
        for row in table.rows[: self.max_value_pairs]:
            left, right = row[first_index], row[second_index]
            if is_null(left) or is_null(right):
                continue
            pairs.append(f"{left} {right}")
        return self._word_model.encode_text(" ".join(pairs) if pairs else f"{first} {second}")

    def _table_relationships(self, table: Table) -> dict[tuple[str, str], np.ndarray]:
        columns = table.columns[: self.max_relationship_columns]
        vectors: dict[tuple[str, str], np.ndarray] = {}
        for i, first in enumerate(columns):
            for second in columns[i + 1 :]:
                vectors[(first, second)] = self._relationship_vector(table, first, second)
        return vectors

    # ------------------------------------------------------------------- index
    def _index_table(self, table: Table) -> None:
        self._column_vectors[table.name] = {
            column: self._column_vector(table, column) for column in table.columns
        }
        self._relationship_vectors[table.name] = self._table_relationships(table)

    def _build_index(self, lake: DataLake) -> None:
        self._column_vectors, self._relationship_vectors = {}, {}
        for table in lake:
            self._index_table(table)

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """Column and relationship vectors are per table over a stateless word
        model, so deltas only touch the mutated tables' entries and are
        bit-identical to a rebuild by construction."""
        for name in removed:
            self._column_vectors.pop(name, None)
            self._relationship_vectors.pop(name, None)
        for table in added:
            self._index_table(table)

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        return {
            "column_weight": self.column_weight,
            "max_value_pairs": self.max_value_pairs,
            "max_relationship_columns": self.max_relationship_columns,
        }

    def _index_state(self) -> IndexState:
        tables: list[dict] = []
        column_vectors: list[np.ndarray] = []
        relationship_vectors: list[np.ndarray] = []
        for name, columns in self._column_vectors.items():
            relationships = self._relationship_vectors.get(name, {})
            tables.append(
                {
                    "name": name,
                    "columns": list(columns),
                    "relationships": [list(pair) for pair in relationships],
                }
            )
            column_vectors.extend(columns.values())
            relationship_vectors.extend(relationships.values())
        dimension = self._word_model.info.dimension

        def stack(vectors: list[np.ndarray]) -> np.ndarray:
            if not vectors:
                return np.zeros((0, dimension), dtype=np.float64)
            return np.vstack(vectors)

        arrays = {
            "column_vectors": stack(column_vectors),
            "relationship_vectors": stack(relationship_vectors),
        }
        return {"tables": tables}, arrays

    @staticmethod
    def _decode_state(
        state: dict, arrays: Mapping[str, np.ndarray]
    ) -> dict[str, tuple[dict, dict]]:
        """Rehydrate one index state as per-table (column, relationship) vectors."""
        columns_matrix = np.asarray(arrays["column_vectors"], dtype=np.float64)
        relationships_matrix = np.asarray(
            arrays["relationship_vectors"], dtype=np.float64
        )
        expected_columns = sum(len(entry["columns"]) for entry in state["tables"])
        expected_relationships = sum(
            len(entry["relationships"]) for entry in state["tables"]
        )
        if (
            expected_columns != columns_matrix.shape[0]
            or expected_relationships != relationships_matrix.shape[0]
        ):
            raise SearchError(
                "SANTOS index state row counts do not match its vector payloads"
            )
        decoded: dict[str, tuple[dict, dict]] = {}
        column_row = relationship_row = 0
        for entry in state["tables"]:
            columns = {
                column: columns_matrix[column_row + offset]
                for offset, column in enumerate(entry["columns"])
            }
            column_row += len(entry["columns"])
            relationships = {
                (first, second): relationships_matrix[relationship_row + offset]
                for offset, (first, second) in enumerate(entry["relationships"])
            }
            relationship_row += len(entry["relationships"])
            decoded[entry["name"]] = (columns, relationships)
        return decoded

    def _install_entries(self, entries: Mapping[str, tuple[dict, dict]]) -> None:
        """Adopt decoded per-table vector entries as the built index."""
        self._column_vectors = {name: entry[0] for name, entry in entries.items()}
        self._relationship_vectors = {
            name: entry[1] for name, entry in entries.items()
        }

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self._install_entries(self._decode_state(state, arrays))

    def _merge_partial_states(self, lake: DataLake, parts: list[IndexState]) -> None:
        """Per-table signal union: SANTOS column and relationship vectors are
        derived per table over a stateless word model, so the merged index is
        the (lake-ordered) union of the shard partials — bit-identical to a
        monolithic build by construction."""
        self._install_entries(
            merge_shard_table_maps(
                lake,
                (self._decode_state(state, arrays) for state, arrays in parts),
                what="SANTOS partial merge",
            )
        )

    # ------------------------------------------------------- cascade prefilter
    def _mean_embedding(self, vectors: list[np.ndarray]) -> np.ndarray:
        if not vectors:
            return np.zeros(self._word_model.info.dimension, dtype=np.float64)
        return np.mean(np.vstack(vectors), axis=0)

    def prefilter_table_vectors(self) -> dict[str, np.ndarray] | None:
        """Per-table mean of the indexed column-content vectors — a cheap
        aggregate tracking the column-semantics component of the score."""
        if not self._column_vectors:
            return None
        return {
            name: self._mean_embedding(list(columns.values()))
            for name, columns in self._column_vectors.items()
        }

    def prefilter_query_vector(self, query_table: Table) -> np.ndarray:
        column_vectors, _ = self._query_vectors(query_table)
        return self._mean_embedding(list(column_vectors.values()))

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Narrow exact scoring: the (quadratic-in-columns) query relationship
        embeddings are memoised, so each candidate pays only its own matmuls."""
        return self._score_candidate_names(query_table, names)

    # ----------------------------------------------------------------- scoring
    @staticmethod
    def _best_similarity(query_vector: np.ndarray, candidates: list[np.ndarray]) -> float:
        if not candidates:
            return 0.0
        matrix = np.vstack(candidates)
        return float(np.max(matrix @ query_vector))

    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        lake_columns = self._column_vectors.get(lake_table.name)
        lake_relationships = self._relationship_vectors.get(lake_table.name)
        if lake_columns is None or lake_relationships is None:
            lake_columns = {
                column: self._column_vector(lake_table, column)
                for column in lake_table.columns
            }
            lake_relationships = self._table_relationships(lake_table)

        query_column_vectors, query_relationships = self._query_vectors(query_table)

        # Column-semantics component.
        column_scores = []
        lake_column_list = list(lake_columns.values())
        for query_column in query_table.columns:
            query_vector = query_column_vectors[query_column]
            column_scores.append(self._best_similarity(query_vector, lake_column_list))
        column_score = float(np.mean(column_scores)) if column_scores else 0.0

        # Relationship component.
        relationship_scores = []
        lake_relationship_list = list(lake_relationships.values())
        for query_vector in query_relationships.values():
            relationship_scores.append(
                self._best_similarity(query_vector, lake_relationship_list)
            )
        relationship_score = (
            float(np.mean(relationship_scores)) if relationship_scores else 0.0
        )

        return (
            self.column_weight * column_score
            + (1.0 - self.column_weight) * relationship_score
        )
