"""Tiered query cascade: approximate candidate pre-filter, exact fallback.

Every backend's :meth:`~repro.search.base.TableUnionSearcher.search` is linear
in lake size — each query exact-scores every table.  The cascade makes query
latency proportional to a fixed *candidate budget* instead:

1. A cheap :class:`CandidatePrefilter` ranks the whole lake by an approximate
   unionability proxy (vectorized, micro-seconds per thousand tables) and
   keeps the top ``candidate_budget`` names.
2. Only the surviving candidates are exact-scored through the backend's
   :meth:`~repro.search.base.TableUnionSearcher.score_candidates` narrow
   hook — the same per-table arithmetic as a full ``search``, restricted.
3. When the approximate score *margin* at the cut — the gap between the last
   kept candidate and the best dropped one — falls inside a configurable
   ambiguity band, the cascade **escalates** to the full exact path, so the
   quality floor is enforced, not hoped for.

Two prefilters cover the five backends:

* :class:`LSHPrefilter` — table-level MinHash signatures (the elementwise
  minimum of the per-column signatures the overlap searcher already holds,
  re-hashed from the lake otherwise) banded into the existing
  :class:`~repro.search.minhash.MinHashLSHIndex`; candidates come from an LSH
  bucket probe ranked by estimated table-level Jaccard.
* :class:`ProjectionPrefilter` — per-table embedding aggregates served by the
  backend (:meth:`~repro.search.base.TableUnionSearcher.prefilter_table_vectors`)
  projected into a low-dimensional space with a seeded random matrix and held
  as a :class:`~repro.vectorops.EmbeddingMatrix`; candidates are ranked by
  projected cosine similarity.

:class:`CascadeSearcher` wraps any :class:`TableUnionSearcher` (flat or
:class:`~repro.search.sharded.ShardedSearcher` — the sharded composite routes
``score_candidates`` to exactly the shards holding each candidate).  In
``exact`` mode every query delegates to the base searcher, so rankings are
bit-identical by construction; ``approx`` mode is the opt-in fast path with
the measured recall trade-off (``benchmarks/bench_cascade.py``).
"""

from __future__ import annotations

import abc
import hashlib
import json
import time
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import IndexState, SearchResult, TableUnionSearcher
from repro.search.minhash import MinHashLSHIndex, MinHashSignature
from repro.search.overlap import column_token_set
from repro.utils.errors import SearchError, ServingError
from repro.vectorops import EmbeddingMatrix


def _rank_by_score(
    names: Sequence[str], scores: np.ndarray, budget: int, *, exclude: str
) -> tuple[list[str], float]:
    """Top-``budget`` names by ``(-score, name)`` plus the margin at the cut.

    The margin is the approximate-score gap between the last kept candidate
    and the best dropped one — ``inf`` when nothing is dropped, so a budget
    that covers the whole lake can never look ambiguous.
    """
    order = sorted(
        (i for i, name in enumerate(names) if name != exclude),
        key=lambda i: (-scores[i], names[i]),
    )
    kept = order[:budget]
    if len(order) <= budget:
        margin = float("inf")
    else:
        margin = float(scores[kept[-1]] - scores[order[budget]])
    return [names[i] for i in kept], margin


class CandidatePrefilter(abc.ABC):
    """Approximate candidate ranking over an indexed lake.

    Lifecycle: :meth:`fit` against a backend's built index (or
    :meth:`load_state` + :meth:`bind` when restored from a persisted
    :class:`CascadeSearcher` entry), then :meth:`candidates` per query.
    Implementations must be deterministic — same lake, same configuration,
    same candidates — so cascade results are reproducible and the
    sharded/flat composition parity tests can demand bit-identity.
    """

    #: Registry-style name recorded in persisted state.
    name = "abstract"

    @abc.abstractmethod
    def fit(self, searcher: TableUnionSearcher, lake: DataLake) -> None:
        """Derive prefilter structures from the backend's built index."""

    @abc.abstractmethod
    def candidates(self, query_table: Table, budget: int) -> tuple[list[str], float]:
        """Top-``budget`` candidate names plus the approximate margin at the cut."""

    @abc.abstractmethod
    def state(self) -> IndexState:
        """Serialized fitted state (same shape as a searcher index state)."""

    @abc.abstractmethod
    def load_state(self, state: dict, arrays: Mapping[str, np.ndarray]) -> None:
        """Restore a :meth:`state` dump."""

    @abc.abstractmethod
    def config_state(self) -> dict:
        """JSON-serializable configuration (participates in fingerprints)."""

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether the prefilter can answer :meth:`candidates`."""

    def bind(self, searcher: TableUnionSearcher) -> None:
        """Attach the serving backend (needed by query-side embedding hooks)."""


class LSHPrefilter(CandidatePrefilter):
    """LSH bucket-probe prefilter over table-level MinHash signatures.

    One signature per lake table — the MinHash of the union of its columns'
    token sets.  When the backend already holds per-column signatures under
    the same hash family (the overlap searcher), the table signatures are the
    elementwise minima of those rows and no cell value is re-hashed; any
    other backend's lake is hashed once at fit time.  Queries probe the LSH
    bands for bucket mates and rank by estimated table-level Jaccard computed
    against the stacked signature matrix (vectorized integer compares).
    """

    name = "lsh"

    def __init__(self, *, num_hashes: int = 64, num_bands: int = 16, seed: int = 7) -> None:
        # MinHashLSHIndex validates num_hashes/num_bands divisibility.
        self.num_hashes = num_hashes
        self.num_bands = num_bands
        self.seed = seed
        self._index: MinHashLSHIndex | None = None
        self._names: list[str] = []
        self._matrix: np.ndarray | None = None

    # -------------------------------------------------------------------- fit
    def _table_signature(self, table: Table) -> np.ndarray:
        assert self._index is not None
        tokens: set[str] = set()
        for column in table.columns:
            tokens |= column_token_set(table, column)
        return np.array(self._index.hasher.signature(tokens).values, dtype=np.int64)

    def _install(self, names: list[str], matrix: np.ndarray) -> None:
        index = MinHashLSHIndex(self.num_hashes, self.num_bands, seed=self.seed)
        for name, row in zip(names, matrix):
            index.add_signature(
                name, MinHashSignature(values=tuple(int(v) for v in row))
            )
        self._index = index
        self._names = names
        self._matrix = matrix

    def fit(self, searcher: TableUnionSearcher, lake: DataLake) -> None:
        self._index = MinHashLSHIndex(self.num_hashes, self.num_bands, seed=self.seed)
        reused = searcher.prefilter_minhash_signatures(self.num_hashes, self.seed)
        names = lake.table_names()
        if reused is not None and set(reused) >= set(names):
            matrix = np.vstack([np.asarray(reused[name], dtype=np.int64) for name in names])
        else:
            matrix = np.vstack([self._table_signature(lake.get(name)) for name in names])
        self._install(names, matrix.reshape(len(names), self.num_hashes))

    # ------------------------------------------------------------- candidates
    def candidates(self, query_table: Table, budget: int) -> tuple[list[str], float]:
        if not self.is_fitted:
            raise SearchError("LSHPrefilter.candidates() called before fit()")
        assert self._index is not None and self._matrix is not None
        signature = self._table_signature(query_table)
        # Estimated table-level Jaccard to every lake table, one vectorized
        # pass — the same arithmetic as MinHashSignature.jaccard.
        scores = (self._matrix == signature).sum(axis=1) / self.num_hashes
        hits = self._index.query_signature(
            MinHashSignature(values=tuple(int(v) for v in signature))
        )
        names: Sequence[str] = self._names
        if len(hits) >= budget:
            # The bucket probe alone yields enough candidates: rank within it.
            keep = [i for i, name in enumerate(self._names) if name in hits]
            names = [self._names[i] for i in keep]
            scores = scores[keep]
        return _rank_by_score(names, scores, budget, exclude=query_table.name)

    # ------------------------------------------------------------ persistence
    def state(self) -> IndexState:
        if not self.is_fitted:
            raise SearchError("LSHPrefilter.state() called before fit()")
        meta = {
            "num_hashes": self.num_hashes,
            "num_bands": self.num_bands,
            "seed": self.seed,
            "names": list(self._names),
        }
        return meta, {"signatures": np.asarray(self._matrix, dtype=np.int64)}

    def load_state(self, state: dict, arrays: Mapping[str, np.ndarray]) -> None:
        if (
            int(state["num_hashes"]) != self.num_hashes
            or int(state["num_bands"]) != self.num_bands
            or int(state["seed"]) != self.seed
        ):
            raise SearchError(
                "persisted LSH prefilter configuration does not match this prefilter"
            )
        matrix = np.asarray(arrays["signatures"], dtype=np.int64)
        self._install(list(state["names"]), matrix)

    def config_state(self) -> dict:
        return {
            "prefilter": self.name,
            "num_hashes": self.num_hashes,
            "num_bands": self.num_bands,
            "seed": self.seed,
        }

    @property
    def is_fitted(self) -> bool:
        return self._matrix is not None


class ProjectionPrefilter(CandidatePrefilter):
    """Random-projection prefilter over backend-served table embeddings.

    Fit stacks the backend's per-table vectors
    (:meth:`~repro.search.base.TableUnionSearcher.prefilter_table_vectors`),
    projects them through a seeded Gaussian matrix into ``dim`` dimensions
    and keeps the unit rows in an :class:`~repro.vectorops.EmbeddingMatrix`.
    A query is embedded by the same backend hook, projected by the same
    matrix, and candidates are ranked by projected cosine similarity — a
    (lake, dim) matvec instead of per-table exact scoring.
    """

    name = "projection"

    def __init__(self, *, dim: int = 16, seed: int = 7) -> None:
        if dim <= 0:
            raise SearchError(f"projection dim must be positive, got {dim}")
        self.dim = dim
        self.seed = seed
        self._names: list[str] = []
        self._projection: np.ndarray | None = None
        self._matrix: EmbeddingMatrix | None = None
        self._searcher: TableUnionSearcher | None = None

    def bind(self, searcher: TableUnionSearcher) -> None:
        self._searcher = searcher

    # -------------------------------------------------------------------- fit
    def fit(self, searcher: TableUnionSearcher, lake: DataLake) -> None:
        vectors = searcher.prefilter_table_vectors()
        if vectors is None:
            raise SearchError(
                f"{type(searcher).__name__} exposes no prefilter embeddings; "
                "use the LSH prefilter instead"
            )
        names = lake.table_names()
        missing = set(names) - set(vectors)
        if missing:
            raise SearchError(
                f"prefilter embeddings missing for table {sorted(missing)[0]!r}"
            )
        source = np.vstack([np.asarray(vectors[name], dtype=np.float64) for name in names])
        rng = np.random.default_rng(self.seed)
        self._projection = rng.standard_normal((source.shape[1], self.dim)) / np.sqrt(
            self.dim
        )
        self._names = names
        self._matrix = EmbeddingMatrix(source @ self._projection)
        self._searcher = searcher

    # ------------------------------------------------------------- candidates
    def candidates(self, query_table: Table, budget: int) -> tuple[list[str], float]:
        if not self.is_fitted:
            raise SearchError("ProjectionPrefilter.candidates() called before fit()")
        if self._searcher is None:
            raise SearchError(
                "ProjectionPrefilter is not bound to a searcher; call bind()"
            )
        assert self._matrix is not None and self._projection is not None
        vector = np.asarray(
            self._searcher.prefilter_query_vector(query_table), dtype=np.float64
        )
        projected = vector @ self._projection
        norm = float(np.linalg.norm(projected))
        if norm > 0.0:
            projected = projected / norm
        scores = self._matrix.unit @ projected
        return _rank_by_score(self._names, scores, budget, exclude=query_table.name)

    # ------------------------------------------------------------ persistence
    def state(self) -> IndexState:
        if not self.is_fitted:
            raise SearchError("ProjectionPrefilter.state() called before fit()")
        assert self._matrix is not None and self._projection is not None
        meta = {"dim": self.dim, "seed": self.seed, "names": list(self._names)}
        return meta, {
            "projected": self._matrix.data,
            "projection": self._projection,
        }

    def load_state(self, state: dict, arrays: Mapping[str, np.ndarray]) -> None:
        if int(state["dim"]) != self.dim or int(state["seed"]) != self.seed:
            raise SearchError(
                "persisted projection prefilter configuration does not match "
                "this prefilter"
            )
        self._names = list(state["names"])
        self._projection = np.asarray(arrays["projection"], dtype=np.float64)
        self._matrix = EmbeddingMatrix(np.asarray(arrays["projected"], dtype=np.float64))

    def config_state(self) -> dict:
        return {"prefilter": self.name, "dim": self.dim, "seed": self.seed}

    @property
    def is_fitted(self) -> bool:
        return self._matrix is not None


#: Prefilter names accepted by :class:`CascadeSearcher` and the ``cascade``
#: config section; ``auto`` resolves at fit time (projection when the backend
#: serves embeddings, LSH otherwise).
PREFILTER_NAMES = ("auto", "lsh", "projection")


class CascadePrefilterEntry:
    """Store adapter persisting a cascade's fitted prefilter as its own entry.

    A cascade over a self-persisting base (a sharded searcher with per-shard
    store entries) must not be saved monolithically — but without a persisted
    prefilter every warm start refits it, which walks *every* shard and
    defeats the O(touched-shards) lazy restore.  This adapter exposes just
    enough of the :class:`TableUnionSearcher` persistence surface
    (``config_state``/``config_fingerprint``/``index_state``/
    ``load_index_state``/``INDEX_FORMAT_VERSION``) for
    :class:`~repro.serving.store.IndexStore` to treat the fitted prefilter as
    a first-class entry in its own ``CascadePrefilterEntry-*`` namespace.

    The config fingerprint is keyed on the *configured* prefilter name (so an
    ``auto`` cascade and an explicit one do not share entries) plus every
    prefilter parameter and the base searcher's config fingerprint; the
    persisted state records the *resolved* prefilter name, so restoring an
    ``auto`` cascade never has to probe the base's embedding hooks — probing
    would materialize every deferred shard and forfeit the lazy cold start.
    """

    INDEX_FORMAT_VERSION = 1

    def __init__(self, cascade: "CascadeSearcher") -> None:
        self._cascade = cascade

    def config_state(self) -> dict:
        cascade = self._cascade
        return {
            "base_fingerprint": cascade.base.config_fingerprint(),
            "prefilter": cascade.prefilter_name,
            "projection_dim": cascade.projection_dim,
            "num_hashes": cascade.num_hashes,
            "num_bands": cascade.num_bands,
            "seed": cascade.seed,
        }

    def config_fingerprint(self) -> str:
        payload = json.dumps(
            {
                "class": type(self).__name__,
                "format": self.INDEX_FORMAT_VERSION,
                "config": self.config_state(),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def index_state(self) -> IndexState:
        prefilter = self._cascade.prefilter
        pre_state, pre_arrays = prefilter.state()
        return {"prefilter_name": prefilter.name, "prefilter": pre_state}, dict(
            pre_arrays
        )

    def load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> "CascadePrefilterEntry":
        cascade = self._cascade
        prefilter = cascade._make_prefilter(state["prefilter_name"])
        prefilter.load_state(state["prefilter"], dict(arrays))
        prefilter.bind(cascade.base)
        cascade._prefilter = prefilter
        return self


class CascadeSearcher(TableUnionSearcher):
    """Wraps a backend with the approximate-prefilter / exact-fallback cascade.

    Parameters
    ----------
    base:
        Any :class:`TableUnionSearcher` (including a
        :class:`~repro.search.sharded.ShardedSearcher`).  The cascade indexes
        it, persists alongside it, and exact-scores through its
        :meth:`~TableUnionSearcher.score_candidates` hook.
    mode:
        ``"exact"`` — every query delegates to ``base.search``; rankings are
        bit-identical by construction and the prefilter is only maintained
        (for profiling and later mode flips).  ``"approx"`` — the opt-in
        fast path described in the module docstring.
    candidate_budget:
        How many prefilter candidates survive to exact scoring (always at
        least the requested ``k``).
    escalation_margin:
        When the approximate margin at the budget cut is *below* this value
        the cut is ambiguous and the query escalates to the full exact path.
        ``0.0`` (the default) never escalates; ``inf`` always does.
    prefilter, projection_dim, num_hashes, num_bands, seed:
        Prefilter selection (:data:`PREFILTER_NAMES`) and parameters.
    """

    def __init__(
        self,
        base: TableUnionSearcher,
        *,
        mode: str = "approx",
        candidate_budget: int = 32,
        escalation_margin: float = 0.0,
        prefilter: str = "auto",
        projection_dim: int = 16,
        num_hashes: int = 64,
        num_bands: int = 16,
        seed: int = 7,
    ) -> None:
        super().__init__()
        if not isinstance(base, TableUnionSearcher):
            raise SearchError(
                f"CascadeSearcher wraps TableUnionSearcher instances, "
                f"got {type(base).__name__}"
            )
        if mode not in ("exact", "approx"):
            raise SearchError(f"cascade mode must be exact/approx, got {mode!r}")
        if candidate_budget < 1:
            raise SearchError(
                f"candidate_budget must be positive, got {candidate_budget}"
            )
        if escalation_margin < 0:
            raise SearchError(
                f"escalation_margin must be non-negative, got {escalation_margin}"
            )
        if prefilter not in PREFILTER_NAMES:
            raise SearchError(
                f"prefilter must be one of {PREFILTER_NAMES}, got {prefilter!r}"
            )
        # Prefilter parameters are validated eagerly, not at fit() time, so a
        # bad configuration fails at construction — the same contract the
        # DiscoveryConfig cascade section enforces.
        if projection_dim < 1:
            raise SearchError(
                f"projection_dim must be positive, got {projection_dim}"
            )
        if num_bands < 1 or num_hashes < 1 or num_hashes % num_bands != 0:
            raise SearchError(
                f"num_hashes must be a positive multiple of num_bands, "
                f"got {num_hashes}/{num_bands}"
            )
        self.base = base
        self.mode = mode
        self.candidate_budget = candidate_budget
        self.escalation_margin = escalation_margin
        self.prefilter_name = prefilter
        self.projection_dim = projection_dim
        self.num_hashes = num_hashes
        self.num_bands = num_bands
        self.seed = seed
        self._prefilter: CandidatePrefilter | None = None
        #: Per-stage breakdown of the most recent :meth:`search` call —
        #: inspectable via ``python -m repro search --profile``.
        self.last_profile: dict = {}

    # -------------------------------------------------------------- prefilter
    def _make_prefilter(self, name: str) -> CandidatePrefilter:
        if name == "projection":
            return ProjectionPrefilter(dim=self.projection_dim, seed=self.seed)
        return LSHPrefilter(
            num_hashes=self.num_hashes, num_bands=self.num_bands, seed=self.seed
        )

    def _resolve_prefilter_name(self) -> str:
        if self.prefilter_name != "auto":
            return self.prefilter_name
        return (
            "projection" if self.base.prefilter_table_vectors() is not None else "lsh"
        )

    def _fit_prefilter(self, lake: DataLake) -> None:
        prefilter = self._make_prefilter(self._resolve_prefilter_name())
        prefilter.fit(self.base, lake)
        self._prefilter = prefilter

    @property
    def prefilter(self) -> CandidatePrefilter:
        """The fitted prefilter (raises before :meth:`index`)."""
        if self._prefilter is None:
            raise SearchError("CascadeSearcher used before index() was called")
        return self._prefilter

    # ------------------------------------------------------------------ index
    def _base_in_sync(self, lake: DataLake) -> bool:
        """Whether ``base`` already serves exactly this lake content."""
        return (
            self.base.is_indexed
            and self.base._lake is lake
            and self.base._indexed_table_fps == lake.table_fingerprints()
        )

    def _prefilter_store(self):
        """The base's index store, when the base persists itself per shard.

        Only a self-persisting base leaves the cascade un-persisted (see
        :attr:`manages_own_persistence`) — that is exactly when the fitted
        prefilter needs its own store entry to survive restarts.
        """
        if not self.base.manages_own_persistence:
            return None
        return getattr(self.base, "store", None)

    def _restore_prefilter(self, lake: DataLake) -> bool:
        """Adopt a persisted prefilter entry; ``False`` means fit instead."""
        store = self._prefilter_store()
        if store is None:
            return False
        try:
            store.load(CascadePrefilterEntry(self), lake)
        except ServingError:
            # Miss, config/lake drift, or corruption: a fresh fit (and the
            # re-persist that follows) heals all of them.
            return False
        return True

    def _persist_prefilter(self, lake: DataLake) -> None:
        store = self._prefilter_store()
        if store is None:
            return
        try:
            store.save(CascadePrefilterEntry(self), lake)
        except (SearchError, ServingError):
            pass  # persistence is an optimization; serving continues fitted

    def _build_index(self, lake: DataLake) -> None:
        # An already-bound, content-identical base is adopted as-is: the warm
        # CLI builds the base through build_sharded() first and wrapping it
        # must not pay a second full index build.
        if not self._base_in_sync(lake):
            self.base.index(lake)
        # A persisted prefilter short-circuits the fit — fitting touches
        # every shard, which would forfeit a lazily restored base's
        # O(touched-shards) cold start.
        if self._restore_prefilter(lake):
            return
        self._fit_prefilter(lake)
        self._persist_prefilter(lake)

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        self.base.update_index(added=added, removed=removed)
        # Prefilter structures are cheap aggregates; refitting from the
        # updated base index keeps them exact without a delta protocol.
        self._fit_prefilter(self.base.lake)
        self._persist_prefilter(self.base.lake)

    @property
    def manages_own_persistence(self) -> bool:
        """Delegated: a sharded base persists per shard; the cascade must not
        then be saved as one monolithic store entry (its prefilter refits
        from the restored shards at warm time)."""
        return self.base.manages_own_persistence

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        # The base is keyed by its *fingerprint* (not raw config) so a
        # cascade over a ShardedSearcher shares fingerprints with one over
        # the equivalent flat backend — sharding is an execution strategy.
        return {
            "base_class": type(self.base).__name__,
            "base_fingerprint": self.base.config_fingerprint(),
            "mode": self.mode,
            "candidate_budget": self.candidate_budget,
            "escalation_margin": self.escalation_margin,
            "prefilter": self.prefilter_name,
            "projection_dim": self.projection_dim,
            "num_hashes": self.num_hashes,
            "num_bands": self.num_bands,
            "seed": self.seed,
        }

    def _index_state(self) -> IndexState:
        base_state, base_arrays = self.base.index_state()
        prefilter = self.prefilter
        pre_state, pre_arrays = prefilter.state()
        state = {
            "base": base_state,
            "cascade": {"prefilter_name": prefilter.name, "prefilter": pre_state},
        }
        arrays = {f"base__{key}": value for key, value in base_arrays.items()}
        arrays.update(
            {f"prefilter__{key}": value for key, value in pre_arrays.items()}
        )
        return state, arrays

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        base_arrays = {
            key[len("base__") :]: value
            for key, value in arrays.items()
            if key.startswith("base__")
        }
        pre_arrays = {
            key[len("prefilter__") :]: value
            for key, value in arrays.items()
            if key.startswith("prefilter__")
        }
        self.base.load_index_state(lake, state["base"], base_arrays)
        prefilter = self._make_prefilter(state["cascade"]["prefilter_name"])
        prefilter.load_state(state["cascade"]["prefilter"], pre_arrays)
        prefilter.bind(self.base)
        self._prefilter = prefilter

    # ----------------------------------------------------------------- search
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        return self.base._score_table(query_table, lake_table)

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        return self.base.score_candidates(query_table, names)

    def _exact_search(
        self, query_table: Table, k: int, *, escalated: bool, started: float
    ) -> list[SearchResult]:
        results = self.base.search(query_table, k)
        self.last_profile.update(
            {
                "escalated": escalated,
                "exact_scoring_seconds": time.perf_counter() - started,
            }
        )
        return results

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Cascade search: prefilter, narrow exact scoring, escalate when
        ambiguous.  ``exact`` mode delegates wholesale — bit-identical."""
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.lake  # raises before index()
        self.last_profile = {
            "mode": self.mode,
            "escalated": False,
            "prefilter_seconds": 0.0,
            "exact_scoring_seconds": 0.0,
            "merge_seconds": 0.0,
            "num_candidates": None,
            "margin": None,
        }
        if self.mode == "exact":
            return self._exact_search(
                query_table, k, escalated=False, started=time.perf_counter()
            )
        budget = max(self.candidate_budget, k)
        started = time.perf_counter()
        names, margin = self.prefilter.candidates(query_table, budget)
        self.last_profile.update(
            {
                "prefilter_seconds": time.perf_counter() - started,
                "num_candidates": len(names),
                "margin": margin,
            }
        )
        if margin < self.escalation_margin:
            return self._exact_search(
                query_table, k, escalated=True, started=time.perf_counter()
            )
        started = time.perf_counter()
        scores = self.base.score_candidates(query_table, names)
        scored = time.perf_counter()
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        results = [
            SearchResult(table_name=name, score=float(score), rank=rank)
            for rank, (name, score) in enumerate(ranked[:k], start=1)
        ]
        self.last_profile.update(
            {
                "exact_scoring_seconds": scored - started,
                "merge_seconds": time.perf_counter() - scored,
            }
        )
        return results
