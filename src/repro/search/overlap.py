"""Value-overlap table union search (TUS-style, Nargesian et al. [37]).

A data lake table is unionable with the query table when its columns overlap
the query columns' value sets.  The table score is the average, over query
columns, of the best (estimated) Jaccard overlap any column of the candidate
table achieves against that query column — the "syntactic unionability"
signal of the original TUS system, accelerated with MinHash/LSH.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

import numpy as np

from repro.api.registry import register_searcher
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import IndexState, TableUnionSearcher, merge_shard_table_maps
from repro.search.minhash import _MAX_HASH, MinHashLSHIndex, MinHashSignature
from repro.utils.errors import SearchError
from repro.utils.text import is_null, normalize_text


def column_token_set(table: Table, column: str) -> set[str]:
    """Normalised distinct values of a column, used as its overlap token set."""
    return {
        normalize_text(value)
        for value in table.column_values(column)
        if not is_null(value) and normalize_text(value)
    }


@register_searcher("overlap")
class ValueOverlapSearcher(TableUnionSearcher):
    """Ranks lake tables by average best per-query-column value overlap.

    Parameters
    ----------
    num_hashes, num_bands:
        MinHash/LSH configuration controlling the accuracy/speed trade-off of
        the Jaccard estimates.
    min_column_overlap:
        Column pairs with estimated overlap below this threshold do not count
        as unionable columns (mirrors the per-column statistical test of TUS).
    """

    def __init__(
        self,
        *,
        num_hashes: int = 64,
        num_bands: int = 16,
        min_column_overlap: float = 0.05,
    ) -> None:
        super().__init__()
        self.num_hashes = num_hashes
        self.num_bands = num_bands
        self.min_column_overlap = min_column_overlap
        self._index: MinHashLSHIndex | None = None
        self._columns_by_table: dict[str, list[str]] = {}
        #: (num_lake_columns, num_hashes) int64 stack of all lake signatures
        #: plus each table's row positions in it, built by _finalize_matrix.
        self._signature_matrix: np.ndarray | None = None
        self._table_rows: dict[str, np.ndarray] = {}
        self._query_memo = threading.local()

    def _finalize_matrix(self) -> None:
        """Stack every lake column signature into one matrix for fast scoring."""
        assert self._index is not None
        keys = self._index.keys()
        self._signature_matrix = np.array(
            [self._index.signature_of(key).values for key in keys], dtype=np.int64
        ).reshape(len(keys), self.num_hashes)
        key_to_row = {key: row for row, key in enumerate(keys)}
        self._table_rows = {
            table: np.array([key_to_row[key] for key in columns], dtype=np.intp)
            for table, columns in self._columns_by_table.items()
        }
        self._query_memo = threading.local()

    def _query_matches(self, query_table: Table) -> list[np.ndarray | None]:
        """Per query column: MinHash match counts against every lake column.

        One-entry thread-local memo keyed by object identity plus the table's
        (cached) content fingerprint, so in-place mutation via ``append_rows``
        invalidates it: the base class scores the query against every lake
        table, and these counts depend only on the query and the (fixed) lake
        matrix.  Each entry is a ``(num_lake_columns,)`` int array — the
        estimated Jaccard to lake column ``j`` is ``matches[j] / num_hashes``,
        exactly the arithmetic of :meth:`MinHashSignature.jaccard`.  Empty
        query columns map to ``None``.
        """
        assert self._signature_matrix is not None
        cached = getattr(self._query_memo, "entry", None)
        if (
            cached is not None
            and cached[0] is query_table
            and cached[1] == query_table.content_fingerprint()
        ):
            return cached[2]
        matches: list[np.ndarray | None] = []
        for column in query_table.columns:
            tokens = column_token_set(query_table, column)
            if not tokens:
                matches.append(None)
                continue
            signature = np.array(
                self._index.hasher.signature(tokens).values, dtype=np.int64
            )
            matches.append((self._signature_matrix == signature).sum(axis=1))
        self._query_memo.entry = (
            query_table,
            query_table.content_fingerprint(),
            matches,
        )
        return matches

    # ------------------------------------------------------------------ index
    def _add_table_columns(self, table: Table) -> None:
        assert self._index is not None
        keys = []
        for column in table.columns:
            key = f"{table.name}\x1f{column}"
            self._index.add(key, column_token_set(table, column))
            keys.append(key)
        self._columns_by_table[table.name] = keys

    def _build_index(self, lake: DataLake) -> None:
        self._index = MinHashLSHIndex(self.num_hashes, self.num_bands)
        self._columns_by_table = {}
        for table in lake:
            self._add_table_columns(table)
        self._finalize_matrix()

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """MinHash signatures are per column, so deltas are exact and local.

        Removed tables' column signatures leave the LSH index, added tables'
        are hashed in, and the stacked scoring matrix is restacked from the
        per-column signatures (cheap relative to hashing cell values).  Row
        order in the matrix differs from a fresh build, but scoring reduces
        each table's rows with ``max``, so rankings are order-independent.
        """
        assert self._index is not None
        for name in removed:
            for key in self._columns_by_table.pop(name, ()):
                if key in self._index:
                    self._index.remove(key)
        for table in added:
            self._add_table_columns(table)
        self._finalize_matrix()

    def _merge_partial_states(self, lake: DataLake, parts: list[IndexState]) -> None:
        """LSH band merge: re-band every shard's per-column signatures.

        MinHash signatures are a pure function of one column's token set, so
        shard partials already hold the exact signatures a monolithic build
        would compute; merging re-inserts them into one banding index (band
        buckets are unions of the shards') and restacks the scoring matrix
        in lake order — the same layout as a fresh build, hence bit-identical
        scores.
        """
        signature_by_key: dict[str, MinHashSignature] = {}
        per_part_columns: list[dict[str, list[str]]] = []
        for state, arrays in parts:
            if (
                int(state["num_hashes"]) != self.num_hashes
                or int(state["num_bands"]) != self.num_bands
            ):
                raise SearchError(
                    "shard partial MinHash configuration "
                    f"({state['num_hashes']}/{state['num_bands']} hashes/bands) "
                    f"does not match this searcher "
                    f"({self.num_hashes}/{self.num_bands})"
                )
            signatures = np.asarray(arrays["signatures"], dtype=np.int64)
            for key, row in zip(state["keys"], signatures):
                signature_by_key[key] = MinHashSignature(
                    values=tuple(int(value) for value in row)
                )
            per_part_columns.append(
                {name: list(columns) for name, columns in state["columns_by_table"].items()}
            )
        columns_by_table = merge_shard_table_maps(
            lake, per_part_columns, what="overlap partial merge"
        )
        index = MinHashLSHIndex(self.num_hashes, self.num_bands)
        for columns in columns_by_table.values():
            for key in columns:
                index.add_signature(key, signature_by_key[key])
        self._index = index
        self._columns_by_table = columns_by_table
        self._finalize_matrix()

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        return {
            "num_hashes": self.num_hashes,
            "num_bands": self.num_bands,
            "min_column_overlap": self.min_column_overlap,
        }

    def _index_state(self) -> IndexState:
        assert self._index is not None  # guaranteed by TableUnionSearcher.index
        keys = self._index.keys()
        signatures = np.array(
            [self._index.signature_of(key).values for key in keys], dtype=np.int64
        ).reshape(len(keys), self.num_hashes)
        state = {
            "num_hashes": self.num_hashes,
            "num_bands": self.num_bands,
            "keys": keys,
            "columns_by_table": self._columns_by_table,
        }
        return state, {"signatures": signatures}

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        if (
            int(state["num_hashes"]) != self.num_hashes
            or int(state["num_bands"]) != self.num_bands
        ):
            raise SearchError(
                "persisted MinHash configuration "
                f"({state['num_hashes']}/{state['num_bands']} hashes/bands) does "
                f"not match this searcher ({self.num_hashes}/{self.num_bands})"
            )
        signatures = np.asarray(arrays["signatures"], dtype=np.int64)
        index = MinHashLSHIndex(self.num_hashes, self.num_bands)
        for key, row in zip(state["keys"], signatures):
            index.add_signature(
                key, MinHashSignature(values=tuple(int(value) for value in row))
            )
        self._index = index
        self._columns_by_table = {
            table: list(columns)
            for table, columns in state["columns_by_table"].items()
        }
        self._finalize_matrix()

    # ------------------------------------------------------- cascade prefilter
    def prefilter_minhash_signatures(
        self, num_hashes: int, seed: int
    ) -> dict[str, np.ndarray] | None:
        """Table-level signatures as elementwise minima of the column rows.

        MinHash of a union of token sets is the elementwise min of the sets'
        signatures, so the per-column rows already stacked in
        ``_signature_matrix`` reduce to exact table signatures without
        re-hashing a single cell value.  Only valid when the prefilter asks
        for the same hash family this index was built under
        (``_build_index`` uses the :class:`MinHashLSHIndex` default seed).
        """
        if (
            self._signature_matrix is None
            or num_hashes != self.num_hashes
            or seed != 7
        ):
            return None
        signatures: dict[str, np.ndarray] = {}
        for name, rows in self._table_rows.items():
            if rows.size == 0:  # a table of empty columns hashes to all-max
                signatures[name] = np.full(self.num_hashes, _MAX_HASH, dtype=np.int64)
            else:
                signatures[name] = self._signature_matrix[rows].min(axis=0)
        return signatures

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Narrow exact scoring: the per-query match counts are memoised, so
        each candidate costs one ``max`` reduce over its rows."""
        return self._score_candidate_names(query_table, names)

    # ----------------------------------------------------------------- search
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        assert self._index is not None  # guaranteed by TableUnionSearcher.index
        rows = self._table_rows.get(lake_table.name)
        if rows is None or rows.size == 0 or query_table.num_columns == 0:
            return 0.0
        total = 0.0
        for matches in self._query_matches(query_table):
            if matches is None:
                continue
            # int matches / num_hashes is exactly MinHashSignature.jaccard.
            best = matches[rows].max() / self.num_hashes
            if best >= self.min_column_overlap:
                total += best
        return total / query_table.num_columns
