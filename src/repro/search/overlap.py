"""Value-overlap table union search (TUS-style, Nargesian et al. [37]).

A data lake table is unionable with the query table when its columns overlap
the query columns' value sets.  The table score is the average, over query
columns, of the best (estimated) Jaccard overlap any column of the candidate
table achieves against that query column — the "syntactic unionability"
signal of the original TUS system, accelerated with MinHash/LSH.
"""

from __future__ import annotations

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import TableUnionSearcher
from repro.search.minhash import MinHashLSHIndex
from repro.utils.text import is_null, normalize_text


def column_token_set(table: Table, column: str) -> set[str]:
    """Normalised distinct values of a column, used as its overlap token set."""
    return {
        normalize_text(value)
        for value in table.column_values(column)
        if not is_null(value) and normalize_text(value)
    }


class ValueOverlapSearcher(TableUnionSearcher):
    """Ranks lake tables by average best per-query-column value overlap.

    Parameters
    ----------
    num_hashes, num_bands:
        MinHash/LSH configuration controlling the accuracy/speed trade-off of
        the Jaccard estimates.
    min_column_overlap:
        Column pairs with estimated overlap below this threshold do not count
        as unionable columns (mirrors the per-column statistical test of TUS).
    """

    def __init__(
        self,
        *,
        num_hashes: int = 64,
        num_bands: int = 16,
        min_column_overlap: float = 0.05,
    ) -> None:
        super().__init__()
        self.num_hashes = num_hashes
        self.num_bands = num_bands
        self.min_column_overlap = min_column_overlap
        self._index: MinHashLSHIndex | None = None
        self._columns_by_table: dict[str, list[str]] = {}

    # ------------------------------------------------------------------ index
    def _build_index(self, lake: DataLake) -> None:
        self._index = MinHashLSHIndex(self.num_hashes, self.num_bands)
        self._columns_by_table = {}
        for table in lake:
            keys = []
            for column in table.columns:
                key = f"{table.name}\x1f{column}"
                self._index.add(key, column_token_set(table, column))
                keys.append(key)
            self._columns_by_table[table.name] = keys

    # ----------------------------------------------------------------- search
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        assert self._index is not None  # guaranteed by TableUnionSearcher.index
        lake_keys = self._columns_by_table.get(lake_table.name, [])
        if not lake_keys or query_table.num_columns == 0:
            return 0.0
        total = 0.0
        for query_column in query_table.columns:
            tokens = column_token_set(query_table, query_column)
            if not tokens:
                continue
            signature = self._index.hasher.signature(tokens)
            best = 0.0
            for key in lake_keys:
                overlap = signature.jaccard(self._index.signature_of(key))
                if overlap > best:
                    best = overlap
            if best >= self.min_column_overlap:
                total += best
        return total / query_table.num_columns
