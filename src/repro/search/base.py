"""Common interface for table union search techniques."""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import SearchError

#: JSON-serializable index metadata + named numpy payloads, as produced by
#: :meth:`TableUnionSearcher.index_state` and consumed by ``load_index_state``.
IndexState = tuple[dict, dict[str, np.ndarray]]


@dataclass(frozen=True)
class SearchResult:
    """One ranked search hit: a data lake table and its unionability score."""

    table_name: str
    score: float
    rank: int


class TableUnionSearcher(abc.ABC):
    """Base class for top-k unionable table search.

    Lifecycle: construct, :meth:`index` a data lake once, then call
    :meth:`search` for each query table.  Implementations must not mutate the
    indexed lake.
    """

    def __init__(self) -> None:
        self._lake: DataLake | None = None

    # ------------------------------------------------------------------ index
    @abc.abstractmethod
    def _build_index(self, lake: DataLake) -> None:
        """Build implementation-specific index structures for ``lake``."""

    def index(self, lake: DataLake) -> "TableUnionSearcher":
        """Index ``lake`` for subsequent searches.

        ``self._lake`` is assigned only after :meth:`_build_index` succeeds,
        so a failed build leaves the searcher cleanly un-indexed
        (``is_indexed`` stays ``False``) instead of claiming an index it does
        not have.
        """
        if lake.num_tables == 0:
            raise SearchError("cannot index an empty data lake")
        self._build_index(lake)
        self._lake = lake
        return self

    @property
    def lake(self) -> DataLake:
        """The indexed data lake."""
        if self._lake is None:
            raise SearchError(f"{type(self).__name__} used before index() was called")
        return self._lake

    @property
    def is_indexed(self) -> bool:
        """Whether :meth:`index` has been called."""
        return self._lake is not None

    # --------------------------------------------------- index serialization
    #: Bump in a subclass whenever its serialized index layout changes; the
    #: version participates in :meth:`config_fingerprint`, so stale persisted
    #: entries become store misses instead of deserialization errors.
    INDEX_FORMAT_VERSION = 1

    def config_state(self) -> dict[str, Any]:
        """JSON-serializable constructor configuration of this searcher.

        Everything that changes what :meth:`_build_index` or search would
        compute must appear here — it is part of the persisted-index key.
        """
        return {}

    def config_fingerprint(self) -> str:
        """Stable hex digest of (class, index format version, configuration)."""
        payload = json.dumps(
            {
                "class": type(self).__name__,
                "format": self.INDEX_FORMAT_VERSION,
                "config": self.config_state(),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _index_state(self) -> IndexState:
        """Implementation hook: dump the built index as (metadata, arrays)."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Implementation hook: restore index structures dumped by ``_index_state``."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def index_state(self) -> IndexState:
        """Dump the built index as a JSON-serializable dict plus numpy payloads.

        The returned pair round-trips through :meth:`load_index_state` to a
        searcher whose results are bit-identical to one freshly indexed on the
        same lake.  Requires :meth:`index` to have been called.
        """
        if not self.is_indexed:
            raise SearchError(
                f"{type(self).__name__}.index_state() called before index()"
            )
        return self._index_state()

    def load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> "TableUnionSearcher":
        """Restore a previously dumped index for ``lake`` without rebuilding it."""
        if lake.num_tables == 0:
            raise SearchError("cannot load an index for an empty data lake")
        self._load_index_state(lake, state, arrays)
        self._lake = lake
        return self

    # ----------------------------------------------------------------- search
    @abc.abstractmethod
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        """Unionability score of ``lake_table`` with respect to ``query_table``."""

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Return the top-``k`` unionable tables for ``query_table``.

        Tables are ranked by decreasing score; ties are broken by table name
        so rankings are deterministic.  A table with the same name as the
        query table is never returned (the paper's benchmarks keep the query
        outside the lake, but user lakes may not).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        scored = [
            (self._score_table(query_table, lake_table), lake_table.name)
            for lake_table in self.lake
            if lake_table.name != query_table.name
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            SearchResult(table_name=name, score=float(score), rank=rank)
            for rank, (score, name) in enumerate(scored[:k], start=1)
        ]

    def search_tables(self, query_table: Table, k: int) -> list[Table]:
        """Like :meth:`search` but returning the table objects directly."""
        return [self.lake.get(result.table_name) for result in self.search(query_table, k)]
