"""Common interface for table union search techniques."""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.datalake.delta import diff_table_fingerprints
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import IndexDeltaUnsupported, SearchError

#: JSON-serializable index metadata + named numpy payloads, as produced by
#: :meth:`TableUnionSearcher.index_state` and consumed by ``load_index_state``.
IndexState = tuple[dict, dict[str, np.ndarray]]


@dataclass(frozen=True)
class SearchResult:
    """One ranked search hit: a data lake table and its unionability score."""

    table_name: str
    score: float
    rank: int


class TableUnionSearcher(abc.ABC):
    """Base class for top-k unionable table search.

    Lifecycle: construct, :meth:`index` a data lake once, then call
    :meth:`search` for each query table.  When the lake mutates afterwards
    (``add_table``/``remove_table``/``replace_table``), :meth:`update_index`
    applies the delta incrementally — or, for backends without an incremental
    path, rebuilds — and :meth:`refresh` derives the delta automatically from
    content fingerprints.  Implementations must not mutate the indexed lake
    themselves.
    """

    def __init__(self) -> None:
        self._lake: DataLake | None = None
        #: ``table name -> content fingerprint`` snapshot of the lake as last
        #: indexed; :meth:`refresh` diffs the live lake against it.
        self._indexed_table_fps: dict[str, str] = {}

    # ------------------------------------------------------------------ index
    @abc.abstractmethod
    def _build_index(self, lake: DataLake) -> None:
        """Build implementation-specific index structures for ``lake``."""

    def _record_indexed_lake(self, lake: DataLake) -> None:
        """Bind ``lake`` and snapshot its content for later delta derivation."""
        self._lake = lake
        self._indexed_table_fps = lake.table_fingerprints()

    def index(self, lake: DataLake) -> "TableUnionSearcher":
        """Index ``lake`` for subsequent searches.

        ``self._lake`` is assigned only after :meth:`_build_index` succeeds,
        so a failed build leaves the searcher cleanly un-indexed
        (``is_indexed`` stays ``False``) instead of claiming an index it does
        not have.
        """
        if lake.num_tables == 0:
            raise SearchError("cannot index an empty data lake")
        self._build_index(lake)
        self._record_indexed_lake(lake)
        return self

    # ----------------------------------------------------- incremental updates
    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """Implementation hook: apply a lake delta to the built index.

        ``added`` holds the tables to (re-)index — they are already members
        of :attr:`lake` — and ``removed`` the names whose index entries must
        be dropped; a replaced table appears in both.  Implementations that
        cannot honour a particular delta incrementally (for example because
        it invalidates corpus-level statistics baked into other tables'
        entries) raise :class:`IndexDeltaUnsupported`;
        :meth:`update_index` then falls back to a full rebuild.  The default
        declares every delta unsupported, so new backends are correct before
        they are fast.
        """
        raise IndexDeltaUnsupported(
            f"{type(self).__name__} has no incremental index maintenance"
        )

    def update_index(
        self,
        *,
        added: Iterable[Table] = (),
        removed: Iterable[str] = (),
    ) -> "TableUnionSearcher":
        """Apply a lake mutation delta to the built index.

        Call after mutating the indexed lake in place: ``added`` are the
        tables that joined (or replaced an incumbent — list the name in
        ``removed`` too), ``removed`` the names that left.  The update is
        exactly as correct as a rebuild: backends either apply the delta
        with bit-identical results or raise
        :class:`IndexDeltaUnsupported`, in which case this method silently
        falls back to ``_build_index`` over the whole lake.  Prefer
        :meth:`refresh`, which derives the delta for you.
        """
        if self._lake is None:
            raise SearchError(
                f"{type(self).__name__}.update_index() called before index()"
            )
        lake = self._lake
        if lake.num_tables == 0:
            raise SearchError("cannot maintain an index over an empty data lake")
        added = list(added)
        removed = [str(name) for name in removed]
        added_names = {table.name for table in added}
        for table in added:
            if table.name not in lake:
                raise SearchError(
                    f"added table {table.name!r} is not a member of the indexed lake"
                )
        for name in removed:
            if name in lake and name not in added_names:
                raise SearchError(
                    f"removed table {name!r} is still a member of the indexed lake"
                )
        if added or removed:
            try:
                self._apply_index_delta(added, removed)
            except IndexDeltaUnsupported:
                self._build_index(lake)
        self._record_indexed_lake(lake)
        return self

    def refresh(self) -> "TableUnionSearcher":
        """Re-synchronise the index with the (mutated) indexed lake.

        Diffs the lake's current content fingerprints against the snapshot
        taken when the index was last built/updated, so it sees every kind
        of change — catalog mutations *and* in-place ``append_rows`` — and
        applies the net delta through :meth:`update_index`.  A no-op when
        nothing changed.
        """
        lake = self.lake  # raises before index()
        added_names, removed = diff_table_fingerprints(
            self._indexed_table_fps, lake.table_fingerprints()
        )
        if added_names or removed:
            self.update_index(
                added=[lake.get(name) for name in added_names], removed=removed
            )
        return self

    @property
    def lake(self) -> DataLake:
        """The indexed data lake."""
        if self._lake is None:
            raise SearchError(f"{type(self).__name__} used before index() was called")
        return self._lake

    @property
    def is_indexed(self) -> bool:
        """Whether :meth:`index` has been called."""
        return self._lake is not None

    # --------------------------------------------------- index serialization
    #: Bump in a subclass whenever its serialized index layout changes; the
    #: version participates in :meth:`config_fingerprint`, so stale persisted
    #: entries become store misses instead of deserialization errors.
    INDEX_FORMAT_VERSION = 1

    def config_state(self) -> dict[str, Any]:
        """JSON-serializable constructor configuration of this searcher.

        Everything that changes what :meth:`_build_index` or search would
        compute must appear here — it is part of the persisted-index key.
        """
        return {}

    def config_fingerprint(self) -> str:
        """Stable hex digest of (class, index format version, configuration)."""
        payload = json.dumps(
            {
                "class": type(self).__name__,
                "format": self.INDEX_FORMAT_VERSION,
                "config": self.config_state(),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _index_state(self) -> IndexState:
        """Implementation hook: dump the built index as (metadata, arrays)."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Implementation hook: restore index structures dumped by ``_index_state``."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def index_state(self) -> IndexState:
        """Dump the built index as a JSON-serializable dict plus numpy payloads.

        The returned pair round-trips through :meth:`load_index_state` to a
        searcher whose results are bit-identical to one freshly indexed on the
        same lake.  Requires :meth:`index` to have been called.
        """
        if not self.is_indexed:
            raise SearchError(
                f"{type(self).__name__}.index_state() called before index()"
            )
        return self._index_state()

    def load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> "TableUnionSearcher":
        """Restore a previously dumped index for ``lake`` without rebuilding it."""
        if lake.num_tables == 0:
            raise SearchError("cannot load an index for an empty data lake")
        self._load_index_state(lake, state, arrays)
        self._record_indexed_lake(lake)
        return self

    # ----------------------------------------------------------------- search
    @abc.abstractmethod
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        """Unionability score of ``lake_table`` with respect to ``query_table``."""

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Return the top-``k`` unionable tables for ``query_table``.

        Tables are ranked by decreasing score; ties are broken by table name
        so rankings are deterministic.  A table with the same name as the
        query table is never returned (the paper's benchmarks keep the query
        outside the lake, but user lakes may not).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        scored = [
            (self._score_table(query_table, lake_table), lake_table.name)
            for lake_table in self.lake
            if lake_table.name != query_table.name
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            SearchResult(table_name=name, score=float(score), rank=rank)
            for rank, (score, name) in enumerate(scored[:k], start=1)
        ]

    def search_tables(self, query_table: Table, k: int) -> list[Table]:
        """Like :meth:`search` but returning the table objects directly."""
        return [self.lake.get(result.table_name) for result in self.search(query_table, k)]
