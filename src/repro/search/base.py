"""Common interface for table union search techniques."""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.datalake.delta import diff_table_fingerprints
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import (
    IndexDeltaUnsupported,
    IndexMergeUnsupported,
    SearchError,
)

#: JSON-serializable index metadata + named numpy payloads, as produced by
#: :meth:`TableUnionSearcher.index_state` and consumed by ``load_index_state``.
#: Per-shard partials (:meth:`TableUnionSearcher.build_partial`) use the same
#: shape, so they are picklable across process boundaries and persistable
#: through the :class:`~repro.serving.store.IndexStore` unchanged.
IndexState = tuple[dict, dict[str, np.ndarray]]


def merge_shard_table_maps(
    lake: DataLake, per_part_maps: Iterable[Mapping[str, Any]], *, what: str
) -> dict[str, Any]:
    """Union per-shard ``table name -> entry`` maps, validated, in lake order.

    The workhorse of every backend's partial-merge: shards must be disjoint
    (a table indexed by two partials is a partitioning bug, not something to
    resolve silently) and must cover the lake exactly.  The merged map is
    returned keyed in the lake's iteration order so merged index structures
    are laid out identically to a monolithic build.
    """
    merged: dict[str, Any] = {}
    for part_map in per_part_maps:
        for name, value in part_map.items():
            if name in merged:
                raise SearchError(
                    f"{what}: table {name!r} appears in more than one shard partial"
                )
            merged[name] = value
    lake_names = set(lake.table_names())
    missing = lake_names - set(merged)
    extra = set(merged) - lake_names
    if missing or extra:
        raise SearchError(
            f"{what}: shard partials do not cover the lake exactly "
            f"(missing {sorted(missing)[:3]}, extra {sorted(extra)[:3]})"
        )
    return {table.name: merged[table.name] for table in lake}


@dataclass(frozen=True)
class SearchResult:
    """One ranked search hit: a data lake table and its unionability score."""

    table_name: str
    score: float
    rank: int


class TableUnionSearcher(abc.ABC):
    """Base class for top-k unionable table search.

    Lifecycle: construct, :meth:`index` a data lake once, then call
    :meth:`search` for each query table.  When the lake mutates afterwards
    (``add_table``/``remove_table``/``replace_table``), :meth:`update_index`
    applies the delta incrementally — or, for backends without an incremental
    path, rebuilds — and :meth:`refresh` derives the delta automatically from
    content fingerprints.  Implementations must not mutate the indexed lake
    themselves.
    """

    def __init__(self) -> None:
        self._lake: DataLake | None = None
        #: ``table name -> content fingerprint`` snapshot of the lake as last
        #: indexed; :meth:`refresh` diffs the live lake against it.
        self._indexed_table_fps: dict[str, str] = {}

    # ------------------------------------------------------------------ index
    @abc.abstractmethod
    def _build_index(self, lake: DataLake) -> None:
        """Build implementation-specific index structures for ``lake``."""

    def _record_indexed_lake(self, lake: DataLake) -> None:
        """Bind ``lake`` and snapshot its content for later delta derivation."""
        self._lake = lake
        self._indexed_table_fps = lake.table_fingerprints()

    def index(self, lake: DataLake) -> "TableUnionSearcher":
        """Index ``lake`` for subsequent searches.

        ``self._lake`` is assigned only after :meth:`_build_index` succeeds,
        so a failed build leaves the searcher cleanly un-indexed
        (``is_indexed`` stays ``False``) instead of claiming an index it does
        not have.
        """
        if lake.num_tables == 0:
            raise SearchError("cannot index an empty data lake")
        self._build_index(lake)
        self._record_indexed_lake(lake)
        return self

    # ----------------------------------------------------- incremental updates
    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """Implementation hook: apply a lake delta to the built index.

        ``added`` holds the tables to (re-)index — they are already members
        of :attr:`lake` — and ``removed`` the names whose index entries must
        be dropped; a replaced table appears in both.  Implementations that
        cannot honour a particular delta incrementally (for example because
        it invalidates corpus-level statistics baked into other tables'
        entries) raise :class:`IndexDeltaUnsupported`;
        :meth:`update_index` then falls back to a full rebuild.  The default
        declares every delta unsupported, so new backends are correct before
        they are fast.
        """
        raise IndexDeltaUnsupported(
            f"{type(self).__name__} has no incremental index maintenance"
        )

    def update_index(
        self,
        *,
        added: Iterable[Table] = (),
        removed: Iterable[str] = (),
    ) -> "TableUnionSearcher":
        """Apply a lake mutation delta to the built index.

        Call after mutating the indexed lake in place: ``added`` are the
        tables that joined (or replaced an incumbent — list the name in
        ``removed`` too), ``removed`` the names that left.  The update is
        exactly as correct as a rebuild: backends either apply the delta
        with bit-identical results or raise
        :class:`IndexDeltaUnsupported`, in which case this method silently
        falls back to ``_build_index`` over the whole lake.  Prefer
        :meth:`refresh`, which derives the delta for you.
        """
        if self._lake is None:
            raise SearchError(
                f"{type(self).__name__}.update_index() called before index()"
            )
        lake = self._lake
        if lake.num_tables == 0:
            raise SearchError("cannot maintain an index over an empty data lake")
        added = list(added)
        removed = [str(name) for name in removed]
        added_names = {table.name for table in added}
        for table in added:
            if table.name not in lake:
                raise SearchError(
                    f"added table {table.name!r} is not a member of the indexed lake"
                )
        for name in removed:
            if name in lake and name not in added_names:
                raise SearchError(
                    f"removed table {name!r} is still a member of the indexed lake"
                )
        if added or removed:
            try:
                self._apply_index_delta(added, removed)
            except IndexDeltaUnsupported:
                self._build_index(lake)
        self._record_indexed_lake(lake)
        return self

    def refresh(self) -> "TableUnionSearcher":
        """Re-synchronise the index with the (mutated) indexed lake.

        Diffs the lake's current content fingerprints against the snapshot
        taken when the index was last built/updated, so it sees every kind
        of change — catalog mutations *and* in-place ``append_rows`` — and
        applies the net delta through :meth:`update_index`.  A no-op when
        nothing changed.
        """
        return self.rebase(self.lake)  # self.lake raises before index()

    def rebase(self, lake: DataLake) -> "TableUnionSearcher":
        """Point the built index at ``lake``, applying the net content delta.

        Like :meth:`refresh`, but for consumers that hold a *new* lake object
        whose content drifted from the indexed one — a re-derived shard view,
        a re-loaded copy of the same lake.  Equivalent to a fresh
        :meth:`index` call (and literally one when nothing was indexed yet),
        at the cost of only the changed tables.
        """
        if self._lake is None:
            return self.index(lake)
        if lake.num_tables == 0:
            raise SearchError("cannot rebase an index onto an empty data lake")
        added_names, removed = diff_table_fingerprints(
            self._indexed_table_fps, lake.table_fingerprints()
        )
        self._lake = lake  # update_index validates membership against it
        if added_names or removed:
            self.update_index(
                added=[lake.get(name) for name in added_names], removed=removed
            )
        else:
            self._record_indexed_lake(lake)
        return self

    @property
    def lake(self) -> DataLake:
        """The indexed data lake."""
        if self._lake is None:
            raise SearchError(f"{type(self).__name__} used before index() was called")
        return self._lake

    @property
    def is_indexed(self) -> bool:
        """Whether :meth:`index` has been called."""
        return self._lake is not None

    @property
    def manages_own_persistence(self) -> bool:
        """Whether this searcher persists its own index (e.g. per shard).

        When true, :class:`~repro.serving.store.IndexStore`-wrapping
        consumers (``QueryService``, the facade) must not save or load it as
        one monolithic store entry — warming/refreshing the searcher itself
        performs the persistence.
        """
        return False

    # -------------------------------------------------------- sharded builds
    #: Whether a persisted index over a *shard* of a lake depends only on
    #: that shard's tables.  True for every backend whose per-table entries
    #: are shard-local (so per-shard store entries round-trip through the
    #: ordinary load path); the oracle sets it to False because restoring its
    #: "index" re-validates the ground truth against the whole lake.
    SHARD_LOCAL_INDEX = True

    def build_partial(self, shard: DataLake) -> IndexState:
        """Index ``shard`` alone and return the serialized partial index.

        The partial is scratch output for :meth:`merge_partials` (or
        :meth:`load_partial` onto a per-shard serving searcher): this
        searcher's own index is clobbered and it is left *un-indexed*, so
        partial builds can run on forked worker copies or on one scratch
        instance sequentially without anyone mistaking the intermediate
        state for a queryable index.
        """
        if shard.num_tables == 0:
            raise SearchError("cannot build a partial index over an empty shard")
        self._lake = None
        self._indexed_table_fps = {}
        self._build_index(shard)
        return self._index_state()

    def _load_partial_state(
        self, shard: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Implementation hook: restore a partial dumped by :meth:`build_partial`.

        Defaults to the ordinary :meth:`_load_index_state` — a partial *is* a
        full index over the shard-as-lake for every backend whose entries are
        shard-local.  Backends with lake-global state (the oracle's
        validation) override this to defer that state to
        :meth:`finalize_shard_group`.
        """
        self._load_index_state(shard, state, arrays)

    def load_partial(
        self, shard: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> "TableUnionSearcher":
        """Restore a :meth:`build_partial` dump, binding this searcher to ``shard``."""
        if shard.num_tables == 0:
            raise SearchError("cannot load a partial index for an empty shard")
        self._load_partial_state(shard, state, arrays)
        self._record_indexed_lake(shard)
        return self

    def _merge_partial_states(self, lake: DataLake, parts: list[IndexState]) -> None:
        """Implementation hook: assemble the full-lake index from shard partials.

        ``parts`` are :meth:`build_partial` dumps over disjoint shards that
        together cover ``lake`` exactly.  Implementations must produce an
        index **bit-identical** to ``_build_index(lake)`` — scores and ranks,
        not just sets — or raise :class:`IndexMergeUnsupported`, in which
        case :meth:`merge_partials` falls back to a monolithic build.  The
        default declares merging unsupported, so new backends are correct
        before they are fast.
        """
        raise IndexMergeUnsupported(
            f"{type(self).__name__} has no partial-index merge"
        )

    def merge_partials(
        self, lake: DataLake, parts: Iterable[IndexState]
    ) -> "TableUnionSearcher":
        """Assemble and bind the full index for ``lake`` from per-shard partials.

        The result is bit-identical to :meth:`index` over the same lake —
        backends either merge exactly or the base class silently rebuilds
        monolithically (the :class:`IndexMergeUnsupported` fallback).
        """
        if lake.num_tables == 0:
            raise SearchError("cannot merge partial indexes for an empty data lake")
        parts = list(parts)
        if not parts:
            raise SearchError("merge_partials() needs at least one partial index")
        try:
            self._merge_partial_states(lake, parts)
        except IndexMergeUnsupported:
            self._build_index(lake)
        self._record_indexed_lake(lake)
        return self

    def finalize_shard_group(
        self, lake: DataLake, shard_searchers: "Iterable[TableUnionSearcher]"
    ) -> None:
        """Hook: reconcile lake-global state across per-shard searchers.

        Called by :class:`~repro.search.sharded.ShardedSearcher` after the
        per-shard indexes are (re)built, with the full lake and the live
        shard searchers.  Most backends' per-table entries are shard-local
        already, so the default is a no-op; Starmie aligns every shard to
        the global TF-IDF corpus here, and the oracle re-validates its
        ground truth against the whole lake.  Implementations must be
        idempotent — the hook runs again after every refresh.
        """

    # --------------------------------------------------- index serialization
    #: Bump in a subclass whenever its serialized index layout changes; the
    #: version participates in :meth:`config_fingerprint`, so stale persisted
    #: entries become store misses instead of deserialization errors.
    INDEX_FORMAT_VERSION = 1

    def config_state(self) -> dict[str, Any]:
        """JSON-serializable constructor configuration of this searcher.

        Everything that changes what :meth:`_build_index` or search would
        compute must appear here — it is part of the persisted-index key.
        """
        return {}

    def config_fingerprint(self) -> str:
        """Stable hex digest of (class, index format version, configuration)."""
        payload = json.dumps(
            {
                "class": type(self).__name__,
                "format": self.INDEX_FORMAT_VERSION,
                "config": self.config_state(),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _index_state(self) -> IndexState:
        """Implementation hook: dump the built index as (metadata, arrays)."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Implementation hook: restore index structures dumped by ``_index_state``."""
        raise SearchError(
            f"{type(self).__name__} does not support index serialization"
        )

    def index_state(self) -> IndexState:
        """Dump the built index as a JSON-serializable dict plus numpy payloads.

        The returned pair round-trips through :meth:`load_index_state` to a
        searcher whose results are bit-identical to one freshly indexed on the
        same lake.  Requires :meth:`index` to have been called.
        """
        if not self.is_indexed:
            raise SearchError(
                f"{type(self).__name__}.index_state() called before index()"
            )
        return self._index_state()

    def load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> "TableUnionSearcher":
        """Restore a previously dumped index for ``lake`` without rebuilding it."""
        if lake.num_tables == 0:
            raise SearchError("cannot load an index for an empty data lake")
        self._load_index_state(lake, state, arrays)
        self._record_indexed_lake(lake)
        return self

    # ------------------------------------------------------- cascade prefilter
    def prefilter_table_vectors(self) -> "dict[str, np.ndarray] | None":
        """Per-table embedding vectors a cascade prefilter can project.

        Embedding-scored backends (Starmie/D3L/SANTOS) return one dense vector
        per indexed lake table — cheap aggregates of index entries they already
        hold — so the random-projection prefilter of
        :mod:`repro.search.cascade` can rank candidates without touching the
        exact scorer.  Backends without a natural embedding (the overlap
        searcher, the oracle) return ``None`` and the cascade falls back to
        the LSH bucket-probe prefilter.
        """
        return None

    def prefilter_query_vector(self, query_table: Table) -> np.ndarray:
        """Query-side counterpart of :meth:`prefilter_table_vectors`."""
        raise SearchError(
            f"{type(self).__name__} exposes no prefilter embeddings"
        )

    def prefilter_minhash_signatures(
        self, num_hashes: int, seed: int
    ) -> "dict[str, np.ndarray] | None":
        """Per-table MinHash signatures reusable by an LSH prefilter.

        A table-level signature is the elementwise minimum of its columns'
        signatures (MinHash of a union is the min of the MinHashes), so
        backends that already hold per-column signatures under the same hash
        family — the overlap searcher — can hand them over instead of making
        the prefilter re-hash every cell value.  ``None`` means the prefilter
        hashes the lake itself.
        """
        return None

    # ----------------------------------------------------------------- search
    @abc.abstractmethod
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        """Unionability score of ``lake_table`` with respect to ``query_table``."""

    def _score_candidate_names(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Shared narrow-scoring loop: exact-score exactly ``names``.

        The workhorse behind every backend's :meth:`score_candidates`
        override — per-table scores depend only on the query and that table's
        index entry, so scoring a candidate subset is the same arithmetic as
        :meth:`search` restricted to it (the query-side memo each backend
        keeps makes the per-candidate cost marginal).  Duplicate names are
        scored once; the query's own name is skipped exactly as in
        :meth:`search`; unknown names fail loudly — a prefilter proposing a
        table the index does not hold is a bug, not something to skip.
        """
        lake = self.lake
        scores: dict[str, float] = {}
        for name in dict.fromkeys(names):
            if name == query_table.name:
                continue
            if name not in lake:
                raise SearchError(
                    f"candidate table {name!r} is not in the indexed lake"
                )
            scores[name] = float(self._score_table(query_table, lake.get(name)))
        return scores

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Exact scores for just the candidate tables in ``names``.

        The narrow-scoring hook of the tiered query cascade
        (:class:`~repro.search.cascade.CascadeSearcher`): after an
        approximate prefilter prunes the lake down to a candidate set, only
        that set is exact-scored.  Scores are **bit-identical** to the ones
        :meth:`search` would assign — the cascade's exactness contract rests
        on it.

        The default implementation falls back to a full :meth:`search` and
        filters, so wrappers that override ``search`` wholesale stay correct
        without a dedicated narrow path; every built-in backend overrides
        this with :meth:`_score_candidate_names` (or better) so the cost is
        proportional to ``len(names)``, not the lake.
        """
        wanted = {name for name in names if name != query_table.name}
        missing = wanted - set(self.lake.table_names())
        if missing:
            raise SearchError(
                f"candidate table {sorted(missing)[0]!r} is not in the indexed lake"
            )
        hits = self.search(query_table, max(self.lake.num_tables, 1))
        return {hit.table_name: hit.score for hit in hits if hit.table_name in wanted}

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Return the top-``k`` unionable tables for ``query_table``.

        Tables are ranked by decreasing score; ties are broken by table name
        so rankings are deterministic.  A table with the same name as the
        query table is never returned (the paper's benchmarks keep the query
        outside the lake, but user lakes may not).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        scored = [
            (self._score_table(query_table, lake_table), lake_table.name)
            for lake_table in self.lake
            if lake_table.name != query_table.name
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            SearchResult(table_name=name, score=float(score), rank=rank)
            for rank, (score, name) in enumerate(scored[:k], start=1)
        ]

    def search_tables(self, query_table: Table, k: int) -> list[Table]:
        """Like :meth:`search` but returning the table objects directly."""
        return [self.lake.get(result.table_name) for result in self.search(query_table, k)]
