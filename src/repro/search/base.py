"""Common interface for table union search techniques."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import SearchError


@dataclass(frozen=True)
class SearchResult:
    """One ranked search hit: a data lake table and its unionability score."""

    table_name: str
    score: float
    rank: int


class TableUnionSearcher(abc.ABC):
    """Base class for top-k unionable table search.

    Lifecycle: construct, :meth:`index` a data lake once, then call
    :meth:`search` for each query table.  Implementations must not mutate the
    indexed lake.
    """

    def __init__(self) -> None:
        self._lake: DataLake | None = None

    # ------------------------------------------------------------------ index
    @abc.abstractmethod
    def _build_index(self, lake: DataLake) -> None:
        """Build implementation-specific index structures for ``lake``."""

    def index(self, lake: DataLake) -> "TableUnionSearcher":
        """Index ``lake`` for subsequent searches."""
        if lake.num_tables == 0:
            raise SearchError("cannot index an empty data lake")
        self._lake = lake
        self._build_index(lake)
        return self

    @property
    def lake(self) -> DataLake:
        """The indexed data lake."""
        if self._lake is None:
            raise SearchError(f"{type(self).__name__} used before index() was called")
        return self._lake

    @property
    def is_indexed(self) -> bool:
        """Whether :meth:`index` has been called."""
        return self._lake is not None

    # ----------------------------------------------------------------- search
    @abc.abstractmethod
    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        """Unionability score of ``lake_table`` with respect to ``query_table``."""

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Return the top-``k`` unionable tables for ``query_table``.

        Tables are ranked by decreasing score; ties are broken by table name
        so rankings are deterministic.  A table with the same name as the
        query table is never returned (the paper's benchmarks keep the query
        outside the lake, but user lakes may not).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        scored = [
            (self._score_table(query_table, lake_table), lake_table.name)
            for lake_table in self.lake
            if lake_table.name != query_table.name
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            SearchResult(table_name=name, score=float(score), rank=rank)
            for rank, (score, name) in enumerate(scored[:k], start=1)
        ]

    def search_tables(self, query_table: Table, k: int) -> list[Table]:
        """Like :meth:`search` but returning the table objects directly."""
        return [self.lake.get(result.table_name) for result in self.search(query_table, k)]
