"""Ground-truth oracle search.

The paper's diversification experiments (Sec. 6.4) isolate the diversification
stage from search quality by starting from the benchmark's labelled unionable
tables.  :class:`OracleSearcher` plays that role: it returns exactly the
ground-truth unionable tables for a query, ranked by value overlap so the
"top-k" prefix is still meaningful.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.api.registry import register_searcher
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import IndexState, TableUnionSearcher
from repro.search.overlap import column_token_set
from repro.utils.errors import SearchError


@register_searcher("oracle")
class OracleSearcher(TableUnionSearcher):
    """Returns the labelled unionable tables of each query from ground truth.

    Parameters
    ----------
    ground_truth:
        Mapping from query table name to the names of its unionable data lake
        tables (the benchmark generators produce this mapping).
    """

    def __init__(self, ground_truth: Mapping[str, Sequence[str]]) -> None:
        super().__init__()
        self._ground_truth = {
            query: list(tables) for query, tables in ground_truth.items()
        }

    def _build_index(self, lake: DataLake) -> None:
        missing = {
            table_name
            for tables in self._ground_truth.values()
            for table_name in tables
            if table_name not in lake
        }
        if missing:
            raise SearchError(
                f"ground truth references tables absent from the lake: {sorted(missing)[:5]}"
            )

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """The oracle has no materialised index — scores read the live lake —
        so a delta only needs the build-time validation re-run: removing a
        table that the ground truth still references must fail loudly rather
        than silently return shorter result lists."""
        self._build_index(self.lake)

    # -------------------------------------------------------- sharded builds
    #: Restoring an oracle "index" re-validates the ground truth, which
    #: references tables across the whole lake — a per-shard store entry
    #: would fail that validation, so shard handling bypasses the store.
    SHARD_LOCAL_INDEX = False

    def build_partial(self, shard: DataLake) -> "IndexState":
        """Per-shard partials carry only the ground truth.

        Build-time validation must see the *whole* lake (labelled tables land
        in arbitrary shards), so partial builds skip it; it re-runs in
        :meth:`_merge_partial_states` and :meth:`finalize_shard_group` — the
        oracle re-validation step of a sharded deployment.
        """
        if shard.num_tables == 0:
            raise SearchError("cannot build a partial index over an empty shard")
        self._lake = None
        self._indexed_table_fps = {}
        return self._index_state()

    def _load_partial_state(
        self, shard: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self._ground_truth = {
            query: list(tables) for query, tables in state["ground_truth"].items()
        }

    def _merge_partial_states(self, lake: DataLake, parts: list["IndexState"]) -> None:
        state, _ = parts[0]  # every partial carries the same ground truth
        self._ground_truth = {
            query: list(tables) for query, tables in state["ground_truth"].items()
        }
        self._build_index(lake)  # full-lake re-validation

    def finalize_shard_group(
        self, lake: DataLake, shard_searchers: "Sequence[TableUnionSearcher]"
    ) -> None:
        """Re-validate the ground truth against the full (possibly mutated) lake."""
        self._build_index(lake)

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        # The ground truth *is* the oracle's configuration: two oracles with
        # different labels must map to different persisted-index entries.
        digest = hashlib.sha256(
            json.dumps(self._ground_truth, sort_keys=True).encode()
        ).hexdigest()
        return {"ground_truth_digest": digest}

    def _index_state(self) -> IndexState:
        return {"ground_truth": self._ground_truth}, {}

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self._ground_truth = {
            query: list(tables) for query, tables in state["ground_truth"].items()
        }
        self._build_index(lake)  # re-run the referenced-tables validation

    def unionable_tables(self, query_name: str) -> list[str]:
        """Ground-truth unionable table names for ``query_name`` (empty if unknown)."""
        return list(self._ground_truth.get(query_name, []))

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Narrow exact scoring with the labelled-set shortcut: candidates
        outside the query's ground truth score 0.0 by definition, so only the
        labelled ones pay the token-set overlap arithmetic."""
        lake = self.lake
        labelled = set(self._ground_truth.get(query_table.name, []))
        scores: dict[str, float] = {}
        for name in dict.fromkeys(names):
            if name == query_table.name:
                continue
            if name not in lake:
                raise SearchError(
                    f"candidate table {name!r} is not in the indexed lake"
                )
            scores[name] = (
                float(self._score_table(query_table, lake.get(name)))
                if name in labelled
                else 0.0
            )
        return scores

    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        labelled = set(self._ground_truth.get(query_table.name, []))
        if lake_table.name not in labelled:
            return 0.0
        # Within the labelled set, rank by simple value overlap with the query
        # so that "top-k" remains a deterministic, meaningful prefix.
        overlap = 0.0
        for query_column in query_table.columns:
            query_tokens = column_token_set(query_table, query_column)
            if not query_tokens:
                continue
            best = 0.0
            for lake_column in lake_table.columns:
                lake_tokens = column_token_set(lake_table, lake_column)
                union = query_tokens | lake_tokens
                if union:
                    best = max(best, len(query_tokens & lake_tokens) / len(union))
            overlap += best
        columns = max(query_table.num_columns, 1)
        return 1.0 + overlap / columns
