"""MinHash signatures and LSH banding.

Value-overlap between columns is the classic unionability signal (Nargesian
et al. [37], Zhu et al. [58]).  Computing exact Jaccard overlap between every
column pair is quadratic in the number of columns of the lake, so — like the
original systems — the overlap searcher estimates Jaccard similarity with
MinHash signatures and prunes candidate pairs with an LSH banding index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.errors import SearchError
from repro.utils.rng import stable_hash

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _hash_token(token: str) -> int:
    """Stable 32-bit hash of a token."""
    return stable_hash(token) & _MAX_HASH


@dataclass(frozen=True)
class MinHashSignature:
    """A MinHash signature of a set of string tokens."""

    values: tuple[int, ...]

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimate Jaccard similarity from two signatures of equal length."""
        if len(self.values) != len(other.values):
            raise SearchError(
                f"cannot compare signatures of lengths {len(self.values)} and "
                f"{len(other.values)}"
            )
        if not self.values:
            return 0.0
        matches = sum(1 for a, b in zip(self.values, other.values) if a == b)
        return matches / len(self.values)


class MinHasher:
    """Generates MinHash signatures with a fixed family of hash functions."""

    def __init__(self, num_hashes: int = 64, *, seed: int = 7) -> None:
        if num_hashes <= 0:
            raise SearchError(f"num_hashes must be positive, got {num_hashes}")
        rng = np.random.default_rng(seed)
        self.num_hashes = num_hashes
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)

    def signature(self, tokens: Iterable[str]) -> MinHashSignature:
        """Compute the signature of a token set (empty sets get all-max values)."""
        hashes = {_hash_token(token) for token in tokens}
        if not hashes:
            return MinHashSignature(values=tuple([_MAX_HASH] * self.num_hashes))
        token_array = np.fromiter(hashes, dtype=np.int64, count=len(hashes))
        # (num_hashes, num_tokens) permuted values, take min per hash function.
        permuted = (
            self._a[:, None] * token_array[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME % _MAX_HASH
        return MinHashSignature(values=tuple(int(v) for v in permuted.min(axis=1)))


class MinHashLSHIndex:
    """LSH banding index over MinHash signatures.

    Signatures are split into ``num_bands`` bands; two signatures are candidate
    matches when any band hashes identically.  ``query`` returns candidate keys
    only — the caller re-scores them with exact or estimated Jaccard.
    """

    def __init__(self, num_hashes: int = 64, num_bands: int = 16, *, seed: int = 7) -> None:
        if num_hashes % num_bands != 0:
            raise SearchError(
                f"num_hashes ({num_hashes}) must be divisible by num_bands ({num_bands})"
            )
        self.hasher = MinHasher(num_hashes, seed=seed)
        self.num_bands = num_bands
        self.rows_per_band = num_hashes // num_bands
        self._buckets: list[dict[tuple[int, ...], set[str]]] = [
            {} for _ in range(num_bands)
        ]
        self._signatures: dict[str, MinHashSignature] = {}

    # ---------------------------------------------------------------- insert
    def _bands(self, signature: MinHashSignature) -> list[tuple[int, ...]]:
        values = signature.values
        return [
            tuple(values[band * self.rows_per_band : (band + 1) * self.rows_per_band])
            for band in range(self.num_bands)
        ]

    def add(self, key: str, tokens: Iterable[str]) -> MinHashSignature:
        """Add a keyed token set to the index and return its signature."""
        return self.add_signature(key, self.hasher.signature(tokens))

    def add_signature(self, key: str, signature: MinHashSignature) -> MinHashSignature:
        """Add a precomputed signature (used when restoring a persisted index)."""
        if key in self._signatures:
            raise SearchError(f"key {key!r} already present in the LSH index")
        if len(signature.values) != self.hasher.num_hashes:
            raise SearchError(
                f"signature length {len(signature.values)} does not match the "
                f"index's {self.hasher.num_hashes} hash functions"
            )
        self._signatures[key] = signature
        for band, band_values in enumerate(self._bands(signature)):
            self._buckets[band].setdefault(band_values, set()).add(key)
        return signature

    def remove(self, key: str) -> MinHashSignature:
        """Remove ``key`` from the index and return its signature.

        Empty band buckets are deleted so a long add/remove churn does not
        leak bucket entries.  Raises :class:`SearchError` for unknown keys.
        """
        try:
            signature = self._signatures.pop(key)
        except KeyError as exc:
            raise SearchError(f"key {key!r} not present in the LSH index") from exc
        for band, band_values in enumerate(self._bands(signature)):
            bucket = self._buckets[band].get(band_values)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._buckets[band][band_values]
        return signature

    def keys(self) -> list[str]:
        """Indexed keys in insertion order."""
        return list(self._signatures)

    def __contains__(self, key: str) -> bool:
        return key in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def signature_of(self, key: str) -> MinHashSignature:
        """Return the stored signature for ``key``."""
        try:
            return self._signatures[key]
        except KeyError as exc:
            raise SearchError(f"key {key!r} not present in the LSH index") from exc

    # ----------------------------------------------------------------- query
    def query(self, tokens: Iterable[str]) -> set[str]:
        """Return candidate keys sharing at least one LSH band with ``tokens``."""
        signature = self.hasher.signature(tokens)
        return self.query_signature(signature)

    def query_signature(self, signature: MinHashSignature) -> set[str]:
        """Candidate keys for a precomputed signature."""
        candidates: set[str] = set()
        for band, band_values in enumerate(self._bands(signature)):
            candidates |= self._buckets[band].get(band_values, set())
        return candidates

    def estimated_similarities(
        self, tokens: Iterable[str], candidates: Sequence[str] | None = None
    ) -> dict[str, float]:
        """Estimated Jaccard similarity of ``tokens`` to candidate keys."""
        signature = self.hasher.signature(tokens)
        keys = candidates if candidates is not None else self.query_signature(signature)
        return {key: signature.jaccard(self.signature_of(key)) for key in keys}
