"""D3L-style multi-signal table search (Bogatu et al. [2] stand-in).

D3L aggregates several column-level relatedness signals — header names, value
overlap, string formats (regular expressions), word embeddings and numeric
value distributions — into one table score.  This implementation reproduces
those five signal families over the library's own substrates.
"""

from __future__ import annotations

import re
import threading
from collections import Counter
from typing import Iterable, Mapping

import numpy as np

from repro.api.registry import register_searcher
from repro.datalake.lake import DataLake
from repro.datalake.profile import ColumnProfile, profile_column
from repro.datalake.table import Table
from repro.embeddings.word import FastTextLikeModel
from repro.search.base import IndexState, TableUnionSearcher, merge_shard_table_maps
from repro.search.overlap import column_token_set
from repro.utils.errors import SearchError
from repro.utils.text import is_null, normalize_text

_FORMAT_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("empty", re.compile(r"^\s*$")),
    ("integer", re.compile(r"^[+-]?\d+$")),
    ("decimal", re.compile(r"^[+-]?\d*\.\d+$")),
    ("date", re.compile(r"^\d{1,4}[-/]\d{1,2}[-/]\d{1,4}$")),
    ("phone", re.compile(r"^[\d\s()+-]{7,}$")),
    ("alpha", re.compile(r"^[A-Za-z\s]+$")),
    ("alnum", re.compile(r"^[A-Za-z0-9\s]+$")),
)


def format_histogram(values: list[object]) -> Counter[str]:
    """Histogram of coarse string formats of a column's values."""
    histogram: Counter[str] = Counter()
    for value in values:
        if is_null(value):
            continue
        text = str(value).strip()
        for name, pattern in _FORMAT_PATTERNS:
            if pattern.match(text):
                histogram[name] += 1
                break
        else:
            histogram["other"] += 1
    return histogram


def _histogram_similarity(first: Counter[str], second: Counter[str]) -> float:
    """Cosine similarity between two format histograms."""
    if not first or not second:
        return 0.0
    keys = set(first) | set(second)
    a = np.array([first.get(key, 0) for key in keys], dtype=float)
    b = np.array([second.get(key, 0) for key in keys], dtype=float)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    return float(a @ b / denom) if denom > 0 else 0.0


def _name_similarity(first: str, second: str) -> float:
    """Jaccard similarity between the token sets of two column headers."""
    tokens_first = set(normalize_text(first).split())
    tokens_second = set(normalize_text(second).split())
    if not tokens_first or not tokens_second:
        return 0.0
    return len(tokens_first & tokens_second) / len(tokens_first | tokens_second)


def _distribution_similarity(first: ColumnProfile, second: ColumnProfile) -> float:
    """Similarity of two numeric columns' value distributions (mean/std overlap)."""
    if not (first.is_numeric and second.is_numeric):
        return 0.0
    if first.mean is None or second.mean is None:
        return 0.0
    spread = max(first.std or 0.0, second.std or 0.0, 1e-9)
    distance = abs(first.mean - second.mean) / spread
    return float(np.exp(-distance))


@register_searcher("d3l")
class D3LSearcher(TableUnionSearcher):
    """Aggregates name/value/format/embedding/distribution column signals.

    The table score is the mean over query columns of the best aggregated
    column-pair score achieved by any candidate column, which matches how D3L
    composes per-column evidence into table-level relatedness.
    """

    def __init__(self, *, signal_weights: dict[str, float] | None = None) -> None:
        super().__init__()
        default_weights = {
            "name": 1.0,
            "values": 1.0,
            "format": 1.0,
            "embedding": 1.0,
            "distribution": 1.0,
        }
        self.signal_weights = dict(default_weights)
        if signal_weights:
            unknown = set(signal_weights) - set(default_weights)
            if unknown:
                raise ValueError(f"unknown D3L signal weights: {sorted(unknown)}")
            self.signal_weights.update(signal_weights)
        self._word_model = FastTextLikeModel()
        self._profiles: dict[str, dict[str, ColumnProfile]] = {}
        self._token_sets: dict[str, dict[str, set[str]]] = {}
        self._formats: dict[str, dict[str, Counter[str]]] = {}
        self._embeddings: dict[str, dict[str, np.ndarray]] = {}
        self._query_memo = threading.local()

    # ------------------------------------------------------------------ index
    def _column_embedding(self, table: Table, column: str) -> np.ndarray:
        values = [
            str(value) for value in table.column_values(column) if not is_null(value)
        ][:64]
        return self._word_model.encode_text(" ".join([column, *values]))

    def _index_table(self, table: Table) -> None:
        self._profiles[table.name] = {}
        self._token_sets[table.name] = {}
        self._formats[table.name] = {}
        self._embeddings[table.name] = {}
        for column in table.columns:
            self._profiles[table.name][column] = profile_column(table, column)
            self._token_sets[table.name][column] = column_token_set(table, column)
            self._formats[table.name][column] = format_histogram(
                table.column_values(column)
            )
            self._embeddings[table.name][column] = self._column_embedding(
                table, column
            )

    def _build_index(self, lake: DataLake) -> None:
        self._profiles, self._token_sets = {}, {}
        self._formats, self._embeddings = {}, {}
        for table in lake:
            self._index_table(table)

    def _apply_index_delta(self, added: list[Table], removed: list[str]) -> None:
        """Every D3L signal is derived per (table, column) from a stateless
        substrate, so a delta only touches the mutated tables' entries and is
        bit-identical to a rebuild by construction."""
        for name in removed:
            self._profiles.pop(name, None)
            self._token_sets.pop(name, None)
            self._formats.pop(name, None)
            self._embeddings.pop(name, None)
        for table in added:
            self._index_table(table)

    # ----------------------------------------------------- index serialization
    def config_state(self) -> dict:
        return {"signal_weights": self.signal_weights}

    def _index_state(self) -> IndexState:
        tables: list[dict] = []
        vectors: list[np.ndarray] = []
        profiles: dict[str, dict[str, dict]] = {}
        token_sets: dict[str, dict[str, list[str]]] = {}
        formats: dict[str, dict[str, dict[str, int]]] = {}
        for name, columns in self._embeddings.items():
            tables.append({"name": name, "columns": list(columns)})
            vectors.extend(columns.values())
            profiles[name] = {
                column: profile.to_state()
                for column, profile in self._profiles[name].items()
            }
            token_sets[name] = {
                column: sorted(tokens)
                for column, tokens in self._token_sets[name].items()
            }
            formats[name] = {
                column: dict(histogram)
                for column, histogram in self._formats[name].items()
            }
        dimension = self._word_model.info.dimension
        matrix = (
            np.vstack(vectors)
            if vectors
            else np.zeros((0, dimension), dtype=np.float64)
        )
        state = {
            "tables": tables,
            "profiles": profiles,
            "token_sets": token_sets,
            "formats": formats,
        }
        return state, {"embeddings": matrix}

    @staticmethod
    def _decode_state(
        state: dict, arrays: Mapping[str, np.ndarray]
    ) -> dict[str, tuple[dict, dict, dict, dict]]:
        """Rehydrate one index state as per-table (profiles, tokens, formats, embeddings)."""
        matrix = np.asarray(arrays["embeddings"], dtype=np.float64)
        expected = sum(len(entry["columns"]) for entry in state["tables"])
        if expected != matrix.shape[0]:
            raise SearchError(
                f"D3L index state lists {expected} columns but the embedding "
                f"matrix has {matrix.shape[0]} rows"
            )
        decoded: dict[str, tuple[dict, dict, dict, dict]] = {}
        row = 0
        for entry in state["tables"]:
            name, columns = entry["name"], entry["columns"]
            profiles = {
                column: ColumnProfile.from_state(state["profiles"][name][column])
                for column in columns
            }
            token_sets = {
                column: set(state["token_sets"][name][column]) for column in columns
            }
            formats = {
                column: Counter(
                    {
                        fmt: int(count)
                        for fmt, count in state["formats"][name][column].items()
                    }
                )
                for column in columns
            }
            embeddings = {
                column: matrix[row + offset] for offset, column in enumerate(columns)
            }
            row += len(columns)
            decoded[name] = (profiles, token_sets, formats, embeddings)
        return decoded

    def _install_entries(
        self, entries: Mapping[str, tuple[dict, dict, dict, dict]]
    ) -> None:
        """Adopt decoded per-table signal entries as the built index."""
        self._profiles = {name: entry[0] for name, entry in entries.items()}
        self._token_sets = {name: entry[1] for name, entry in entries.items()}
        self._formats = {name: entry[2] for name, entry in entries.items()}
        self._embeddings = {name: entry[3] for name, entry in entries.items()}

    def _load_index_state(
        self, lake: DataLake, state: dict, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self._install_entries(self._decode_state(state, arrays))

    def _merge_partial_states(self, lake: DataLake, parts: list[IndexState]) -> None:
        """Per-table signal union: every D3L signal is shard-local, so the
        merged index is the (lake-ordered) union of the shard partials and is
        bit-identical to a monolithic build by construction."""
        self._install_entries(
            merge_shard_table_maps(
                lake,
                (self._decode_state(state, arrays) for state, arrays in parts),
                what="D3L partial merge",
            )
        )

    # ---------------------------------------------------------------- scoring
    def _query_column_signals(
        self, query_table: Table
    ) -> dict[str, tuple[ColumnProfile, set[str], Counter[str], np.ndarray]]:
        """Query-side signal inputs, computed once per query table.

        The base class scores the query against every lake table; without this
        one-entry thread-local memo the query columns' profiles, token sets,
        format histograms and embeddings would be recomputed once per
        (lake table, lake column) pair.  The memo is keyed by object identity
        plus the table's (cached) content fingerprint — the identity check
        keeps the per-pair cost O(1) while in-place mutation via
        ``append_rows`` still invalidates the entry.
        """
        cached = getattr(self._query_memo, "entry", None)
        if (
            cached is not None
            and cached[0] is query_table
            and cached[1] == query_table.content_fingerprint()
        ):
            return cached[2]
        signals = {
            column: (
                profile_column(query_table, column),
                column_token_set(query_table, column),
                format_histogram(query_table.column_values(column)),
                self._column_embedding(query_table, column),
            )
            for column in query_table.columns
        }
        self._query_memo.entry = (
            query_table,
            query_table.content_fingerprint(),
            signals,
        )
        return signals

    def _column_pair_score(
        self,
        query_table: Table,
        query_column: str,
        lake_table_name: str,
        lake_column: str,
    ) -> float:
        query_profile, query_tokens, query_formats, query_embedding = (
            self._query_column_signals(query_table)[query_column]
        )
        lake_profile = self._profiles[lake_table_name][lake_column]

        lake_tokens = self._token_sets[lake_table_name][lake_column]
        union = query_tokens | lake_tokens
        value_overlap = len(query_tokens & lake_tokens) / len(union) if union else 0.0

        signals = {
            "name": _name_similarity(query_column, lake_column),
            "values": value_overlap,
            "format": _histogram_similarity(
                query_formats,
                self._formats[lake_table_name][lake_column],
            ),
            "embedding": float(
                query_embedding @ self._embeddings[lake_table_name][lake_column]
            ),
            "distribution": _distribution_similarity(query_profile, lake_profile),
        }
        total_weight = sum(self.signal_weights.values())
        weighted = sum(
            self.signal_weights[name] * max(0.0, value) for name, value in signals.items()
        )
        return weighted / total_weight if total_weight > 0 else 0.0

    # ------------------------------------------------------- cascade prefilter
    def _mean_embedding(self, vectors: list[np.ndarray]) -> np.ndarray:
        if not vectors:
            return np.zeros(self._word_model.info.dimension, dtype=np.float64)
        return np.mean(np.vstack(vectors), axis=0)

    def prefilter_table_vectors(self) -> dict[str, np.ndarray] | None:
        """Per-table mean of the indexed column word-embeddings — the cheap
        stand-in for the embedding term of the aggregated signal."""
        if not self._embeddings:
            return None
        return {
            name: self._mean_embedding(list(columns.values()))
            for name, columns in self._embeddings.items()
        }

    def prefilter_query_vector(self, query_table: Table) -> np.ndarray:
        signals = self._query_column_signals(query_table)
        return self._mean_embedding([signal[3] for signal in signals.values()])

    def score_candidates(
        self, query_table: Table, names: Iterable[str]
    ) -> dict[str, float]:
        """Narrow exact scoring: the query-side signal inputs are memoised, so
        each candidate costs only its own column-pair comparisons."""
        return self._score_candidate_names(query_table, names)

    def _score_table(self, query_table: Table, lake_table: Table) -> float:
        if query_table.num_columns == 0 or lake_table.num_columns == 0:
            return 0.0
        total = 0.0
        for query_column in query_table.columns:
            best = max(
                (
                    self._column_pair_score(
                        query_table, query_column, lake_table.name, lake_column
                    )
                    for lake_column in lake_table.columns
                ),
                default=0.0,
            )
            total += best
        return total / query_table.num_columns
