"""The end-to-end DUST pipeline (paper Algorithm 1 and Fig. 3).

Given a query table, a data lake and a budget ``k``:

1. **SearchTables** — retrieve the unionable data lake tables with any
   :class:`~repro.search.base.TableUnionSearcher`.
2. **AlignColumns** — align the discovered tables' columns to the query
   columns with the holistic aligner and outer-union them into unionable
   tuples expressed over the query schema.
3. **EmbedTuples** — serialize and embed every query and data lake tuple with
   the (fine-tuned) tuple encoder.
4. **DiversifyTuples** — run DUST's diversification (Algorithm 2) and return
   the ``k`` diverse unionable tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.alignment.holistic import HolisticColumnAligner
from repro.alignment.types import ColumnAlignment
from repro.alignment.union import aligned_tuples_from_tables, query_tuples
from repro.core.config import PipelineConfig
from repro.core.diversifier import DustDiversifier
from repro.core.metrics import diversity_scores
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.diversify.base import DiversificationRequest
from repro.embeddings.base import ColumnEncoder, TupleEncoder
from repro.embeddings.serialization import AlignedTuple, serialize_aligned_tuple
from repro.search.base import SearchResult, TableUnionSearcher
from repro.utils.errors import ConfigurationError, DataLakeError
from repro.utils.timing import Timer
from repro.vectorops import DistanceContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.serving.service import QueryService


@dataclass
class DustResult:
    """Everything produced by one end-to-end DUST run."""

    query_table_name: str
    search_results: list[SearchResult] = field(default_factory=list)
    alignment: ColumnAlignment | None = None
    selected_tuples: list[AlignedTuple] = field(default_factory=list)
    selected_indices: list[int] = field(default_factory=list)
    selected_embeddings: np.ndarray | None = None
    query_embeddings: np.ndarray | None = None
    num_candidate_tuples: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    #: The per-run distance cache; kept so post-hoc analyses (``diversity()``,
    #: re-ranking sweeps) reuse the matrices computed during the run.
    distance_context: DistanceContext | None = field(default=None, repr=False)

    def as_table(self, query_table: Table, *, name: str | None = None) -> Table:
        """Materialise the selected tuples as a table over the query schema."""
        rows = [aligned.as_row(query_table.columns) for aligned in self.selected_tuples]
        return Table(
            name=name or f"{query_table.name}__dust_top_{len(rows)}",
            columns=list(query_table.columns),
            rows=rows,
        )

    def diversity(self, *, metric: str = "cosine") -> dict[str, float]:
        """Average / Min Diversity of the selected tuples against the query.

        Served through the run's :class:`~repro.vectorops.DistanceContext`:
        blocks the run materialised are reused, anything else is computed as
        a narrow block over just the selected rows.
        """
        if self.selected_embeddings is None or self.query_embeddings is None:
            raise ConfigurationError("diversity() called on an incomplete DustResult")
        return diversity_scores(
            self.query_embeddings,
            self.selected_embeddings,
            metric=metric,
            context=self.distance_context,
            selected_indices=self.selected_indices if self.selected_indices else None,
        )


class DustPipeline:
    """Wires search, alignment, embedding and diversification together."""

    def __init__(
        self,
        searcher: TableUnionSearcher,
        column_encoder: ColumnEncoder,
        tuple_encoder: TupleEncoder,
        *,
        config: PipelineConfig | None = None,
        diversifier: DustDiversifier | None = None,
    ) -> None:
        self.searcher = searcher
        self.column_encoder = column_encoder
        self.tuple_encoder = tuple_encoder
        self.config = config or PipelineConfig()
        self.diversifier = diversifier or DustDiversifier(self.config.dust)
        self.aligner = HolisticColumnAligner(column_encoder)

    # -------------------------------------------------------------------- run
    def index(self, lake: DataLake) -> "DustPipeline":
        """Index ``lake`` for searching (delegates to the searcher)."""
        self.searcher.index(lake)
        return self

    def run(
        self,
        query_table: Table,
        *,
        k: int | None = None,
        keep_distance_context: bool = True,
        search_results: Sequence[SearchResult] | None = None,
    ) -> DustResult:
        """Run Algorithm 1 for ``query_table`` and return ``k`` diverse tuples.

        ``keep_distance_context`` controls whether the run's cached distance
        matrices (up to O(s²) floats) stay on the result for post-hoc
        analyses; :meth:`run_many` turns it off so multi-query workloads
        don't accumulate one square matrix per retained result
        (``DustResult.diversity()`` works either way).

        ``search_results`` supplies precomputed step-1 rankings (e.g. from a
        :class:`~repro.serving.QueryService`); when given, the searcher is
        only used to resolve table names against the indexed lake.
        """
        config = self.config
        k = k if k is not None else config.k
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        if query_table.num_rows < config.min_query_rows:
            raise DataLakeError(
                f"query table {query_table.name!r} has {query_table.num_rows} rows; "
                f"the pipeline requires at least {config.min_query_rows}"
            )

        result = DustResult(query_table_name=query_table.name)
        timer = Timer()

        # Step 1: table union search (Algorithm 1, line 3).
        with timer.measure():
            if search_results is not None:
                result.search_results = list(search_results)
            else:
                result.search_results = self.searcher.search(
                    query_table, config.num_search_tables
                )
        result.timings["search"] = timer.laps[-1]
        lake_tables = [
            self.searcher.lake.get(hit.table_name) for hit in result.search_results
        ]
        if not lake_tables:
            raise DataLakeError(
                f"search returned no unionable tables for query {query_table.name!r}"
            )

        # Step 2: column alignment + outer union (Algorithm 1, line 5).
        with timer.measure():
            result.alignment = self.aligner.align(query_table, lake_tables)
            candidates = aligned_tuples_from_tables(result.alignment, lake_tables)
        result.timings["alignment"] = timer.laps[-1]
        result.num_candidate_tuples = len(candidates)
        if not candidates:
            raise DataLakeError(
                f"no unionable tuples could be formed for query {query_table.name!r}; "
                "the discovered tables share no aligned columns with the query"
            )

        # Step 3: tuple embedding (Algorithm 1, line 7).
        with timer.measure():
            query_rows = query_tuples(query_table)
            query_texts = [
                serialize_aligned_tuple(row, query_table.columns) for row in query_rows
            ]
            candidate_texts = [
                serialize_aligned_tuple(row, query_table.columns) for row in candidates
            ]
            result.query_embeddings = self.tuple_encoder.encode_many(query_texts)
            candidate_embeddings = self.tuple_encoder.encode_many(candidate_texts)
        result.timings["embedding"] = timer.laps[-1]

        # Step 4: diversification (Algorithm 1, line 8 / Algorithm 2).  One
        # DistanceContext per run serves every stage of Algorithm 2 and stays
        # on the result for post-hoc metrics.
        with timer.measure():
            effective_k = min(k, len(candidates))
            result.distance_context = DistanceContext(
                result.query_embeddings,
                candidate_embeddings,
                metric=self.config.dust.metric,
            )
            request = DiversificationRequest(
                query_embeddings=result.query_embeddings,
                candidate_embeddings=candidate_embeddings,
                k=effective_k,
                metric=self.config.dust.metric,
                context=result.distance_context,
            )
            table_ids = [candidate.source_table for candidate in candidates]
            selected_indices = self.diversifier.select(request, table_ids=table_ids)
        result.timings["diversification"] = timer.laps[-1]

        result.selected_indices = [int(index) for index in selected_indices]
        result.selected_tuples = [candidates[index] for index in selected_indices]
        result.selected_embeddings = candidate_embeddings[
            np.asarray(selected_indices, dtype=int)
        ]
        result.timings["total"] = sum(result.timings.values())
        if not keep_distance_context:
            result.distance_context = None
        return result

    def run_many(
        self,
        query_tables: Sequence[Table],
        *,
        k: int | None = None,
        service: "QueryService | None" = None,
    ) -> list[DustResult]:
        """Run Algorithm 1 for several query tables against one indexed lake.

        The searcher's lake-side index is built once (by :meth:`index`) and
        reused across queries; each query gets its own
        :class:`~repro.vectorops.DistanceContext` exactly as :meth:`run`
        creates it, so multi-query workloads pay the lake indexing cost once
        and the per-query distance cost once.  The per-query contexts are
        released after each run so retained results stay small.

        ``service`` accepts a prewarmed :class:`~repro.serving.QueryService`
        instead of a raw indexed searcher: step-1 rankings for the whole
        workload are retrieved up front in parallel (and possibly from the
        service's cache), the pipeline adopts the service's searcher, and the
        per-query pipeline stages run on the precomputed rankings.  Served
        selections are identical to the direct path.
        """
        if service is not None:
            if not service.is_warm:
                raise ConfigurationError(
                    "run_many() received a QueryService that has not been "
                    "warmed; call service.warm(lake) first"
                )
            self.searcher = service.searcher
            batched = service.search_many(
                query_tables, self.config.num_search_tables
            )
            return [
                self.run(
                    query_table,
                    k=k,
                    keep_distance_context=False,
                    search_results=search_results,
                )
                for query_table, search_results in zip(query_tables, batched)
            ]
        if not self.searcher.is_indexed:
            raise ConfigurationError(
                "run_many() called before index(); call pipeline.index(lake) first"
            )
        return [
            self.run(query_table, k=k, keep_distance_context=False)
            for query_table in query_tables
        ]
