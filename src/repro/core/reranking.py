"""Re-ranking candidate diverse tuples against the query (paper Sec. 5.3).

Each candidate data lake tuple receives a *rank score*: its minimum distance
to any query tuple.  Candidates are sorted by decreasing rank score so the
top-ranked tuple is the one farthest from everything already in the query
table; ties are broken by the highest *average* distance to the query tuples
(Example 5 / Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import DiversificationError


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate tuple with its re-ranking scores."""

    candidate_index: int
    rank_score: float
    tie_breaking_score: float


def rank_candidates_against_query(
    candidate_embeddings: np.ndarray,
    query_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
    distances: np.ndarray | None = None,
) -> list[RankedCandidate]:
    """Rank candidates by min distance to the query (avg distance breaks ties).

    When there are no query tuples, every candidate gets rank score 0 and the
    original order is preserved — the caller then relies purely on the
    clustering stage for diversity.  ``distances`` optionally supplies the
    precomputed ``(candidates, queries)`` matrix (typically a
    :meth:`~repro.vectorops.DistanceContext.to_query` view) so no distance is
    recomputed.
    """
    candidates = np.atleast_2d(np.asarray(candidate_embeddings, dtype=np.float64))
    query = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
    if candidates.shape[0] == 0:
        raise DiversificationError("rank_candidates_against_query received no candidates")

    if query.size == 0 or query.shape[0] == 0:
        return [
            RankedCandidate(candidate_index=index, rank_score=0.0, tie_breaking_score=0.0)
            for index in range(candidates.shape[0])
        ]

    if distances is None:
        distances = pairwise_distance_matrix(candidates, query, metric=metric)
    elif distances.shape != (candidates.shape[0], query.shape[0]):
        raise DiversificationError(
            f"distances has shape {distances.shape}; expected "
            f"({candidates.shape[0]}, {query.shape[0]})"
        )
    rank_scores = distances.min(axis=1)
    tie_breaking = distances.mean(axis=1)

    order = sorted(
        range(candidates.shape[0]),
        key=lambda index: (-rank_scores[index], -tie_breaking[index], index),
    )
    return [
        RankedCandidate(
            candidate_index=index,
            rank_score=float(rank_scores[index]),
            tie_breaking_score=float(tie_breaking[index]),
        )
        for index in order
    ]


def top_k_candidates(ranked: list[RankedCandidate], k: int) -> list[int]:
    """Return the candidate indices of the ``k`` best-ranked candidates."""
    if k <= 0:
        raise DiversificationError(f"k must be positive, got {k}")
    return [candidate.candidate_index for candidate in ranked[:k]]
