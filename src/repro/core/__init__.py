"""DUST core: the paper's primary contribution.

* :class:`DustDiversifier` — Algorithm 2 (prune → cluster → re-rank).
* :class:`DustPipeline` — Algorithm 1 (search → align → embed → diversify).
* Diversity evaluation metrics — Average Diversity (Eq. 1) and Min Diversity
  (Eq. 2).
"""

from repro.core.config import DustConfig, PipelineConfig
from repro.core.metrics import average_diversity, min_diversity, diversity_scores
from repro.core.pruning import prune_tuples, prune_by_table
from repro.core.reranking import rank_candidates_against_query, RankedCandidate
from repro.core.diversifier import DustDiversifier
from repro.core.pipeline import DustPipeline, DustResult

__all__ = [
    "DustConfig",
    "PipelineConfig",
    "average_diversity",
    "min_diversity",
    "diversity_scores",
    "prune_tuples",
    "prune_by_table",
    "rank_candidates_against_query",
    "RankedCandidate",
    "DustDiversifier",
    "DustPipeline",
    "DustResult",
]
