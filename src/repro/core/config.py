"""Configuration objects for the DUST diversifier and end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.agglomerative import SUPPORTED_LINKAGE
from repro.cluster.distance import DISTANCE_FUNCTIONS
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class DustConfig:
    """Parameters of DUST's tuple diversification (Algorithm 2).

    Attributes
    ----------
    candidate_multiplier:
        The ``p`` parameter: the clustering step produces ``k * p`` candidate
        clusters so the re-ranking step has more than ``k`` diverse candidates
        to choose from.  The paper selects ``p = 2`` (Appendix A.2.2).
    prune_limit:
        The ``s`` parameter: maximum number of data lake tuples kept by the
        pre-clustering pruning step (2 500 in the paper's effectiveness
        experiments, Sec. 6.4.3).  ``None`` disables pruning.
    metric:
        Distance metric used for pruning, medoid selection and re-ranking
        (cosine in the paper).
    linkage, cluster_metric:
        Hierarchical-clustering configuration for the candidate clustering.
    """

    candidate_multiplier: int = 2
    prune_limit: int | None = 2500
    metric: str = "cosine"
    linkage: str = "average"
    cluster_metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.candidate_multiplier < 1:
            raise ConfigurationError(
                f"candidate_multiplier (p) must be >= 1, got {self.candidate_multiplier}"
            )
        if self.prune_limit is not None and self.prune_limit <= 0:
            raise ConfigurationError(
                f"prune_limit (s) must be positive or None, got {self.prune_limit}"
            )
        if self.metric not in DISTANCE_FUNCTIONS:
            raise ConfigurationError(
                f"metric must be one of {sorted(DISTANCE_FUNCTIONS)}, got {self.metric!r}"
            )
        if self.linkage not in SUPPORTED_LINKAGE:
            raise ConfigurationError(
                f"linkage must be one of {sorted(SUPPORTED_LINKAGE)}, got {self.linkage!r}"
            )
        if self.cluster_metric not in DISTANCE_FUNCTIONS:
            raise ConfigurationError(
                f"cluster_metric must be one of {sorted(DISTANCE_FUNCTIONS)}, "
                f"got {self.cluster_metric!r}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """Parameters of the end-to-end DUST pipeline (Algorithm 1).

    Attributes
    ----------
    num_search_tables:
        How many unionable tables the union-search stage retrieves before
        alignment (the paper unions the top search results).
    k:
        Number of diverse tuples to output.
    dust:
        Configuration of the diversification stage.
    min_query_rows:
        Query tables with fewer rows are rejected (3 in the paper's
        preprocessing).
    """

    num_search_tables: int = 10
    k: int = 30
    dust: DustConfig = DustConfig()
    min_query_rows: int = 3

    def __post_init__(self) -> None:
        if self.num_search_tables <= 0:
            raise ConfigurationError(
                f"num_search_tables must be positive, got {self.num_search_tables}"
            )
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.min_query_rows < 0:
            raise ConfigurationError(
                f"min_query_rows must be non-negative, got {self.min_query_rows}"
            )
