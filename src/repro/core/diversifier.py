"""DUST's tuple diversification algorithm (paper Algorithm 2).

Given embeddings of the query tuples and of the unionable data lake tuples:

1. **Prune** the data lake tuples to at most ``s`` candidates, keeping each
   table's tuples farthest from the table's mean embedding (Sec. 5.1).
2. **Cluster** the surviving tuples into ``k * p`` clusters with hierarchical
   clustering and take each cluster's medoid as a candidate diverse tuple
   (Sec. 5.2).
3. **Re-rank** the candidate medoids by their minimum distance to the query
   tuples, breaking ties with the average distance, and return the top ``k``
   (Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.api.registry import register_diversifier
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.medoids import cluster_medoids
from repro.core.config import DustConfig
from repro.core.pruning import prune_by_table
from repro.core.reranking import rank_candidates_against_query, top_k_candidates
from repro.diversify.base import DiversificationRequest, Diversifier
from repro.vectorops import DistanceContext


@dataclass
class DustSelectionTrace:
    """Intermediate artefacts of one DUST diversification run (for analysis)."""

    pruned_indices: list[int] = field(default_factory=list)
    medoid_indices: list[int] = field(default_factory=list)
    selected_indices: list[int] = field(default_factory=list)


@register_diversifier("dust")
class DustDiversifier(Diversifier):
    """Clustering-based diversification with query-aware re-ranking."""

    name = "dust"

    def __init__(self, config: DustConfig | None = None) -> None:
        self.config = config or DustConfig()
        self.last_trace: DustSelectionTrace | None = None

    # ------------------------------------------------------------------ steps
    def _prune(
        self,
        embeddings: np.ndarray,
        table_ids: Sequence[object] | None,
    ) -> list[int]:
        limit = self.config.prune_limit
        if limit is None or embeddings.shape[0] <= limit:
            return list(range(embeddings.shape[0]))
        ids = list(table_ids) if table_ids is not None else [0] * embeddings.shape[0]
        return prune_by_table(embeddings, ids, limit, metric=self.config.metric)

    def _cluster_candidates(
        self, context: DistanceContext, k: int
    ) -> list[int]:
        embeddings = context.candidates.data
        num_clusters = min(k * self.config.candidate_multiplier, embeddings.shape[0])
        clustering = AgglomerativeClustering(
            linkage=self.config.linkage, metric=self.config.cluster_metric
        )
        result = clustering.cluster(
            embeddings,
            num_clusters,
            precomputed_distances=context.candidate_distances(self.config.cluster_metric),
        )
        # Serve medoids from the cached square when the metrics coincide;
        # otherwise the per-cluster sub-matrices are cheaper than a second
        # full square (cluster sizes are ~s/(k*p)).
        medoid_distances = (
            context.candidate_distances(self.config.metric)
            if context.is_cached(self.config.metric)
            else None
        )
        return cluster_medoids(
            embeddings,
            result.labels,
            metric=self.config.metric,
            distances=medoid_distances,
        )

    # ------------------------------------------------------------------ select
    def select(
        self,
        request: DiversificationRequest,
        *,
        table_ids: Sequence[object] | None = None,
    ) -> list[int]:
        """Select ``k`` diverse candidate indices.

        ``table_ids`` optionally identifies the source table of each candidate
        so the pruning step can compute per-table mean embeddings; without it
        all candidates are treated as one table.

        Every distance used after pruning — clustering, medoid extraction,
        re-ranking and the k-shortfall fallback — is served by one
        :class:`~repro.vectorops.DistanceContext` narrowed to the pruned
        candidate set, so each block is computed exactly once per metric.
        """
        candidates = request.candidate_embeddings
        trace = DustSelectionTrace()

        # Step 1: prune (Algorithm 2, line 2).
        pruned_indices = self._prune(candidates, table_ids)
        trace.pruned_indices = pruned_indices
        context = request.distance_context()
        if pruned_indices == list(range(candidates.shape[0])):
            # Pruning kept everything in order: work on the request's own
            # context so the matrices it materialises stay shared (e.g. with
            # DustResult.diversity() and other methods on the same request).
            pruned_context = context
        else:
            pruned_context = context.subset(pruned_indices)
        pruned = pruned_context.candidates.data

        # Step 2: cluster into k*p clusters and keep each cluster's medoid
        # (Algorithm 2, line 4).
        medoid_local = self._cluster_candidates(pruned_context, request.k)
        medoid_indices = [pruned_indices[index] for index in medoid_local]
        trace.medoid_indices = medoid_indices

        # Step 3: re-rank medoids against the query tuples and keep the top k
        # (Algorithm 2, lines 6-13).
        medoid_embeddings = candidates[np.asarray(medoid_indices, dtype=int)]
        ranked = rank_candidates_against_query(
            medoid_embeddings,
            request.query_embeddings,
            metric=request.metric,
            distances=pruned_context.to_query(medoid_local, metric=request.metric),
        )
        selected_local = top_k_candidates(ranked, min(request.k, len(medoid_indices)))
        selected = [medoid_indices[index] for index in selected_local]

        # When constraints or tiny candidate sets leave fewer medoids than k,
        # fill the remainder with the pruned candidates farthest from the query
        # so the contract of returning exactly k tuples holds.
        if len(selected) < request.k:
            chosen = set(selected)
            fallback_ranked = rank_candidates_against_query(
                pruned,
                request.query_embeddings,
                metric=request.metric,
                distances=pruned_context.to_query(metric=request.metric),
            )
            for candidate in fallback_ranked:
                original = pruned_indices[candidate.candidate_index]
                if original not in chosen:
                    selected.append(original)
                    chosen.add(original)
                if len(selected) == request.k:
                    break

        trace.selected_indices = selected
        self.last_trace = trace
        return self._validate_selection(request, selected)
