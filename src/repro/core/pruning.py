"""Pre-clustering pruning of candidate data lake tuples (paper Sec. 5.1).

Clustering tens of thousands of tuples is the expensive part of Algorithm 2,
so DUST first ranks each table's tuples by their distance from the table's
mean embedding and keeps only the top-``s`` across tables — the tuples that
are already the most "unusual" within their own table and therefore the most
promising diverse candidates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import DiversificationError


def prune_by_table(
    embeddings: np.ndarray,
    table_ids: Sequence[object],
    limit: int,
    *,
    metric: str = "cosine",
) -> list[int]:
    """Keep the ``limit`` tuples farthest from their own table's mean embedding.

    Parameters
    ----------
    embeddings:
        ``(s, dim)`` candidate tuple embeddings.
    table_ids:
        Per-tuple identifier of the source table; the mean embedding is
        computed per table as described in the paper.
    limit:
        The ``s`` parameter: number of tuples to keep.  When the candidate set
        is already within the limit every index is returned (in order).

    Returns
    -------
    Indices of the retained tuples, sorted by decreasing distance from their
    table mean (ties broken by index for determinism).
    """
    matrix = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    if matrix.shape[0] == 0:
        raise DiversificationError("prune_by_table received no candidate tuples")
    if len(table_ids) != matrix.shape[0]:
        raise DiversificationError(
            f"{len(table_ids)} table ids for {matrix.shape[0]} tuples"
        )
    if limit <= 0:
        raise DiversificationError(f"prune limit must be positive, got {limit}")
    if matrix.shape[0] <= limit:
        return list(range(matrix.shape[0]))

    # Group rows by table via np.unique instead of per-table Python member
    # scans; each group's mean and member-to-mean distances are computed with
    # one vectorised kernel call.
    scores = np.zeros(matrix.shape[0], dtype=np.float64)
    # Heterogeneous id types must not be coerced to one numpy dtype (that
    # would merge e.g. 1 and "1"); only a homogeneous typed array takes the
    # np.unique fast path, everything else groups via one dict pass.
    homogeneous = len({type(owner) for owner in table_ids}) == 1
    ids_array = np.asarray(list(table_ids)) if homogeneous else None
    if ids_array is not None and ids_array.ndim == 1 and ids_array.dtype != object:
        _, inverse = np.unique(ids_array, return_inverse=True)
        inverse = inverse.ravel()
    else:
        mapping: dict[object, int] = {}
        inverse = np.fromiter(
            (mapping.setdefault(owner, len(mapping)) for owner in table_ids),
            dtype=np.int64,
            count=matrix.shape[0],
        )
    for group in range(int(inverse.max()) + 1):
        member_indices = np.flatnonzero(inverse == group)
        members = matrix[member_indices]
        mean_embedding = members.mean(axis=0, keepdims=True)
        scores[member_indices] = pairwise_distance_matrix(
            members, mean_embedding, metric=metric
        )[:, 0]

    order = np.lexsort((np.arange(matrix.shape[0]), -scores))
    kept = sorted(int(index) for index in order[:limit])
    # Return in decreasing-score order (paper: "top-s tuples based on this ranking").
    kept.sort(key=lambda index: (-scores[index], index))
    return kept


def prune_tuples(
    embeddings: np.ndarray,
    limit: int,
    *,
    table_ids: Sequence[object] | None = None,
    metric: str = "cosine",
) -> list[int]:
    """Prune candidates, treating all tuples as one table when ids are absent."""
    matrix = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    ids = list(table_ids) if table_ids is not None else [0] * matrix.shape[0]
    return prune_by_table(matrix, ids, limit, metric=metric)
