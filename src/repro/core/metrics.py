"""Tuple diversification evaluation metrics (paper Sec. 5.4).

Two adapted metrics evaluate a selected set of data lake tuples against the
query tuples:

* **Average Diversity** (Eq. 1): the mean of all query↔selected and
  selected↔selected distances (query↔query distances are constant across
  methods and therefore excluded).
* **Min Diversity** (Eq. 2): the smallest distance among those same pairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import DiversificationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.vectorops import DistanceContext


def _validate(query_embeddings: np.ndarray, selected_embeddings: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    query = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
    selected = np.atleast_2d(np.asarray(selected_embeddings, dtype=np.float64))
    if selected.size == 0 or selected.shape[0] == 0:
        raise DiversificationError("diversity metrics need at least one selected tuple")
    if query.size == 0:
        query = np.zeros((0, selected.shape[1]), dtype=np.float64)
    if query.shape[0] > 0 and query.shape[1] != selected.shape[1]:
        raise DiversificationError(
            "query and selected embeddings have different dimensionality: "
            f"{query.shape[1]} vs {selected.shape[1]}"
        )
    return query, selected


def _metric_blocks(
    query: np.ndarray,
    selected: np.ndarray,
    metric: str,
    context: "DistanceContext | None",
    selected_indices: Sequence[int] | np.ndarray | None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Query↔selected and selected↔selected distance blocks.

    Served from ``context`` (cached) when one is supplied together with the
    candidate indices of the selection; recomputed from the embeddings
    otherwise.
    """
    n, k = query.shape[0], selected.shape[0]
    if context is not None and selected_indices is not None:
        rows = np.asarray(selected_indices, dtype=int)
        if len(rows) != k:
            raise DiversificationError(
                f"{len(rows)} selected indices for {k} selected embeddings"
            )
        to_query = context.to_query(rows, metric=metric).T if n > 0 else None
        within = context.within(rows, metric=metric) if k > 1 else None
        return to_query, within
    to_query = pairwise_distance_matrix(query, selected, metric=metric) if n > 0 else None
    within = pairwise_distance_matrix(selected, metric=metric) if k > 1 else None
    return to_query, within


def average_diversity(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
    context: "DistanceContext | None" = None,
    selected_indices: Sequence[int] | np.ndarray | None = None,
) -> float:
    """Average Diversity (Eq. 1) of a selected set against the query tuples.

    The numerator sums every query↔selected distance and every unordered
    selected↔selected distance; the denominator is ``n + k`` as in the paper.
    Pass ``context`` plus ``selected_indices`` to serve both distance blocks
    from a shared :class:`~repro.vectorops.DistanceContext` cache.
    """
    query, selected = _validate(query_embeddings, selected_embeddings)
    n, k = query.shape[0], selected.shape[0]
    to_query, within = _metric_blocks(query, selected, metric, context, selected_indices)
    total = 0.0
    if to_query is not None:
        total += float(to_query.sum())
    if within is not None:
        total += float(np.triu(within, k=1).sum())
    return total / (n + k)


def min_diversity(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
    context: "DistanceContext | None" = None,
    selected_indices: Sequence[int] | np.ndarray | None = None,
) -> float:
    """Min Diversity (Eq. 2): the smallest query↔selected / selected↔selected distance."""
    query, selected = _validate(query_embeddings, selected_embeddings)
    to_query, within = _metric_blocks(query, selected, metric, context, selected_indices)
    candidates: list[float] = []
    if to_query is not None:
        candidates.append(float(to_query.min()))
    if within is not None:
        upper = within[np.triu_indices(selected.shape[0], k=1)]
        candidates.append(float(upper.min()))
    if not candidates:
        # A single selected tuple and no query tuples: nothing to compare, the
        # set is trivially diverse.
        return 0.0
    return min(candidates)


def diversity_scores(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
    context: "DistanceContext | None" = None,
    selected_indices: Sequence[int] | np.ndarray | None = None,
) -> dict[str, float]:
    """Both metrics in one call (used by the evaluation harness)."""
    return {
        "average_diversity": average_diversity(
            query_embeddings,
            selected_embeddings,
            metric=metric,
            context=context,
            selected_indices=selected_indices,
        ),
        "min_diversity": min_diversity(
            query_embeddings,
            selected_embeddings,
            metric=metric,
            context=context,
            selected_indices=selected_indices,
        ),
    }
