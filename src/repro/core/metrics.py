"""Tuple diversification evaluation metrics (paper Sec. 5.4).

Two adapted metrics evaluate a selected set of data lake tuples against the
query tuples:

* **Average Diversity** (Eq. 1): the mean of all query↔selected and
  selected↔selected distances (query↔query distances are constant across
  methods and therefore excluded).
* **Min Diversity** (Eq. 2): the smallest distance among those same pairs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import DiversificationError


def _validate(query_embeddings: np.ndarray, selected_embeddings: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    query = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
    selected = np.atleast_2d(np.asarray(selected_embeddings, dtype=np.float64))
    if selected.size == 0 or selected.shape[0] == 0:
        raise DiversificationError("diversity metrics need at least one selected tuple")
    if query.size == 0:
        query = np.zeros((0, selected.shape[1]), dtype=np.float64)
    if query.shape[0] > 0 and query.shape[1] != selected.shape[1]:
        raise DiversificationError(
            "query and selected embeddings have different dimensionality: "
            f"{query.shape[1]} vs {selected.shape[1]}"
        )
    return query, selected


def average_diversity(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
) -> float:
    """Average Diversity (Eq. 1) of a selected set against the query tuples.

    The numerator sums every query↔selected distance and every unordered
    selected↔selected distance; the denominator is ``n + k`` as in the paper.
    """
    query, selected = _validate(query_embeddings, selected_embeddings)
    n, k = query.shape[0], selected.shape[0]
    total = 0.0
    if n > 0:
        total += float(
            pairwise_distance_matrix(query, selected, metric=metric).sum()
        )
    if k > 1:
        within = pairwise_distance_matrix(selected, metric=metric)
        total += float(np.triu(within, k=1).sum())
    return total / (n + k)


def min_diversity(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
) -> float:
    """Min Diversity (Eq. 2): the smallest query↔selected / selected↔selected distance."""
    query, selected = _validate(query_embeddings, selected_embeddings)
    candidates: list[float] = []
    if query.shape[0] > 0:
        candidates.append(
            float(pairwise_distance_matrix(query, selected, metric=metric).min())
        )
    if selected.shape[0] > 1:
        within = pairwise_distance_matrix(selected, metric=metric)
        upper = within[np.triu_indices(selected.shape[0], k=1)]
        candidates.append(float(upper.min()))
    if not candidates:
        # A single selected tuple and no query tuples: nothing to compare, the
        # set is trivially diverse.
        return 0.0
    return min(candidates)


def diversity_scores(
    query_embeddings: np.ndarray,
    selected_embeddings: np.ndarray,
    *,
    metric: str = "cosine",
) -> dict[str, float]:
    """Both metrics in one call (used by the evaluation harness)."""
    return {
        "average_diversity": average_diversity(
            query_embeddings, selected_embeddings, metric=metric
        ),
        "min_diversity": min_diversity(
            query_embeddings, selected_embeddings, metric=metric
        ),
    }
