"""Topic specifications for synthetic base tables.

The TUS benchmark derives its 5 000+ lake tables from 32 non-unionable base
tables about distinct Open-Data topics; SANTOS uses 297 base tables from
similar domains, and UGEN-V1 covers 50 LLM-chosen topics (mythology, movies,
...).  Each :class:`TopicSpec` below describes one such base table: its column
schema (names and value kinds) plus the topical vocabulary entity names are
composed from.  Topics deliberately share *some* generic columns (Country,
City, supervisor-style person columns) — exactly the partial overlap that
makes column alignment non-trivial in the real benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.vocab import VocabularyPools, topic_vocabulary
from repro.utils.errors import BenchmarkError

#: Supported value kinds for generated columns.
COLUMN_KINDS = (
    "entity",
    "person",
    "city",
    "country",
    "category",
    "year",
    "number",
    "phone",
    "id",
    "address",
    "descriptor",
)


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a topic's base table."""

    name: str
    kind: str
    low: float = 0.0
    high: float = 1000.0

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise BenchmarkError(
                f"column {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {COLUMN_KINDS}"
            )


@dataclass(frozen=True)
class TopicSpec:
    """A topic: its vocabulary and base-table schema."""

    name: str
    columns: tuple[ColumnSpec, ...]
    stems: tuple[str, ...]
    suffixes: tuple[str, ...]
    categories: tuple[str, ...]
    descriptors: tuple[str, ...]

    def vocabulary(self, seed: int = 0) -> VocabularyPools:
        """Deterministic vocabulary pools for this topic."""
        return topic_vocabulary(
            self.name,
            stems=self.stems,
            suffixes=self.suffixes,
            categories=self.categories,
            descriptors=self.descriptors,
            seed=seed,
        )

    @property
    def relationship_columns(self) -> tuple[str, str]:
        """The (subject, object) column pair defining the topic's key relationship.

        SANTOS-style derivations must keep this pair together so that derived
        tables preserve at least one binary relationship of the base table.
        The convention is: the first ``entity`` column is the subject and the
        first non-entity textual column is the object.
        """
        subject = next(
            (column.name for column in self.columns if column.kind == "entity"),
            self.columns[0].name,
        )
        object_ = next(
            (
                column.name
                for column in self.columns
                if column.name != subject
                and column.kind in ("person", "category", "city", "country", "descriptor")
            ),
            self.columns[-1].name,
        )
        return subject, object_


def _topic(
    name: str,
    columns: list[tuple[str, str] | tuple[str, str, float, float]],
    stems: tuple[str, ...],
    suffixes: tuple[str, ...],
    categories: tuple[str, ...],
    descriptors: tuple[str, ...],
) -> TopicSpec:
    specs = []
    for column in columns:
        if len(column) == 2:
            specs.append(ColumnSpec(column[0], column[1]))
        else:
            specs.append(ColumnSpec(column[0], column[1], column[2], column[3]))
    return TopicSpec(
        name=name,
        columns=tuple(specs),
        stems=stems,
        suffixes=suffixes,
        categories=categories,
        descriptors=descriptors,
    )


def default_topics() -> list[TopicSpec]:
    """The built-in topic catalogue (36 distinct, non-unionable topics)."""
    topics = [
        _topic(
            "parks",
            [("Park Name", "entity"), ("Supervisor", "person"), ("City", "city"),
             ("Country", "country"), ("Park Phone", "phone"), ("Area Acres", "number", 5, 900)],
            ("Lake", "River", "Meadow", "Forest", "Lawn", "Hill", "Garden", "Chippewa", "Hyde", "Lawler"),
            ("Park", "Reserve", "Commons", "Grounds"),
            ("urban", "national", "state", "community", "botanical"),
            ("trail", "playground", "picnic", "wetland", "wooded", "scenic"),
        ),
        _topic(
            "paintings",
            [("Painting", "entity"), ("Medium", "category"), ("Dimensions", "descriptor"),
             ("Date", "year", 1880, 2022), ("Country", "country"), ("Artist", "person")],
            ("Landscape", "Portrait", "Memory", "Northern", "Abstract", "Still", "Harbor", "Dusk"),
            ("Study", "Composition", "No 2", "Series", "Panel"),
            ("Oil on canvas", "Mixed media", "Watercolor", "Acrylic", "Tempera"),
            ("gallery", "exhibit", "framed", "restored", "signed", "canvas"),
        ),
        _topic(
            "movies",
            [("Title", "entity"), ("Director", "person"), ("Genre", "category"),
             ("Release Year", "year", 1950, 2024), ("Budget", "number", 100000, 250000000),
             ("Language", "category"), ("Filming Location", "city")],
            ("Midnight", "Silent", "Falling", "Last", "Crimson", "Echo", "Broken", "Distant"),
            ("Horizon", "Promise", "Empire", "Voyage", "Legacy", "Station"),
            ("Drama", "Comedy", "Thriller", "Documentary", "Animation", "Action", "Romance"),
            ("award", "festival", "sequel", "premiere", "remastered", "cast"),
        ),
        _topic(
            "schools",
            [("School Name", "entity"), ("Principal", "person"), ("City", "city"),
             ("Country", "country"), ("Enrollment", "number", 80, 4000), ("Grade Level", "category")],
            ("Lincoln", "Riverside", "Oakwood", "Jefferson", "Hillcrest", "Washington", "Maplewood"),
            ("Elementary", "Middle School", "High School", "Academy"),
            ("public", "private", "charter", "magnet"),
            ("campus", "curriculum", "athletics", "library", "stem", "arts"),
        ),
        _topic(
            "hospitals",
            [("Hospital", "entity"), ("Administrator", "person"), ("City", "city"),
             ("Country", "country"), ("Beds", "number", 20, 1500), ("Specialty", "category"),
             ("Contact", "phone")],
            ("Mercy", "General", "Saint", "Memorial", "Providence", "Unity", "Harbor"),
            ("Hospital", "Medical Center", "Clinic", "Infirmary"),
            ("cardiology", "oncology", "pediatrics", "trauma", "maternity"),
            ("ward", "surgical", "emergency", "outpatient", "icu", "rehab"),
        ),
        _topic(
            "flights",
            [("Flight Code", "id"), ("Airline", "entity"), ("Origin", "city"),
             ("Destination", "city"), ("Duration Minutes", "number", 40, 900),
             ("Aircraft", "category")],
            ("Pacific", "Atlantic", "Polar", "Skyline", "Summit", "Harbor", "Northern"),
            ("Airways", "Airlines", "Express", "Jet"),
            ("A320", "B737", "B787", "A350", "E190"),
            ("nonstop", "layover", "red-eye", "regional", "charter", "cargo"),
        ),
        _topic(
            "restaurants",
            [("Restaurant", "entity"), ("Chef", "person"), ("Cuisine", "category"),
             ("City", "city"), ("Rating", "number", 1, 5), ("Address", "address")],
            ("Olive", "Harvest", "Ember", "Saffron", "Juniper", "Copper", "Basil"),
            ("Kitchen", "Bistro", "Table", "Grill", "Cafe"),
            ("Italian", "Thai", "Mexican", "Japanese", "Indian", "French", "Vegan"),
            ("tasting", "terrace", "brunch", "seasonal", "locally", "sourced"),
        ),
        _topic(
            "sports_teams",
            [("Team", "entity"), ("Coach", "person"), ("City", "city"),
             ("League", "category"), ("Founded", "year", 1880, 2015), ("Stadium Capacity", "number", 2000, 95000)],
            ("Falcons", "Wolves", "Mariners", "Comets", "Rangers", "Thunder", "Pioneers"),
            ("FC", "United", "Athletic", "Club"),
            ("premier", "national", "minor", "collegiate"),
            ("season", "playoff", "championship", "roster", "derby", "home"),
        ),
        _topic(
            "books",
            [("Title", "entity"), ("Author", "person"), ("Genre", "category"),
             ("Published", "year", 1900, 2024), ("Pages", "number", 60, 1200), ("Publisher", "entity")],
            ("Shadow", "Garden", "Winter", "Letters", "Atlas", "Song", "House"),
            ("of Secrets", "of Ash", "Chronicle", "Manifesto", "Reader"),
            ("fiction", "biography", "poetry", "history", "science"),
            ("hardcover", "paperback", "translated", "annotated", "bestselling", "edition"),
        ),
        _topic(
            "songs",
            [("Song", "entity"), ("Artist", "person"), ("Album", "entity"),
             ("Genre", "category"), ("Duration Seconds", "number", 90, 600), ("Release Year", "year", 1960, 2024)],
            ("Neon", "Velvet", "Paper", "Electric", "Lonely", "Golden", "Wildfire"),
            ("Nights", "Hearts", "Dreams", "Avenue", "Anthem"),
            ("pop", "rock", "jazz", "electronic", "folk", "hip hop"),
            ("single", "acoustic", "remix", "live", "chart", "studio"),
        ),
        _topic(
            "vehicles",
            [("Model", "entity"), ("Manufacturer", "entity"), ("Body Type", "category"),
             ("Year", "year", 1995, 2025), ("Price", "number", 9000, 160000), ("Horsepower", "number", 70, 800)],
            ("Vista", "Strada", "Apex", "Nomad", "Pulse", "Aurora", "Titan"),
            ("GT", "EX", "Sport", "Hybrid", "EV"),
            ("sedan", "suv", "hatchback", "pickup", "coupe", "wagon"),
            ("turbo", "awd", "diesel", "electric", "manual", "automatic"),
        ),
        _topic(
            "employees",
            [("Employee", "person"), ("Department", "category"), ("Title", "descriptor"),
             ("Office City", "city"), ("Salary", "number", 32000, 240000), ("Hired", "year", 1990, 2025)],
            ("Staff", "Team", "Division", "Unit"),
            ("Group", "Office", "Branch"),
            ("engineering", "finance", "marketing", "operations", "legal", "research"),
            ("senior", "junior", "lead", "principal", "associate", "manager"),
        ),
        _topic(
            "products",
            [("Product", "entity"), ("Brand", "entity"), ("Category", "category"),
             ("Price", "number", 2, 4000), ("Stock", "number", 0, 10000), ("SKU", "id")],
            ("Nimbus", "Cascade", "Fusion", "Orbit", "Zephyr", "Quartz", "Vertex"),
            ("Pro", "Mini", "Max", "Lite", "Plus"),
            ("electronics", "kitchen", "outdoor", "office", "toys", "apparel"),
            ("wireless", "compact", "refurbished", "limited", "bundle", "warranty"),
        ),
        _topic(
            "animals",
            [("Species", "entity"), ("Habitat", "category"), ("Conservation Status", "category"),
             ("Average Weight Kg", "number", 0, 5000), ("Lifespan Years", "number", 1, 150), ("Region", "country")],
            ("Spotted", "Crested", "Dwarf", "Giant", "Striped", "Horned", "Snowy"),
            ("Fox", "Owl", "Turtle", "Antelope", "Salamander", "Heron"),
            ("forest", "savanna", "wetland", "alpine", "coastal", "desert"),
            ("nocturnal", "migratory", "endemic", "herbivore", "predator", "protected"),
        ),
        _topic(
            "mountains",
            [("Peak", "entity"), ("Range", "entity"), ("Country", "country"),
             ("Elevation M", "number", 800, 8848), ("First Ascent", "year", 1850, 2020), ("Difficulty", "category")],
            ("Eagle", "Storm", "Granite", "Frost", "Cloud", "Raven", "Summit"),
            ("Peak", "Ridge", "Spire", "Dome"),
            ("alpine", "volcanic", "glaciated", "trekking"),
            ("basecamp", "couloir", "traverse", "exposed", "scramble", "route"),
        ),
        _topic(
            "rivers",
            [("River", "entity"), ("Country", "country"), ("Length Km", "number", 20, 6500),
             ("Basin Area", "number", 100, 3000000), ("Outflow", "category"), ("Discharge", "number", 5, 200000)],
            ("Clear", "Swift", "Bend", "Willow", "Stone", "Fall", "Otter"),
            ("River", "Creek", "Fork", "Run"),
            ("sea", "ocean", "lake", "delta", "estuary"),
            ("tributary", "watershed", "floodplain", "navigable", "dammed", "rapids"),
        ),
        _topic(
            "universities",
            [("University", "entity"), ("Chancellor", "person"), ("City", "city"),
             ("Country", "country"), ("Students", "number", 800, 70000), ("Founded", "year", 1500, 2010)],
            ("Northeastern", "Waterloo", "Polytechnic", "Clarendon", "Ridgefield", "Hartwell"),
            ("University", "Institute", "College"),
            ("research", "liberal arts", "technical", "public", "private"),
            ("faculty", "campus", "graduate", "tuition", "endowment", "alumni"),
        ),
        _topic(
            "museums",
            [("Museum", "entity"), ("Curator", "person"), ("City", "city"),
             ("Country", "country"), ("Annual Visitors", "number", 5000, 8000000), ("Focus", "category")],
            ("Heritage", "Modern", "Maritime", "Natural", "Royal", "City"),
            ("Museum", "Gallery", "Collection"),
            ("art", "history", "science", "archaeology", "design"),
            ("exhibition", "archive", "curated", "interactive", "permanent", "touring"),
        ),
        _topic(
            "bridges",
            [("Bridge", "entity"), ("City", "city"), ("Country", "country"),
             ("Span M", "number", 30, 3000), ("Opened", "year", 1850, 2024), ("Type", "category")],
            ("Harbor", "Victory", "Union", "Centennial", "Granite", "Liberty"),
            ("Bridge", "Crossing", "Viaduct"),
            ("suspension", "arch", "cable-stayed", "truss", "bascule"),
            ("pedestrian", "tolled", "retrofit", "landmark", "rail", "deck"),
        ),
        _topic(
            "companies",
            [("Company", "entity"), ("CEO", "person"), ("Industry", "category"),
             ("Headquarters", "city"), ("Revenue Millions", "number", 1, 500000), ("Employees", "number", 5, 500000)],
            ("Helix", "Marble", "Summit", "Cobalt", "Lantern", "Meridian", "Anchor"),
            ("Labs", "Industries", "Holdings", "Systems", "Group"),
            ("software", "manufacturing", "retail", "energy", "logistics", "biotech"),
            ("startup", "public", "acquired", "founded", "global", "subsidiary"),
        ),
        _topic(
            "diseases",
            [("Condition", "entity"), ("Specialty", "category"), ("Prevalence Per 100k", "number", 1, 30000),
             ("First Described", "year", 1700, 2015), ("Treatment", "descriptor"), ("Region", "country")],
            ("Acute", "Chronic", "Hereditary", "Viral", "Seasonal", "Atypical"),
            ("Syndrome", "Disorder", "Fever", "Deficiency"),
            ("cardiology", "neurology", "immunology", "dermatology", "endocrinology"),
            ("therapy", "vaccine", "screening", "antibiotic", "supportive", "remission"),
        ),
        _topic(
            "recipes",
            [("Dish", "entity"), ("Cuisine", "category"), ("Main Ingredient", "category"),
             ("Prep Minutes", "number", 5, 240), ("Calories", "number", 80, 1800), ("Chef", "person")],
            ("Roasted", "Braised", "Spiced", "Charred", "Stuffed", "Glazed"),
            ("Stew", "Salad", "Curry", "Tart", "Skillet"),
            ("lentil", "chicken", "salmon", "mushroom", "eggplant", "beef"),
            ("simmer", "marinated", "garnish", "seasonal", "gluten-free", "family"),
        ),
        _topic(
            "board_games",
            [("Game", "entity"), ("Designer", "person"), ("Players", "number", 1, 10),
             ("Playtime Minutes", "number", 10, 360), ("Published", "year", 1970, 2025), ("Mechanic", "category")],
            ("Cascadia", "Harbor", "Relic", "Bastion", "Orchard", "Citadel"),
            ("Quest", "Tactics", "Empire", "Saga"),
            ("worker placement", "deck building", "area control", "cooperative", "roll and write"),
            ("expansion", "solo", "campaign", "tile", "drafting", "legacy"),
        ),
        _topic(
            "languages",
            [("Language", "entity"), ("Family", "category"), ("Speakers Millions", "number", 0, 1200),
             ("Script", "category"), ("Region", "country"), ("Status", "category")],
            ("Northern", "Coastal", "Highland", "Insular", "Classical", "Modern"),
            ("Tongue", "Dialect", "Creole"),
            ("Indo-European", "Sino-Tibetan", "Afro-Asiatic", "Austronesian", "Uralic"),
            ("official", "endangered", "liturgical", "tonal", "agglutinative", "romanized"),
        ),
        _topic(
            "elections",
            [("Election", "entity"), ("Country", "country"), ("Year", "year", 1950, 2026),
             ("Turnout Percent", "number", 30, 95), ("Winner", "person"), ("Seats", "number", 50, 700)],
            ("General", "Presidential", "Municipal", "Regional", "Federal"),
            ("Election", "Ballot", "Referendum"),
            ("parliamentary", "presidential", "local", "runoff"),
            ("coalition", "incumbent", "landslide", "recount", "district", "mandate"),
        ),
        _topic(
            "earthquakes",
            [("Event", "entity"), ("Country", "country"), ("Magnitude", "number", 3, 9),
             ("Depth Km", "number", 1, 700), ("Year", "year", 1900, 2026), ("Fault", "category")],
            ("Offshore", "Inland", "Coastal", "Valley", "Plateau"),
            ("Quake", "Tremor", "Aftershock"),
            ("strike-slip", "thrust", "normal", "subduction"),
            ("epicenter", "aftershocks", "tsunami", "seismic", "shaking", "rupture"),
        ),
        _topic(
            "satellites",
            [("Satellite", "entity"), ("Operator", "entity"), ("Launch Year", "year", 1960, 2026),
             ("Orbit", "category"), ("Mass Kg", "number", 10, 12000), ("Purpose", "category")],
            ("Aurora", "Sentinel", "Beacon", "Pathfinder", "Horizon", "Vanguard"),
            ("Sat", "One", "II", "Explorer"),
            ("LEO", "GEO", "MEO", "polar", "sun-synchronous"),
            ("imaging", "communications", "navigation", "weather", "research", "relay"),
        ),
        _topic(
            "festivals",
            [("Festival", "entity"), ("City", "city"), ("Country", "country"),
             ("Month", "category"), ("Attendance", "number", 500, 2000000), ("Genre", "category")],
            ("Harvest", "Lantern", "Solstice", "Riverfront", "Harbor", "Midsummer"),
            ("Festival", "Fair", "Carnival", "Week"),
            ("January", "April", "June", "August", "October", "December"),
            ("music", "film", "food", "folk", "arts", "heritage"),
        ),
        _topic(
            "libraries",
            [("Library", "entity"), ("Librarian", "person"), ("City", "city"),
             ("Country", "country"), ("Volumes", "number", 5000, 20000000), ("Branches", "number", 1, 120)],
            ("Carnegie", "Riverside", "Athenaeum", "Parkside", "Beacon", "Northgate"),
            ("Library", "Reading Room", "Archive"),
            ("public", "academic", "national", "special"),
            ("catalog", "periodicals", "manuscripts", "digitized", "lending", "reference"),
        ),
        _topic(
            "farms",
            [("Farm", "entity"), ("Owner", "person"), ("Country", "country"),
             ("Hectares", "number", 2, 20000), ("Primary Crop", "category"), ("Established", "year", 1800, 2020)],
            ("Willow", "Clover", "Sunrise", "Prairie", "Hollow", "Brook"),
            ("Farm", "Ranch", "Orchard", "Homestead"),
            ("wheat", "dairy", "apples", "vineyard", "corn", "lavender"),
            ("organic", "irrigated", "pasture", "greenhouse", "heritage", "cooperative"),
        ),
        _topic(
            "mythology",
            [("Myth", "entity"), ("Definition", "descriptor"), ("Synonyms", "descriptor"),
             ("Origin", "category"), ("First Recorded", "year", 1, 1900)],
            ("Chimera", "Siren", "Basilisk", "Minotaur", "Cyclops", "Griffon", "Kasha", "Succubus", "Hag", "Mugo"),
            ("", "Spirit", "Beast"),
            ("Greek", "Roman", "Japanese", "Norse", "Jewish", "Celtic", "Egyptian"),
            ("monstrous", "winged", "serpent", "demon", "guardian", "trickster", "shapeshifter"),
        ),
        _topic(
            "volcanoes",
            [("Volcano", "entity"), ("Country", "country"), ("Elevation M", "number", 300, 6900),
             ("Last Eruption", "year", 1500, 2025), ("Type", "category"), ("Alert Level", "category")],
            ("Smoking", "Black", "Thunder", "Ash", "Ember", "Crater"),
            ("Mount", "Caldera", "Cone"),
            ("stratovolcano", "shield", "cinder cone", "lava dome"),
            ("dormant", "active", "fumarole", "lahar", "pyroclastic", "monitored"),
        ),
        _topic(
            "shipwrecks",
            [("Vessel", "entity"), ("Country", "country"), ("Sank Year", "year", 1600, 2000),
             ("Depth M", "number", 3, 4000), ("Cause", "category"), ("Captain", "person")],
            ("Endeavour", "Resolute", "Mariner", "Tempest", "Sovereign", "Albatross"),
            ("", "II", "Star"),
            ("storm", "collision", "grounding", "fire", "torpedo"),
            ("salvaged", "wreck", "cargo", "expedition", "diveable", "protected"),
        ),
        _topic(
            "telescopes",
            [("Telescope", "entity"), ("Observatory", "entity"), ("Country", "country"),
             ("Aperture M", "number", 0, 40), ("First Light", "year", 1900, 2026), ("Waveband", "category")],
            ("Summit", "Desert", "Polar", "Giant", "Twin", "Horizon"),
            ("Telescope", "Array", "Observatory"),
            ("optical", "radio", "infrared", "x-ray", "submillimeter"),
            ("adaptive", "interferometer", "survey", "spectrograph", "dome", "mirror"),
        ),
        _topic(
            "cheeses",
            [("Cheese", "entity"), ("Country", "country"), ("Milk", "category"),
             ("Aging Months", "number", 0, 60), ("Texture", "category"), ("Producer", "entity")],
            ("Alpine", "Smoked", "Cave", "Farmhouse", "Harbor", "Meadow"),
            ("Blue", "Gouda", "Tomme", "Cheddar"),
            ("cow", "goat", "sheep", "buffalo"),
            ("soft", "semi-hard", "hard", "washed-rind", "crumbly", "creamy"),
        ),
        _topic(
            "marathons",
            [("Race", "entity"), ("City", "city"), ("Country", "country"),
             ("Finishers", "number", 200, 55000), ("Record Minutes", "number", 120, 200), ("Founded", "year", 1897, 2020)],
            ("Lakeside", "Capital", "Harbor", "Twilight", "Valley", "Skyline"),
            ("Marathon", "Half Marathon", "Ultra"),
            ("road", "trail", "charity", "championship"),
            ("qualifier", "elevation", "pacer", "split", "course", "finisher"),
        ),
    ]
    return topics


def topic_by_name(name: str) -> TopicSpec:
    """Look up a built-in topic by name."""
    for topic in default_topics():
        if topic.name == name:
            return topic
    raise BenchmarkError(f"unknown topic {name!r}")
