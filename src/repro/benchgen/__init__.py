"""Synthetic benchmark generators.

The paper's experiments run on the public TUS, SANTOS and UGEN-V1 table union
search benchmarks plus an IMDB-derived case-study lake.  The raw data behind
those benchmarks is not available offline, so this package regenerates
benchmarks *with the same construction procedure* the papers describe
(select/project derivations of topical base tables, preserved binary
relationships for SANTOS, small per-topic tables for UGEN-V1) over synthetic
topical vocabularies.  Scale parameters default to values that keep the
benchmark shapes of Fig. 5 while remaining laptop-friendly.
"""

from repro.benchgen.types import Benchmark, BenchmarkStatistics
from repro.benchgen.vocab import VocabularyPools, topic_vocabulary
from repro.benchgen.topics import TopicSpec, ColumnSpec, default_topics, topic_by_name
from repro.benchgen.base_tables import generate_base_table
from repro.benchgen.tus import generate_tus_benchmark, generate_tus_sampled_benchmark
from repro.benchgen.santos import generate_santos_benchmark
from repro.benchgen.ugen import generate_ugen_benchmark
from repro.benchgen.imdb import generate_imdb_case_study
from repro.benchgen.finetuning import generate_finetuning_dataset
from repro.benchgen.stats import benchmark_statistics, statistics_table

__all__ = [
    "Benchmark",
    "BenchmarkStatistics",
    "VocabularyPools",
    "topic_vocabulary",
    "TopicSpec",
    "ColumnSpec",
    "default_topics",
    "topic_by_name",
    "generate_base_table",
    "generate_tus_benchmark",
    "generate_tus_sampled_benchmark",
    "generate_santos_benchmark",
    "generate_ugen_benchmark",
    "generate_imdb_case_study",
    "generate_finetuning_dataset",
    "benchmark_statistics",
    "statistics_table",
]
