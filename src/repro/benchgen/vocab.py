"""Vocabulary pools for synthetic benchmark generation.

Every topic gets its own deterministic vocabulary: entity names are composed
from topic-specific stems so that tables about different topics share almost
no tokens (they should be non-unionable and embed far apart), while tables
derived from the same topic share vocabulary (they should be unionable and
embed nearby) — the structural property the original Open-Data benchmarks
have and the paper's experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_seed, seeded_rng

# Shared, topic-independent pools -------------------------------------------

FIRST_NAMES = (
    "Vera", "Paul", "Jenny", "Tim", "Enrique", "Maria", "Liam", "Olivia", "Noah",
    "Emma", "Aiden", "Sofia", "Lucas", "Mia", "Ethan", "Amelia", "Mateo", "Nora",
    "Hana", "Kenji", "Priya", "Arjun", "Fatima", "Omar", "Ingrid", "Lars", "Chloe",
    "Hugo", "Ana", "Diego", "Wei", "Yuki", "Tariq", "Leila", "Ivan", "Sasha",
    "Nadia", "Tomas", "Greta", "Marco",
)

LAST_NAMES = (
    "Onate", "Veliotis", "Rishi", "Erickson", "Garcia", "Smith", "Johnson", "Lee",
    "Patel", "Kim", "Nguyen", "Silva", "Rossi", "Mueller", "Dubois", "Tanaka",
    "Kowalski", "Ivanov", "Haddad", "Okafor", "Berg", "Costa", "Moreau", "Sato",
    "Ali", "Brown", "Walker", "Young", "Novak", "Jansen", "Fischer", "Olsen",
    "Castro", "Dias", "Weber", "Laurent", "Peterson", "Andersson", "Romero", "Khan",
)

CITIES = (
    "Fresno", "Chicago", "Brandon", "Toronto", "Boston", "Seattle", "Austin",
    "Denver", "Portland", "Madison", "Columbus", "Halifax", "Ottawa", "Calgary",
    "London", "Leeds", "Bristol", "Manchester", "Sydney", "Melbourne", "Perth",
    "Auckland", "Dublin", "Cork", "Glasgow", "Cardiff", "Phoenix", "Tucson",
    "Omaha", "Lincoln", "Albany", "Buffalo", "Tampere", "Helsinki", "Oslo",
    "Bergen", "Zurich", "Geneva", "Lyon", "Nantes",
)

COUNTRIES = (
    "USA", "Canada", "UK", "Australia", "Ireland", "New Zealand", "Finland",
    "Norway", "Switzerland", "France", "Germany", "Spain", "Italy", "Portugal",
    "Japan", "India", "Brazil", "Mexico", "Kenya", "Egypt", "Sweden", "Denmark",
    "Netherlands", "Belgium", "Austria", "Poland", "Greece", "Turkey", "Chile",
    "Argentina",
)

STREET_WORDS = ("Avenue", "Street", "Boulevard", "Lane", "Drive", "Road", "Way", "Court")

GENERIC_ADJECTIVES = (
    "North", "South", "East", "West", "Grand", "Royal", "Central", "Golden",
    "Silver", "Hidden", "Upper", "Lower", "Old", "New", "Green", "Blue", "Red",
    "White", "Bright", "Quiet", "Rapid", "Stone", "Iron", "Crystal", "Sunny",
    "Misty", "Wild", "Gentle", "High", "Broad", "Little", "Great", "Twin",
    "Silent", "Amber", "Copper", "Ivory", "Maple", "Cedar", "Willow",
)


@dataclass(frozen=True)
class VocabularyPools:
    """Deterministic vocabulary of one topic."""

    topic: str
    entity_stems: tuple[str, ...]
    entity_suffixes: tuple[str, ...]
    categories: tuple[str, ...]
    descriptors: tuple[str, ...]

    def entity_name(self, rng: np.random.Generator) -> str:
        """Compose an entity name such as ``"Golden Cedar Park"``."""
        adjective = GENERIC_ADJECTIVES[int(rng.integers(len(GENERIC_ADJECTIVES)))]
        stem = self.entity_stems[int(rng.integers(len(self.entity_stems)))]
        suffix = self.entity_suffixes[int(rng.integers(len(self.entity_suffixes)))]
        return f"{adjective} {stem} {suffix}".strip()

    def category(self, rng: np.random.Generator) -> str:
        """Sample a topical category label."""
        return self.categories[int(rng.integers(len(self.categories)))]

    def descriptor(self, rng: np.random.Generator) -> str:
        """Sample a short topical free-text descriptor (two descriptor words)."""
        first = self.descriptors[int(rng.integers(len(self.descriptors)))]
        second = self.descriptors[int(rng.integers(len(self.descriptors)))]
        return f"{first} {second}"


def person_name(rng: np.random.Generator) -> str:
    """A full person name drawn from the shared pools."""
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
    return f"{first} {last}"


def city_name(rng: np.random.Generator) -> str:
    """A city drawn from the shared pool."""
    return CITIES[int(rng.integers(len(CITIES)))]


def country_name(rng: np.random.Generator) -> str:
    """A country drawn from the shared pool."""
    return COUNTRIES[int(rng.integers(len(COUNTRIES)))]


def street_address(rng: np.random.Generator) -> str:
    """A synthetic street address."""
    number = int(rng.integers(10, 9999))
    adjective = GENERIC_ADJECTIVES[int(rng.integers(len(GENERIC_ADJECTIVES)))]
    street = STREET_WORDS[int(rng.integers(len(STREET_WORDS)))]
    return f"{number} {adjective} {street}"


def phone_number(rng: np.random.Generator) -> str:
    """A synthetic North-American style phone number."""
    return f"{int(rng.integers(200, 999))} {int(rng.integers(200, 999))}-{int(rng.integers(1000, 9999)):04d}"


def identifier(rng: np.random.Generator, prefix: str) -> str:
    """A synthetic alphanumeric identifier such as ``PRK-04821``."""
    return f"{prefix.upper()[:3]}-{int(rng.integers(0, 99999)):05d}"


def topic_vocabulary(
    topic: str,
    *,
    stems: tuple[str, ...],
    suffixes: tuple[str, ...],
    categories: tuple[str, ...],
    descriptors: tuple[str, ...],
    seed: int = 0,
    extra_stems: int = 20,
) -> VocabularyPools:
    """Build the vocabulary of one topic, extending stems with derived words.

    ``extra_stems`` synthetic stems ("<stem><two-letter tag>") are appended so
    each topic has enough distinct surface forms for large base tables while
    remaining clearly topical.
    """
    rng = seeded_rng(derive_seed(seed, "vocab", topic))
    derived = []
    letters = "abcdefghijklmnopqrstuvwxyz"
    for _ in range(extra_stems):
        base = stems[int(rng.integers(len(stems)))]
        tag = "".join(letters[int(rng.integers(26))] for _ in range(2))
        derived.append(f"{base}{tag}")
    return VocabularyPools(
        topic=topic,
        entity_stems=tuple(stems) + tuple(derived),
        entity_suffixes=tuple(suffixes),
        categories=tuple(categories),
        descriptors=tuple(descriptors),
    )
