"""TUS fine-tuning benchmark (paper Sec. 6.1.1, "TUS Fine-tuning Benchmark").

The paper builds a balanced 60K-pair dataset from the TUS benchmark's tables
and unionability labels, split 70:15:15 without leakage.  This module wires
the TUS generator to the generic pair-dataset builder so DUST and Ditto can be
fine-tuned end to end from one call (at reduced scale by default).
"""

from __future__ import annotations

from repro.benchgen.types import Benchmark
from repro.models.dataset import TuplePairDataset, build_pair_dataset


def generate_finetuning_dataset(
    benchmark: Benchmark,
    *,
    num_pairs: int = 2000,
    seed: int = 5,
    max_rows_per_table: int = 30,
) -> TuplePairDataset:
    """Build the tuple-pair fine-tuning dataset from a generated benchmark.

    ``benchmark`` is usually the TUS benchmark (the paper never fine-tunes on
    SANTOS or UGEN-V1, which stay as held-out evaluation benchmarks).  The
    pair labels come from the benchmark's ``unionable_groups``: pairs within a
    group are positives, pairs across groups are negatives.
    """
    tables = list(benchmark.lake.tables()) + list(benchmark.query_tables)
    return build_pair_dataset(
        tables,
        benchmark.unionable_groups,
        num_pairs=num_pairs,
        seed=seed,
        max_rows_per_table=max_rows_per_table,
    )
