"""TUS benchmark generator (Nargesian et al. [37]; paper Sec. 6.1.1).

The original TUS benchmark derives 5 044 lake tables from 32 non-unionable
base tables by selecting and projecting rows/columns; tables derived from the
same base table are unionable, others are not.  The generator below follows
the same procedure over synthetic topical base tables.  Default scales are
reduced so experiments run on a laptop; pass larger numbers to approach the
original sizes.
"""

from __future__ import annotations

from repro.api.registry import register_benchmark
from repro.benchgen.base_tables import derive_table, generate_base_table
from repro.benchgen.topics import TopicSpec, default_topics
from repro.benchgen.types import Benchmark
from repro.datalake.lake import DataLake
from repro.utils.errors import BenchmarkError
from repro.utils.rng import derive_seed, seeded_rng


def _build_derivation_benchmark(
    *,
    name: str,
    topics: list[TopicSpec],
    num_base_tables: int,
    base_rows: int,
    lake_tables_per_base: int,
    queries_per_base: int,
    seed: int,
    required_columns: str = "none",
    min_rows: int = 3,
    max_row_fraction: float = 0.6,
) -> Benchmark:
    """Shared derivation logic for the TUS and SANTOS style benchmarks."""
    if num_base_tables < 2:
        raise BenchmarkError("need at least two base tables (non-unionable groups)")
    if num_base_tables > len(topics):
        raise BenchmarkError(
            f"requested {num_base_tables} base tables but only {len(topics)} topics exist"
        )
    rng = seeded_rng(derive_seed(seed, name, "derivations"))
    lake = DataLake(name=f"{name}-lake")
    query_tables = []
    ground_truth: dict[str, list[str]] = {}
    unionable_groups: dict[str, list[str]] = {}

    for topic in topics[:num_base_tables]:
        base = generate_base_table(topic, num_rows=base_rows, seed=seed)
        if required_columns == "relationship":
            required = topic.relationship_columns
        else:
            required = ()

        group_members: list[str] = []
        lake_names: list[str] = []
        for index in range(lake_tables_per_base):
            table_name = f"{name}_{topic.name}_lake_{index}"
            derived = derive_table(
                base,
                name=table_name,
                rng=rng,
                required_columns=required,
                min_rows=min_rows,
                max_row_fraction=max_row_fraction,
            )
            lake.add(derived)
            lake_names.append(table_name)
            group_members.append(table_name)

        for index in range(queries_per_base):
            query_name = f"{name}_{topic.name}_query_{index}"
            query = derive_table(
                base,
                name=query_name,
                rng=rng,
                required_columns=required,
                min_rows=max(min_rows, 3),
                max_row_fraction=max_row_fraction,
                rename_probability=0.0,
            )
            query.metadata["kind"] = "query"
            query_tables.append(query)
            ground_truth[query_name] = list(lake_names)
            group_members.append(query_name)

        unionable_groups[topic.name] = group_members

    return Benchmark(
        name=name,
        lake=lake,
        query_tables=query_tables,
        ground_truth=ground_truth,
        unionable_groups=unionable_groups,
    )


@register_benchmark("tus")
def generate_tus_benchmark(
    *,
    num_base_tables: int = 12,
    base_rows: int = 120,
    lake_tables_per_base: int = 12,
    num_queries: int = 12,
    seed: int = 0,
) -> Benchmark:
    """Generate a TUS-style benchmark.

    ``num_queries`` query tables are spread round-robin over the base tables
    (one query per base table until the budget runs out).
    """
    topics = default_topics()
    queries_per_base = max(1, num_queries // num_base_tables)
    benchmark = _build_derivation_benchmark(
        name="tus",
        topics=topics,
        num_base_tables=num_base_tables,
        base_rows=base_rows,
        lake_tables_per_base=lake_tables_per_base,
        queries_per_base=queries_per_base,
        seed=seed,
    )
    benchmark.query_tables = benchmark.query_tables[:num_queries]
    kept = {table.name for table in benchmark.query_tables}
    benchmark.ground_truth = {
        query: tables for query, tables in benchmark.ground_truth.items() if query in kept
    }
    return benchmark


@register_benchmark("tus-sampled")
def generate_tus_sampled_benchmark(
    *,
    num_base_tables: int = 8,
    base_rows: int = 80,
    lake_tables_per_base: int = 10,
    num_queries: int = 8,
    seed: int = 1,
) -> Benchmark:
    """Generate the smaller TUS-Sampled variant (10 unionable tables per query)."""
    benchmark = generate_tus_benchmark(
        num_base_tables=num_base_tables,
        base_rows=base_rows,
        lake_tables_per_base=lake_tables_per_base,
        num_queries=num_queries,
        seed=seed,
    )
    benchmark.name = "tus-sampled"
    benchmark.lake.name = "tus-sampled-lake"
    return benchmark
