"""Base-table generation from topic specifications."""

from __future__ import annotations

import numpy as np

from repro.benchgen.topics import ColumnSpec, TopicSpec
from repro.benchgen.vocab import (
    VocabularyPools,
    city_name,
    country_name,
    identifier,
    person_name,
    phone_number,
    street_address,
)
from repro.datalake.table import Table
from repro.utils.errors import BenchmarkError
from repro.utils.rng import derive_seed, seeded_rng


def _generate_value(
    spec: ColumnSpec,
    vocabulary: VocabularyPools,
    rng: np.random.Generator,
) -> object:
    """Generate one cell value for a column specification."""
    if spec.kind == "entity":
        return vocabulary.entity_name(rng)
    if spec.kind == "person":
        return person_name(rng)
    if spec.kind == "city":
        return city_name(rng)
    if spec.kind == "country":
        return country_name(rng)
    if spec.kind == "category":
        return vocabulary.category(rng)
    if spec.kind == "descriptor":
        return vocabulary.descriptor(rng)
    if spec.kind == "year":
        return int(rng.integers(int(spec.low), int(spec.high) + 1))
    if spec.kind == "number":
        value = rng.uniform(spec.low, spec.high)
        return round(float(value), 2)
    if spec.kind == "phone":
        return phone_number(rng)
    if spec.kind == "address":
        return street_address(rng)
    if spec.kind == "id":
        return identifier(rng, vocabulary.topic)
    raise BenchmarkError(f"unsupported column kind {spec.kind!r}")


def generate_base_table(
    topic: TopicSpec,
    *,
    num_rows: int,
    seed: int = 0,
    name: str | None = None,
    null_fraction: float = 0.02,
) -> Table:
    """Generate the base table of ``topic`` with ``num_rows`` rows.

    A small ``null_fraction`` of non-entity cells is blanked out so derived
    benchmarks exercise the library's null handling the way real Open-Data
    tables do.
    """
    if num_rows <= 0:
        raise BenchmarkError(f"num_rows must be positive, got {num_rows}")
    if not 0.0 <= null_fraction < 1.0:
        raise BenchmarkError(f"null_fraction must be in [0, 1), got {null_fraction}")

    rng = seeded_rng(derive_seed(seed, "base-table", topic.name))
    vocabulary = topic.vocabulary(seed)
    rows = []
    for _ in range(num_rows):
        row = []
        for spec in topic.columns:
            value = _generate_value(spec, vocabulary, rng)
            if (
                spec.kind != "entity"
                and null_fraction > 0.0
                and rng.random() < null_fraction
            ):
                value = None
            row.append(value)
        rows.append(tuple(row))
    return Table(
        name=name or f"{topic.name}_base",
        columns=[spec.name for spec in topic.columns],
        rows=rows,
        metadata={"topic": topic.name, "kind": "base"},
    )


def derive_table(
    base_table: Table,
    *,
    name: str,
    rng: np.random.Generator,
    min_rows: int = 3,
    min_columns: int = 2,
    required_columns: tuple[str, ...] = (),
    max_row_fraction: float = 0.6,
    rename_probability: float = 0.3,
) -> Table:
    """Derive one lake/query table from a base table by select + project.

    This mirrors the TUS/SANTOS benchmark construction: sample a subset of the
    base rows, project a subset of its columns (always keeping
    ``required_columns``), and occasionally rename columns with topical
    variations (``Supervisor`` → ``Supervised By``) so exact-header matching
    cannot solve alignment.
    """
    if base_table.num_rows < min_rows:
        raise BenchmarkError(
            f"base table {base_table.name!r} has too few rows ({base_table.num_rows})"
        )
    num_rows = int(
        rng.integers(min_rows, max(min_rows + 1, int(base_table.num_rows * max_row_fraction)))
    )
    num_rows = min(num_rows, base_table.num_rows)
    row_positions = sorted(
        int(i) for i in rng.choice(base_table.num_rows, size=num_rows, replace=False)
    )

    optional = [column for column in base_table.columns if column not in required_columns]
    num_optional = int(rng.integers(
        max(0, min_columns - len(required_columns)),
        len(optional) + 1,
    ))
    keep_optional = set(
        optional[int(i)] for i in rng.choice(len(optional), size=num_optional, replace=False)
    ) if optional and num_optional > 0 else set()
    columns = [
        column
        for column in base_table.columns
        if column in required_columns or column in keep_optional
    ]
    if len(columns) < min_columns:
        columns = list(base_table.columns[:min_columns])

    derived = base_table.select_rows(row_positions).project(columns, name=name)

    renames: dict[str, str] = {}
    for column in derived.columns:
        if rng.random() < rename_probability:
            renames[column] = _rename_column(column, rng)
    if renames:
        derived = derived.rename_columns(renames, name=name)
    derived.metadata = dict(base_table.metadata)
    # Column provenance (derived header -> base header) is the ground truth the
    # column-alignment evaluation of Sec. 6.2.2 is scored against.
    provenance = {renames.get(column, column): column for column in columns}
    derived.metadata.update(
        {"kind": "derived", "base_table": base_table.name, "column_provenance": provenance}
    )
    return derived


_RENAME_PREFIXES = ("", "", "", "Listed ", "Official ", "Primary ")
_RENAME_SUFFIX_MAP = {
    "Supervisor": "Supervised By",
    "City": "Location City",
    "Country": "Country Name",
    "Title": "Name",
    "Artist": "Created By",
    "Director": "Directed By",
    "Owner": "Owned By",
}


def _rename_column(column: str, rng: np.random.Generator) -> str:
    """Produce a plausible header variation of ``column``."""
    if column in _RENAME_SUFFIX_MAP and rng.random() < 0.5:
        return _RENAME_SUFFIX_MAP[column]
    prefix = _RENAME_PREFIXES[int(rng.integers(len(_RENAME_PREFIXES)))]
    renamed = f"{prefix}{column}".strip()
    return renamed if renamed != column else f"{column} Info"
