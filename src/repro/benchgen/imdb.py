"""IMDB case-study lake (paper Sec. 6.6).

The paper samples a ~500-movie, 13-column IMDB table into a query table and
20 unionable lake tables (avg. 97 tuples, 13 columns) to study how many *new*
values each method adds to the query's columns.  Without the IMDB dump, the
same structure is generated from a synthetic movie catalogue; the evaluation
code (counting novel values per column) is identical either way.
"""

from __future__ import annotations

from repro.api.registry import register_benchmark
from repro.benchgen.base_tables import generate_base_table
from repro.benchgen.topics import ColumnSpec, TopicSpec
from repro.benchgen.types import Benchmark
from repro.datalake.lake import DataLake
from repro.utils.errors import BenchmarkError
from repro.utils.rng import derive_seed, seeded_rng

#: The 13-column movie schema used for the case study.
_IMDB_TOPIC = TopicSpec(
    name="imdb_movies",
    columns=(
        ColumnSpec("title", "entity"),
        ColumnSpec("director", "person"),
        ColumnSpec("writer", "person"),
        ColumnSpec("lead_actor", "person"),
        ColumnSpec("genre", "category"),
        ColumnSpec("budget", "number", 100000, 250000000),
        ColumnSpec("gross", "number", 50000, 900000000),
        ColumnSpec("filming_locations", "city"),
        ColumnSpec("languages", "category"),
        ColumnSpec("country", "country"),
        ColumnSpec("release_year", "year", 1980, 2024),
        ColumnSpec("runtime_minutes", "number", 70, 220),
        ColumnSpec("rating", "number", 1, 10),
    ),
    stems=("Midnight", "Silent", "Falling", "Last", "Crimson", "Echo", "Broken",
           "Distant", "Paper", "Winter", "Neon", "Hollow", "Second", "Golden"),
    suffixes=("Horizon", "Promise", "Empire", "Voyage", "Legacy", "Station",
              "Letters", "Harbor", "Garden", "Protocol"),
    categories=("Drama", "Comedy", "Thriller", "Documentary", "Animation",
                "Action", "Romance", "English", "French", "Spanish", "Japanese",
                "Hindi", "Korean"),
    descriptors=("festival", "award", "sequel", "premiere", "cast", "remastered"),
)


@register_benchmark("imdb")
def generate_imdb_case_study(
    *,
    num_movies: int = 500,
    num_lake_tables: int = 20,
    rows_per_table: int = 97,
    query_rows: int = 40,
    seed: int = 4,
) -> Benchmark:
    """Generate the IMDB case-study benchmark.

    Every lake table is a random row sample of the full movie catalogue over
    the full 13-column schema (the case study "only aims to examine diversity
    and thus only contains unionable tables/tuples"), so all lake tables are
    in the query's ground-truth unionable set.
    """
    if rows_per_table > num_movies or query_rows > num_movies:
        raise BenchmarkError(
            "rows_per_table and query_rows must not exceed num_movies"
        )
    rng = seeded_rng(derive_seed(seed, "imdb"))
    catalogue = generate_base_table(
        _IMDB_TOPIC, num_rows=num_movies, seed=seed, name="imdb_catalogue",
        null_fraction=0.0,
    )

    query_positions = sorted(
        int(i) for i in rng.choice(num_movies, size=query_rows, replace=False)
    )
    query = catalogue.select_rows(query_positions, name="imdb_query")
    query.metadata = {"topic": _IMDB_TOPIC.name, "kind": "query"}

    lake = DataLake(name="imdb-lake")
    lake_names = []
    for index in range(num_lake_tables):
        positions = sorted(
            int(i) for i in rng.choice(num_movies, size=rows_per_table, replace=False)
        )
        table = catalogue.select_rows(positions, name=f"imdb_lake_{index}")
        table.metadata = {"topic": _IMDB_TOPIC.name, "kind": "derived", "base_table": "imdb_catalogue"}
        lake.add(table)
        lake_names.append(table.name)

    return Benchmark(
        name="imdb-case-study",
        lake=lake,
        query_tables=[query],
        ground_truth={query.name: lake_names},
        unionable_groups={"imdb_movies": [query.name, *lake_names]},
    )
