"""UGEN-V1 benchmark generator (Pal et al. [39]; paper Sec. 6.1.3).

UGEN-V1 is a small, LLM-generated benchmark: 50 query tables from distinct
topics, each with 10 unionable and 10 non-unionable lake tables on a related
topic, ~10 rows per table.  The generator reproduces this shape: unionable
tables derive from the query's topic base table, non-unionable ones come from
a *different* topic (paired deterministically), and all tables are small.
"""

from __future__ import annotations

from repro.api.registry import register_benchmark
from repro.benchgen.base_tables import derive_table, generate_base_table
from repro.benchgen.topics import default_topics
from repro.benchgen.types import Benchmark
from repro.datalake.lake import DataLake
from repro.utils.errors import BenchmarkError
from repro.utils.rng import derive_seed, seeded_rng


@register_benchmark("ugen")
def generate_ugen_benchmark(
    *,
    num_queries: int = 10,
    unionable_per_query: int = 10,
    non_unionable_per_query: int = 10,
    rows_per_table: int = 10,
    seed: int = 3,
) -> Benchmark:
    """Generate a UGEN-V1-style benchmark.

    Each query topic contributes ``unionable_per_query`` unionable lake tables
    (derived from the same topical base table) and ``non_unionable_per_query``
    distractor tables generated from the *next* topic in the catalogue, so the
    distractors are thematically plausible but non-unionable — the property
    that makes UGEN-V1 harder than value-overlap benchmarks.
    """
    topics = default_topics()
    if num_queries > len(topics):
        raise BenchmarkError(
            f"num_queries={num_queries} exceeds the {len(topics)} available topics"
        )
    rng = seeded_rng(derive_seed(seed, "ugen"))
    lake = DataLake(name="ugen-lake")
    query_tables = []
    ground_truth: dict[str, list[str]] = {}
    unionable_groups: dict[str, list[str]] = {}

    for index in range(num_queries):
        topic = topics[index]
        distractor_topic = topics[(index + 1) % len(topics)]
        base = generate_base_table(
            topic, num_rows=rows_per_table * 8, seed=derive_seed(seed, "ugen-base", index)
        )
        distractor_base = generate_base_table(
            distractor_topic,
            num_rows=rows_per_table * 8,
            seed=derive_seed(seed, "ugen-distractor", index),
        )

        query_name = f"ugen_{topic.name}_query"
        query = derive_table(
            base,
            name=query_name,
            rng=rng,
            min_rows=max(3, rows_per_table // 2),
            max_row_fraction=0.25,
            rename_probability=0.0,
        )
        query.metadata["kind"] = "query"
        query_tables.append(query)

        unionable_names = []
        for table_index in range(unionable_per_query):
            table_name = f"ugen_{topic.name}_unionable_{table_index}"
            lake.add(
                derive_table(
                    base,
                    name=table_name,
                    rng=rng,
                    min_rows=max(3, rows_per_table // 2),
                    max_row_fraction=0.25,
                )
            )
            unionable_names.append(table_name)

        for table_index in range(non_unionable_per_query):
            table_name = f"ugen_{topic.name}_distractor_{table_index}"
            lake.add(
                derive_table(
                    distractor_base,
                    name=table_name,
                    rng=rng,
                    min_rows=max(3, rows_per_table // 2),
                    max_row_fraction=0.25,
                )
            )

        ground_truth[query_name] = unionable_names
        unionable_groups[f"ugen_{topic.name}"] = [query_name, *unionable_names]

    return Benchmark(
        name="ugen-v1",
        lake=lake,
        query_tables=query_tables,
        ground_truth=ground_truth,
        unionable_groups=unionable_groups,
    )
