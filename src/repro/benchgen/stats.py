"""Benchmark statistics (paper Fig. 5).

Fig. 5 reports, for every benchmark, the number of query tables / columns /
tuples, the number of lake tables / columns / tuples, and the average number
of unionable tables per query.  These helpers compute the same rows for the
generated benchmarks and format them as the table the benchmark harness
prints.
"""

from __future__ import annotations

from typing import Iterable

from repro.benchgen.types import Benchmark, BenchmarkStatistics


def benchmark_statistics(benchmark: Benchmark) -> BenchmarkStatistics:
    """Compute the Fig. 5 statistics row for one benchmark."""
    query_columns = sum(table.num_columns for table in benchmark.query_tables)
    query_tuples = sum(table.num_rows for table in benchmark.query_tables)
    if benchmark.ground_truth:
        avg_unionable = sum(
            len(tables) for tables in benchmark.ground_truth.values()
        ) / len(benchmark.ground_truth)
    else:
        avg_unionable = 0.0
    return BenchmarkStatistics(
        name=benchmark.name,
        num_query_tables=len(benchmark.query_tables),
        num_query_columns=query_columns,
        num_query_tuples=query_tuples,
        num_lake_tables=benchmark.lake.num_tables,
        num_lake_columns=benchmark.lake.num_columns,
        num_lake_tuples=benchmark.lake.num_rows,
        avg_unionable_tables_per_query=avg_unionable,
    )


def statistics_table(benchmarks: Iterable[Benchmark]) -> str:
    """Format the Fig. 5 statistics of several benchmarks as an aligned table."""
    rows = [benchmark_statistics(benchmark) for benchmark in benchmarks]
    header = (
        f"{'Benchmark':<14} {'Q.Tables':>9} {'Q.Cols':>7} {'Q.Tuples':>9} "
        f"{'L.Tables':>9} {'L.Cols':>7} {'L.Tuples':>9} {'AvgUnion/Q':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<14} {row.num_query_tables:>9} {row.num_query_columns:>7} "
            f"{row.num_query_tuples:>9} {row.num_lake_tables:>9} "
            f"{row.num_lake_columns:>7} {row.num_lake_tuples:>9} "
            f"{row.avg_unionable_tables_per_query:>11.1f}"
        )
    return "\n".join(lines)
