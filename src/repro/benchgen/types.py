"""Benchmark container types shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import BenchmarkError


@dataclass
class Benchmark:
    """A generated table-union-search benchmark.

    Attributes
    ----------
    name:
        Benchmark identifier (``"tus"``, ``"santos"``, ``"ugen-v1"``, ...).
    lake:
        The data lake tables.
    query_tables:
        The query tables (kept outside the lake, as in the original
        benchmarks).
    ground_truth:
        ``query table name -> unionable lake table names``.
    unionable_groups:
        ``group id -> table names`` where all tables of a group (queries and
        lake tables alike) derive from the same base table and are therefore
        mutually unionable; tables in different groups are non-unionable.
    """

    name: str
    lake: DataLake
    query_tables: list[Table] = field(default_factory=list)
    ground_truth: dict[str, list[str]] = field(default_factory=dict)
    unionable_groups: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lake_names = set(self.lake.table_names())
        for query, tables in self.ground_truth.items():
            missing = [name for name in tables if name not in lake_names]
            if missing:
                raise BenchmarkError(
                    f"ground truth of query {query!r} references unknown lake "
                    f"tables {missing[:3]}"
                )

    def query_table(self, name: str) -> Table:
        """Return the query table called ``name``."""
        for table in self.query_tables:
            if table.name == name:
                return table
        raise BenchmarkError(f"benchmark {self.name!r} has no query table {name!r}")

    def unionable_tables(self, query_name: str) -> list[Table]:
        """Ground-truth unionable lake tables of a query."""
        return [self.lake.get(name) for name in self.ground_truth.get(query_name, [])]

    def group_of(self, table_name: str) -> str | None:
        """Return the unionable group containing ``table_name`` (or ``None``)."""
        for group, members in self.unionable_groups.items():
            if table_name in members:
                return group
        return None


@dataclass(frozen=True)
class BenchmarkStatistics:
    """The per-benchmark statistics reported in Fig. 5 of the paper."""

    name: str
    num_query_tables: int
    num_query_columns: int
    num_query_tuples: int
    num_lake_tables: int
    num_lake_columns: int
    num_lake_tuples: int
    avg_unionable_tables_per_query: float
