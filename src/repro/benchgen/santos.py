"""SANTOS benchmark generator (Khatiwada et al. [24]; paper Sec. 6.1.2).

The SANTOS benchmark follows the TUS construction but additionally requires
every derived table to preserve at least one *binary relationship* of its base
table (a subject–object column pair).  The generator enforces that by always
keeping each topic's relationship column pair in the projection.
"""

from __future__ import annotations

from repro.api.registry import register_benchmark
from repro.benchgen.topics import default_topics
from repro.benchgen.tus import _build_derivation_benchmark
from repro.benchgen.types import Benchmark


@register_benchmark("santos")
def generate_santos_benchmark(
    *,
    num_base_tables: int = 10,
    base_rows: int = 150,
    lake_tables_per_base: int = 11,
    num_queries: int = 10,
    seed: int = 2,
) -> Benchmark:
    """Generate a SANTOS-style benchmark (relationship-preserving derivations).

    Defaults approximate the original benchmark's shape (50 queries over 550
    lake tables with ~11 unionable tables per query) at reduced scale; raise
    ``num_base_tables``/``num_queries`` to approach the published size.
    """
    topics = default_topics()
    # Use a different topic slice than TUS so the two benchmarks do not share
    # base tables (mirrors the disjoint provenance of the real benchmarks).
    rotated = topics[8:] + topics[:8]
    queries_per_base = max(1, num_queries // num_base_tables)
    benchmark = _build_derivation_benchmark(
        name="santos",
        topics=rotated,
        num_base_tables=num_base_tables,
        base_rows=base_rows,
        lake_tables_per_base=lake_tables_per_base,
        queries_per_base=queries_per_base,
        seed=seed,
        required_columns="relationship",
        max_row_fraction=0.5,
    )
    benchmark.query_tables = benchmark.query_tables[:num_queries]
    kept = {table.name for table in benchmark.query_tables}
    benchmark.ground_truth = {
        query: tables for query, tables in benchmark.ground_truth.items() if query in kept
    }
    return benchmark
