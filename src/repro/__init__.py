"""DUST — Diverse Unionable Tuple Search.

Reproduction of Khatiwada, Shraga & Miller, *Diverse Unionable Tuple Search:
Novelty-Driven Discovery in Data Lakes* (EDBT 2026).

The public API is organised by subsystem:

* :mod:`repro.api` — the unified discovery API: component registries,
  the declarative :class:`~repro.api.config.DiscoveryConfig`, the
  :class:`~repro.api.facade.Discovery` facade with fluent queries, and the
  ``python -m repro`` / ``dust`` command line.
* :mod:`repro.core` — the DUST pipeline (Algorithm 1), the DUST diversifier
  (Algorithm 2) and the diversity metrics (Eq. 1 / Eq. 2).
* :mod:`repro.vectorops` — the shared vector engine: dtype-controlled
  embedding matrices (:class:`~repro.vectorops.EmbeddingMatrix`) and the
  lazily-cached per-query distance matrices
  (:class:`~repro.vectorops.DistanceContext`) that every stage of Algorithm 2
  and every diversification baseline draw their distances from.
* :mod:`repro.datalake` — tables, data lakes and CSV I/O.
* :mod:`repro.search` — table union search techniques (overlap, Starmie-like,
  D3L-like, SANTOS-like, ground-truth oracle).
* :mod:`repro.serving` — the persistent index store and the parallel,
  LRU-cached multi-query search service built on top of ``repro.search``.
* :mod:`repro.alignment` — holistic and bipartite column alignment plus outer
  union.
* :mod:`repro.embeddings` — word/contextual encoders, column embedders and
  tuple serialization.
* :mod:`repro.models` — the DUST fine-tuned tuple model and baselines.
* :mod:`repro.diversify` — IR diversification baselines (GMC, GNE, CLT, ...).
* :mod:`repro.benchgen` — synthetic TUS / SANTOS / UGEN-V1 / IMDB benchmark
  generators.
* :mod:`repro.evaluation` — the experiment harness behind every table and
  figure of the paper.
"""

from repro.core import (
    DustConfig,
    DustDiversifier,
    DustPipeline,
    DustResult,
    PipelineConfig,
    average_diversity,
    diversity_scores,
    min_diversity,
)
from repro.datalake import DataLake, Table
from repro.serving import IndexStore, QueryService
from repro.vectorops import DistanceContext, EmbeddingMatrix

__version__ = "1.1.0"

#: Unified-API names served lazily (PEP 562): the facade imports the pipeline
#: and serving layers, so resolving them on first access keeps ``import
#: repro`` cheap and free of circular imports with the self-registering
#: implementation modules.
_API_EXPORTS = {
    "Discovery",
    "DiscoveryConfig",
    "DiscoveryQuery",
    "ComponentSpec",
    "ResultSet",
}


def __getattr__(name: str):
    if name in _API_EXPORTS:
        import repro.api

        return getattr(repro.api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Discovery",
    "DiscoveryConfig",
    "DiscoveryQuery",
    "ComponentSpec",
    "ResultSet",
    "DistanceContext",
    "EmbeddingMatrix",
    "DustConfig",
    "DustDiversifier",
    "DustPipeline",
    "DustResult",
    "PipelineConfig",
    "average_diversity",
    "diversity_scores",
    "min_diversity",
    "DataLake",
    "Table",
    "IndexStore",
    "QueryService",
    "__version__",
]
