"""Embedding substrate: tokenizers, word/contextual encoders, column embedders.

The paper builds on pre-trained FastText/GloVe word vectors and BERT-family
transformer encoders.  Those models cannot be downloaded in this offline
environment, so this package provides deterministic, from-scratch stand-ins
(hash-derived vector spaces, see :mod:`repro.embeddings.hashing`) that expose
the same interfaces:

* :class:`TupleEncoder` — ``encode_tuple(serialized_text) -> np.ndarray``
* :class:`ColumnEncoder` — ``encode_column(values) -> np.ndarray``

Higher layers (column alignment, union search, the DUST fine-tuned model) are
written purely against these interfaces.
"""

from repro.embeddings.base import ColumnEncoder, TupleEncoder, EncoderInfo
from repro.embeddings.tokenizer import Tokenizer, TokenizedCell
from repro.embeddings.tfidf import TfidfSelector
from repro.embeddings.hashing import HashedVectorSpace
from repro.embeddings.word import FastTextLikeModel, GloveLikeModel
from repro.embeddings.contextual import (
    BertLikeModel,
    RobertaLikeModel,
    SentenceBertLikeModel,
    ContextualEncoder,
)
from repro.embeddings.serialization import serialize_tuple, serialize_column, AlignedTuple
from repro.embeddings.column import (
    CellLevelColumnEncoder,
    ColumnLevelColumnEncoder,
    StarmieColumnEncoder,
)

__all__ = [
    "ColumnEncoder",
    "TupleEncoder",
    "EncoderInfo",
    "Tokenizer",
    "TokenizedCell",
    "TfidfSelector",
    "HashedVectorSpace",
    "FastTextLikeModel",
    "GloveLikeModel",
    "BertLikeModel",
    "RobertaLikeModel",
    "SentenceBertLikeModel",
    "ContextualEncoder",
    "serialize_tuple",
    "serialize_column",
    "AlignedTuple",
    "CellLevelColumnEncoder",
    "ColumnLevelColumnEncoder",
    "StarmieColumnEncoder",
]
