"""Abstract encoder interfaces shared by every embedding model in the library."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np


@dataclass(frozen=True)
class EncoderInfo:
    """Descriptive metadata about an encoder (used in experiment reports)."""

    name: str
    dimension: int
    family: str
    is_finetuned: bool = False


class TupleEncoder(abc.ABC):
    """Maps a serialized tuple (a string) to a fixed-dimension embedding."""

    @property
    @abc.abstractmethod
    def info(self) -> EncoderInfo:
        """Metadata describing this encoder."""

    @property
    def dimension(self) -> int:
        """Output embedding dimensionality."""
        return self.info.dimension

    @abc.abstractmethod
    def encode_text(self, text: str) -> np.ndarray:
        """Encode a single serialized tuple into a 1-D float vector."""

    def encode_many(self, texts: Sequence[str]) -> np.ndarray:
        """Encode a batch of serialized tuples into a ``(n, dim)`` matrix.

        This is the batch entry point the pipeline's embedding stage calls.
        The default loops over :meth:`encode_text`; encoders with a cheaper
        batch path (shared token matrices, one matmul for the whole batch)
        override it — row ``i`` must stay identical to
        ``encode_text(texts[i])``.
        """
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.vstack([self.encode_text(text) for text in texts])


class ColumnEncoder(abc.ABC):
    """Maps the values of one column to a fixed-dimension embedding."""

    @property
    @abc.abstractmethod
    def info(self) -> EncoderInfo:
        """Metadata describing this encoder."""

    @property
    def dimension(self) -> int:
        """Output embedding dimensionality."""
        return self.info.dimension

    @abc.abstractmethod
    def encode_column(self, header: str, values: Sequence[Any]) -> np.ndarray:
        """Encode a column given its header and cell values."""


def l2_normalize(vector: np.ndarray, *, epsilon: float = 1e-12) -> np.ndarray:
    """Return ``vector`` scaled to unit L2 norm (zero vectors stay zero)."""
    norm = float(np.linalg.norm(vector))
    if norm < epsilon:
        return np.zeros_like(vector)
    return vector / norm


def l2_normalize_rows(matrix: np.ndarray, *, epsilon: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalisation of a 2-D matrix."""
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms < epsilon, 1.0, norms)
    return matrix / norms
