"""A deterministic word-level tokenizer with BERT-style special tokens.

The paper serialises tuples as ``[CLS] c1 v1 [SEP] c2 v2 ... [SEP]`` and feeds
the token stream into a transformer with a 512-token limit.  This tokenizer
reproduces the token accounting (special tokens, truncation, numeric marking)
without a sub-word vocabulary: tokens are normalised words plus the special
markers, which is all the downstream hashed encoders need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.utils.text import is_null, is_numeric, normalize_text

#: Special tokens mirroring the BERT conventions used by the paper.
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
NULL_TOKEN = "[NULL]"
NUM_TOKEN = "[NUM]"

SPECIAL_TOKENS = (CLS_TOKEN, SEP_TOKEN, NULL_TOKEN, NUM_TOKEN)

#: Maximum sequence length of the BERT-family models used in the paper.
MAX_SEQUENCE_LENGTH = 512


@dataclass(frozen=True)
class TokenizedCell:
    """Tokens of a single cell value, with a numeric flag."""

    tokens: tuple[str, ...]
    numeric: bool


class Tokenizer:
    """Whitespace/word tokenizer with normalisation and numeric handling.

    Parameters
    ----------
    mark_numbers:
        When true, numeric tokens are replaced by :data:`NUM_TOKEN` followed by
        a coarse magnitude bucket token (``[NUM] mag3`` for values in the
        thousands).  This mirrors how language models see numbers as mostly
        uninformative surface forms while retaining scale information.
    max_length:
        Hard cap on the number of tokens returned by :meth:`tokenize_sequence`.
    """

    def __init__(self, *, mark_numbers: bool = True, max_length: int = MAX_SEQUENCE_LENGTH) -> None:
        if max_length <= 0:
            raise ValueError(f"max_length must be positive, got {max_length}")
        self.mark_numbers = mark_numbers
        self.max_length = max_length

    # ----------------------------------------------------------------- cells
    def tokenize_value(self, value: Any) -> TokenizedCell:
        """Tokenize a single cell value."""
        if is_null(value):
            return TokenizedCell(tokens=(NULL_TOKEN,), numeric=False)
        if self.mark_numbers and is_numeric(value):
            bucket = self._magnitude_bucket(value)
            return TokenizedCell(tokens=(NUM_TOKEN, bucket), numeric=True)
        words = normalize_text(value).split()
        if not words:
            return TokenizedCell(tokens=(NULL_TOKEN,), numeric=False)
        return TokenizedCell(tokens=tuple(words), numeric=False)

    def tokenize_text(self, text: str) -> list[str]:
        """Tokenize free text (used for serialized tuples).

        Bracketed special tokens are preserved as-is; everything else is
        normalised word by word.
        """
        tokens: list[str] = []
        for raw in str(text).split():
            if raw in SPECIAL_TOKENS:
                tokens.append(raw)
                continue
            if self.mark_numbers and is_numeric(raw):
                tokens.append(NUM_TOKEN)
                tokens.append(self._magnitude_bucket(raw))
                continue
            normalized = normalize_text(raw)
            if normalized:
                tokens.extend(normalized.split())
        return tokens[: self.max_length]

    def tokenize_sequence(self, values: Sequence[Any]) -> list[str]:
        """Tokenize a sequence of cell values into one flat token list."""
        tokens: list[str] = []
        for value in values:
            tokens.extend(self.tokenize_value(value).tokens)
            if len(tokens) >= self.max_length:
                break
        return tokens[: self.max_length]

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _magnitude_bucket(value: Any) -> str:
        """Return a coarse order-of-magnitude token for a numeric value."""
        try:
            number = abs(float(str(value).replace(",", "")))
        except ValueError:
            return "mag0"
        if number == 0:
            return "mag0"
        magnitude = 0
        while number >= 10 and magnitude < 12:
            number /= 10.0
            magnitude += 1
        return f"mag{magnitude}"
