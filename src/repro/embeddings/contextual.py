"""Contextual (transformer-like) encoders.

BERT, RoBERTa and Sentence-BERT cannot be downloaded in this offline
environment.  Their role in the paper, however, is narrow and well defined:

1. produce a fixed 768-dimension embedding for a serialized tuple or column,
2. place text sharing vocabulary/context nearby, and
3. — crucially for Fig. 6 — *without fine-tuning* they separate unionable from
   non-unionable tuples no better than a coin toss.

:class:`ContextualEncoder` reproduces these properties with a deterministic
random-weight encoder: hashed token embeddings, sinusoidal position signals,
one or more fixed random mixing layers with a tanh non-linearity, then either
CLS-style first-token pooling or mean pooling.  Because the mixing weights are
random (not trained), the resulting space is only weakly aligned with
unionability — the behaviour the paper reports for pre-trained models — while
the fine-tuning head of :mod:`repro.models` can still learn a good space on
top of the same features.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.api.registry import register_tuple_encoder
from repro.embeddings.base import EncoderInfo, TupleEncoder, l2_normalize
from repro.embeddings.hashing import HashedVectorSpace
from repro.embeddings.tokenizer import CLS_TOKEN, MAX_SEQUENCE_LENGTH, Tokenizer
from repro.utils.rng import stable_hash


def _position_encoding(length: int, dimension: int) -> np.ndarray:
    """Sinusoidal position encodings (Vaswani et al.) of shape ``(length, dim)``."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(dimension)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dimension)
    angles = positions * angle_rates
    encoding = np.zeros((length, dimension), dtype=np.float64)
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class ContextualEncoder(TupleEncoder):
    """Deterministic random-weight contextual encoder.

    Parameters
    ----------
    name:
        Model family name; also namespaces the token vector space and the
        random mixing weights so distinct families are uncorrelated.
    dimension:
        Embedding size (768 to match the paper).
    num_layers:
        Number of fixed mixing layers (loosely "transformer depth").
    pooling:
        ``"cls"`` pools the first token (BERT/RoBERTa convention) mixed with a
        small amount of mean pooling; ``"mean"`` uses pure mean pooling
        (Sentence-BERT convention).
    context_weight:
        How strongly each token is blended with the sequence context before
        mixing.  Larger values make all tokens of one sequence more alike.
    """

    def __init__(
        self,
        name: str,
        *,
        dimension: int = 768,
        num_layers: int = 2,
        pooling: str = "cls",
        context_weight: float = 0.5,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        if pooling not in {"cls", "mean"}:
            raise ValueError(f"pooling must be 'cls' or 'mean', got {pooling!r}")
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        self._info = EncoderInfo(name=name, dimension=dimension, family="contextual")
        self._space = HashedVectorSpace(dimension, seed_namespace=f"ctx::{name}")
        self._tokenizer = tokenizer or Tokenizer()
        self._num_layers = num_layers
        self._pooling = pooling
        self._context_weight = context_weight
        self._weights = [self._layer_weights(layer) for layer in range(num_layers)]

    # ------------------------------------------------------------ construction
    def _layer_weights(self, layer: int) -> np.ndarray:
        """Fixed orthogonal-ish mixing matrix for one layer."""
        seed = stable_hash(f"{self._info.name}::layer::{layer}")
        rng = np.random.default_rng(seed)
        dimension = self._info.dimension
        matrix = rng.standard_normal((dimension, dimension)) / np.sqrt(dimension)
        return matrix

    @property
    def info(self) -> EncoderInfo:
        return self._info

    # ---------------------------------------------------------------- encoding
    def encode_tokens(self, tokens: list[str]) -> np.ndarray:
        """Encode a pre-tokenized sequence into one embedding."""
        if not tokens:
            return np.zeros(self.dimension, dtype=np.float64)
        tokens = tokens[:MAX_SEQUENCE_LENGTH]
        hidden = np.vstack([self._space.token_vector(token) for token in tokens])
        hidden = hidden + 0.05 * _cached_positions(len(tokens), self.dimension)
        for weights in self._weights:
            context = hidden.mean(axis=0, keepdims=True)
            blended = (1.0 - self._context_weight) * hidden + self._context_weight * context
            hidden = np.tanh(blended @ weights) + hidden
        if self._pooling == "mean":
            pooled = hidden.mean(axis=0)
        else:
            pooled = 0.7 * hidden[0] + 0.3 * hidden.mean(axis=0)
        return l2_normalize(pooled)

    def encode_text(self, text: str) -> np.ndarray:
        """Tokenize and encode a serialized tuple / column sentence."""
        tokens = self._tokenizer.tokenize_text(text)
        if tokens and tokens[0] != CLS_TOKEN:
            tokens = [CLS_TOKEN, *tokens]
        return self.encode_tokens(tokens)


@lru_cache(maxsize=8)
def _cached_positions(length: int, dimension: int) -> np.ndarray:
    """Cache position encodings; lengths repeat heavily across tuples."""
    return _position_encoding(length, dimension)


@register_tuple_encoder("bert")
class BertLikeModel(ContextualEncoder):
    """Stand-in for pre-trained BERT-base (768-d, CLS pooling)."""

    def __init__(self, dimension: int = 768, *, tokenizer: Tokenizer | None = None) -> None:
        super().__init__(
            "bert-like",
            dimension=dimension,
            num_layers=2,
            pooling="cls",
            context_weight=0.5,
            tokenizer=tokenizer,
        )


@register_tuple_encoder("roberta")
class RobertaLikeModel(ContextualEncoder):
    """Stand-in for pre-trained RoBERTa-base.

    RoBERTa is pre-trained longer on more data than BERT; its stand-in mixes
    slightly deeper and keeps more per-token signal, which in practice gives it
    marginally better column-alignment scores, matching the ordering in
    Table 1 of the paper.
    """

    def __init__(self, dimension: int = 768, *, tokenizer: Tokenizer | None = None) -> None:
        super().__init__(
            "roberta-like",
            dimension=dimension,
            num_layers=3,
            pooling="cls",
            context_weight=0.35,
            tokenizer=tokenizer,
        )


@register_tuple_encoder("sbert")
class SentenceBertLikeModel(ContextualEncoder):
    """Stand-in for Sentence-BERT (mean pooling over token states)."""

    def __init__(self, dimension: int = 768, *, tokenizer: Tokenizer | None = None) -> None:
        super().__init__(
            "sbert-like",
            dimension=dimension,
            num_layers=2,
            pooling="mean",
            context_weight=0.4,
            tokenizer=tokenizer,
        )
