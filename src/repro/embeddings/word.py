"""Static word-embedding models (FastText-like and GloVe-like).

These are the offline stand-ins for the FastText [23] and GloVe [40] word
vectors used as column-alignment baselines in Table 1.  Both expose the
:class:`~repro.embeddings.base.TupleEncoder` interface so they can also embed
serialized tuples when needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_tuple_encoder
from repro.embeddings.base import EncoderInfo, TupleEncoder, l2_normalize
from repro.embeddings.hashing import HashedVectorSpace
from repro.embeddings.tokenizer import Tokenizer


class _StaticWordModel(TupleEncoder):
    """Shared implementation: average of per-token static vectors."""

    def __init__(
        self,
        name: str,
        *,
        dimension: int,
        use_subwords: bool,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self._info = EncoderInfo(name=name, dimension=dimension, family="word")
        self._space = HashedVectorSpace(
            dimension, use_subwords=use_subwords, seed_namespace=name
        )
        self._tokenizer = tokenizer or Tokenizer()

    @property
    def info(self) -> EncoderInfo:
        return self._info

    @property
    def vector_space(self) -> HashedVectorSpace:
        """The underlying token vector space (exposed for column encoders)."""
        return self._space

    def encode_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Encode a pre-tokenized token list."""
        return l2_normalize(self._space.encode_tokens(list(tokens)))

    def encode_text(self, text: str) -> np.ndarray:
        """Encode free text by averaging its token vectors."""
        tokens = self._tokenizer.tokenize_text(text)
        return self.encode_tokens(tokens)

    def encode_many(self, texts: Sequence[str]) -> np.ndarray:
        """True batch encoding: one shared token matrix for the whole batch.

        Tokenisation still runs per text, but every distinct token vector is
        materialised once for the batch (instead of once per occurrence via
        the per-text ``vstack`` loop) and rows are normalised in one pass.
        Row ``i`` is bit-identical to ``encode_text(texts[i])``.
        """
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        token_lists = [self._tokenizer.tokenize_text(text) for text in texts]
        encoded = self._space.encode_token_batches(token_lists)
        # Per-row np.linalg.norm keeps each row bit-identical to the
        # encode_text path (the axis=1 reduction sums in a different order).
        norms = np.array([np.linalg.norm(row) for row in encoded])
        zero = norms < 1e-12
        safe = np.where(zero, 1.0, norms)
        encoded = encoded / safe[:, None]
        encoded[zero] = 0.0
        return encoded


@register_tuple_encoder("fasttext")
class FastTextLikeModel(_StaticWordModel):
    """FastText-style model: token vectors composed from character n-grams.

    Subword composition means morphologically related tokens (``park``,
    ``parks``, ``parking``) receive nearby vectors, mirroring FastText's
    robustness to out-of-vocabulary words.
    """

    def __init__(self, dimension: int = 300, *, tokenizer: Tokenizer | None = None) -> None:
        super().__init__(
            "fasttext-like", dimension=dimension, use_subwords=True, tokenizer=tokenizer
        )


@register_tuple_encoder("glove")
class GloveLikeModel(_StaticWordModel):
    """GloVe-style model: one independent vector per whole token."""

    def __init__(self, dimension: int = 300, *, tokenizer: Tokenizer | None = None) -> None:
        super().__init__(
            "glove-like", dimension=dimension, use_subwords=False, tokenizer=tokenizer
        )
