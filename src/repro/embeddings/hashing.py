"""Deterministic hashed vector space.

Pre-trained word vectors are unavailable offline, so every token is mapped to
a deterministic pseudo-random unit vector derived from a SHA-256 hash of the
token (and, optionally, of its character n-grams).  Averaging token vectors is
then a random projection of the bag-of-words representation: two pieces of
text that share vocabulary land close together, disjoint vocabularies land far
apart.  That is exactly the property the paper relies on word/transformer
embeddings for, which makes this an adequate offline substitute.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import stable_hash
from repro.utils.text import character_ngrams


class HashedVectorSpace:
    """Deterministic token-to-vector lookup with optional subword composition.

    Parameters
    ----------
    dimension:
        Output vector dimensionality.
    use_subwords:
        When true a token's vector is the mean of its own hash vector and the
        hash vectors of its character 3–5 grams (FastText behaviour: related
        surface forms such as ``park``/``parks`` share most subwords and hence
        embed nearby).  When false each token gets an independent vector
        (GloVe/word2vec behaviour).
    seed_namespace:
        Distinct namespaces yield uncorrelated vector spaces; this is how the
        library gives BERT-like, RoBERTa-like and sBERT-like encoders different
        base representations.
    """

    def __init__(
        self,
        dimension: int = 300,
        *,
        use_subwords: bool = False,
        seed_namespace: str = "default",
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self.use_subwords = use_subwords
        self.seed_namespace = seed_namespace
        self._cache: dict[str, np.ndarray] = {}

    # ----------------------------------------------------------------- tokens
    def _raw_vector(self, key: str) -> np.ndarray:
        """Deterministic unit vector for an arbitrary string key."""
        seed = stable_hash(f"{self.seed_namespace}::{key}")
        rng = np.random.default_rng(seed)
        vector = rng.standard_normal(self.dimension)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def token_vector(self, token: str) -> np.ndarray:
        """Return the (cached) vector of ``token``."""
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        if self.use_subwords:
            pieces = [self._raw_vector(token)]
            pieces.extend(self._raw_vector(gram) for gram in character_ngrams(token))
            vector = np.mean(pieces, axis=0)
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm
        else:
            vector = self._raw_vector(token)
        self._cache[token] = vector
        return vector

    # -------------------------------------------------------------- sequences
    def encode_tokens(
        self,
        tokens: Sequence[str],
        *,
        weights: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Average (optionally weighted) token vectors into one vector.

        Empty token lists map to the zero vector, which downstream cosine
        computations treat as maximally dissimilar from everything.
        """
        if not tokens:
            return np.zeros(self.dimension, dtype=np.float64)
        if weights is not None and len(weights) != len(tokens):
            raise ValueError(
                f"got {len(weights)} weights for {len(tokens)} tokens"
            )
        matrix = np.vstack([self.token_vector(token) for token in tokens])
        if weights is None:
            return matrix.mean(axis=0)
        weight_array = np.asarray(weights, dtype=np.float64)
        total = float(weight_array.sum())
        if total <= 0:
            return matrix.mean(axis=0)
        return (matrix * weight_array[:, None]).sum(axis=0) / total

    def token_matrix(self, tokens: Sequence[str]) -> np.ndarray:
        """Stack the (cached) vectors of ``tokens`` into a ``(len, dim)`` matrix."""
        if not tokens:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.vstack([self.token_vector(token) for token in tokens])

    def encode_token_batches(
        self, token_lists: Sequence[Sequence[str]]
    ) -> np.ndarray:
        """Encode many token lists into a ``(len(token_lists), dim)`` matrix.

        The vector of every *distinct* token across the batch is materialised
        exactly once; each document's embedding is then a mean over rows of
        that shared matrix.  Row ``i`` is bit-identical to
        ``encode_tokens(token_lists[i])``.
        """
        if not token_lists:
            return np.zeros((0, self.dimension), dtype=np.float64)

        vocabulary: dict[str, int] = {}
        for tokens in token_lists:
            for token in tokens:
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
        shared = self.token_matrix(list(vocabulary))

        encoded = np.zeros((len(token_lists), self.dimension), dtype=np.float64)
        for row, tokens in enumerate(token_lists):
            if tokens:
                encoded[row] = shared[[vocabulary[token] for token in tokens]].mean(axis=0)
        return encoded

    def cache_size(self) -> int:
        """Number of token vectors currently memoised."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised token vectors."""
        self._cache.clear()
