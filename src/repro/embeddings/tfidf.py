"""TF-IDF token selection.

The column-level serialization in the paper concatenates all cell values of a
column into one sentence, but the BERT-family models have a 512-token limit;
following the literature the paper keeps the 512 most representative tokens of
each column ranked by TF-IDF (Sec. 6.2.3).  :class:`TfidfSelector` implements
that selection over a corpus of columns.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.utils.errors import EmbeddingError


class TfidfSelector:
    """Ranks tokens of a document by TF-IDF against a fitted corpus.

    The corpus is a collection of token lists (one per column).  ``fit`` learns
    document frequencies; ``select`` returns the top-``limit`` tokens of a new
    document ordered by decreasing TF-IDF weight (ties broken by first
    occurrence so the selection is deterministic).
    """

    def __init__(self) -> None:
        self._document_frequency: Counter[str] = Counter()
        self._num_documents = 0

    # ---------------------------------------------------------------- fitting
    def fit(self, documents: Iterable[Sequence[str]]) -> "TfidfSelector":
        """Learn document frequencies from ``documents`` (token lists)."""
        self._document_frequency.clear()
        self._num_documents = 0
        for tokens in documents:
            self._num_documents += 1
            for token in set(tokens):
                self._document_frequency[token] += 1
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called on a non-empty corpus."""
        return self._num_documents > 0

    def state_dict(self) -> dict:
        """JSON-serializable fitted state (document frequencies + corpus size)."""
        return {
            "num_documents": self._num_documents,
            "document_frequency": dict(self._document_frequency),
        }

    def load_state_dict(self, state: dict) -> "TfidfSelector":
        """Restore the state produced by :meth:`state_dict`.

        Frequencies are integers, so a round-trip through JSON reproduces
        :meth:`idf` bit-identically.
        """
        self._num_documents = int(state["num_documents"])
        self._document_frequency = Counter(
            {str(token): int(count) for token, count in state["document_frequency"].items()}
        )
        return self

    # ---------------------------------------------------------------- scoring
    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        if not self.is_fitted:
            raise EmbeddingError("TfidfSelector.idf called before fit()")
        document_frequency = self._document_frequency.get(token, 0)
        return math.log((1 + self._num_documents) / (1 + document_frequency)) + 1.0

    def weights(self, tokens: Sequence[str]) -> dict[str, float]:
        """Return TF-IDF weight per distinct token of a document."""
        if not tokens:
            return {}
        term_frequency = Counter(tokens)
        total = len(tokens)
        if self.is_fitted:
            return {
                token: (count / total) * self.idf(token)
                for token, count in term_frequency.items()
            }
        # Unfitted selector degrades gracefully to plain term frequency.
        return {token: count / total for token, count in term_frequency.items()}

    def select(self, tokens: Sequence[str], limit: int) -> list[str]:
        """Return up to ``limit`` tokens ranked by decreasing TF-IDF weight.

        The returned list preserves one occurrence per selected distinct token,
        which matches how the paper truncates column serializations.
        """
        return self.select_many([tokens], limit)[0]

    # --------------------------------------------------------------- batching
    def idf_many(self, tokens: Sequence[str]) -> dict[str, float]:
        """Smoothed IDF of every *distinct* token in ``tokens``, in one pass.

        Each distinct token's IDF is evaluated exactly once via :meth:`idf`
        (same ``math.log``, so single-document results stay bit-identical),
        instead of once per occurrence per document.
        """
        if not self.is_fitted:
            raise EmbeddingError("TfidfSelector.idf_many called before fit()")
        return {token: self.idf(token) for token in dict.fromkeys(tokens)}

    def select_many(
        self, documents: Sequence[Sequence[str]], limit: int
    ) -> list[list[str]]:
        """Batch :meth:`select`: rank every document against one shared IDF table.

        The IDF of each distinct token across the whole batch is computed
        once, so selecting tokens for every column of a table (or every table
        of a lake) no longer re-derives per-token IDFs document by document.
        """
        if limit <= 0:
            raise EmbeddingError(f"limit must be positive, got {limit}")
        shared_idf: dict[str, float] = {}
        if self.is_fitted:
            shared_idf = self.idf_many(
                [token for tokens in documents for token in tokens]
            )

        selected: list[list[str]] = []
        for tokens in documents:
            if not tokens:
                selected.append([])
                continue
            term_frequency = Counter(tokens)
            total = len(tokens)
            if self.is_fitted:
                weights = {
                    token: (count / total) * shared_idf[token]
                    for token, count in term_frequency.items()
                }
            else:
                weights = {token: count / total for token, count in term_frequency.items()}
            first_position: dict[str, int] = {}
            for position, token in enumerate(tokens):
                first_position.setdefault(token, position)
            ranked = sorted(
                weights.items(),
                key=lambda item: (-item[1], first_position[item[0]]),
            )
            selected.append([token for token, _ in ranked[:limit]])
        return selected
