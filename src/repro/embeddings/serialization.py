"""Tuple and column serialization.

Sec. 4 of the paper serialises a tuple ``t`` with columns ``c1..cn`` and
values ``v1..vn`` as::

    [CLS] c1 v1 [SEP] c2 v2 ... [SEP] cn vn [SEP]

Only the columns that aligned with the query table are serialised, using the
query table's headers and column order (Example 4).  :class:`AlignedTuple`
carries exactly that information through the pipeline, and
:func:`serialize_tuple` produces the string fed to the tuple encoders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.embeddings.tokenizer import CLS_TOKEN, SEP_TOKEN
from repro.utils.errors import EmbeddingError
from repro.utils.text import is_null


@dataclass(frozen=True)
class AlignedTuple:
    """One unionable tuple expressed in the query table's schema.

    Attributes
    ----------
    source_table:
        Name of the data lake table (or the query table) the tuple came from.
    source_row:
        Row position inside the source table.
    values:
        Mapping from query column header to the tuple's value for that column.
        Columns the source table could not fill are absent or ``None`` (the
        outer-union null padding of Sec. 3.3).
    """

    source_table: str
    source_row: int
    values: Mapping[str, Any] = field(default_factory=dict)

    def present_columns(self, column_order: Sequence[str]) -> list[str]:
        """Columns of ``column_order`` for which this tuple has a non-null value."""
        return [
            column
            for column in column_order
            if column in self.values and not is_null(self.values[column])
        ]

    def as_row(self, column_order: Sequence[str]) -> tuple[Any, ...]:
        """Materialise the tuple as a row following ``column_order`` (None padding)."""
        return tuple(self.values.get(column) for column in column_order)


def serialize_tuple(
    values: Mapping[str, Any],
    column_order: Sequence[str],
    *,
    skip_nulls: bool = True,
) -> str:
    """Serialize a tuple as ``[CLS] c1 v1 [SEP] c2 v2 ... [SEP]``.

    Parameters
    ----------
    values:
        Mapping from column header to value.
    column_order:
        Order in which columns are emitted — the paper always uses the query
        table's column order so that unionable tuples serialize consistently.
    skip_nulls:
        When true (paper behaviour, Example 4), columns whose value is missing
        are omitted from the serialization entirely.
    """
    if not column_order:
        raise EmbeddingError("cannot serialize a tuple with an empty column order")
    parts: list[str] = [CLS_TOKEN]
    emitted = 0
    for column in column_order:
        value = values.get(column)
        if skip_nulls and is_null(value):
            continue
        rendered = "" if value is None else str(value)
        parts.append(f"{column} {rendered}".strip())
        parts.append(SEP_TOKEN)
        emitted += 1
    if emitted == 0:
        # A fully-null tuple still needs a non-empty serialization.
        parts.append(SEP_TOKEN)
    return " ".join(parts)


def serialize_aligned_tuple(tuple_: AlignedTuple, column_order: Sequence[str]) -> str:
    """Serialize an :class:`AlignedTuple` using the query column order."""
    return serialize_tuple(dict(tuple_.values), column_order)


def serialize_column(header: str, values: Sequence[Any], *, max_values: int | None = None) -> str:
    """Serialize a column as ``header v1 v2 ...`` (column-level variation).

    ``max_values`` truncates the number of cell values included; TF-IDF-based
    selection of the most representative tokens is handled separately by the
    column encoders.
    """
    rendered = [str(value) for value in values if not is_null(value)]
    if max_values is not None:
        rendered = rendered[:max_values]
    return " ".join([str(header), *rendered]).strip()
