"""Column embedders used by column alignment (Table 1 of the paper).

Three families are provided, mirroring Sec. 6.2.3:

* :class:`CellLevelColumnEncoder` — embed every cell value independently with
  an underlying tuple/word encoder and average the cell embeddings.
* :class:`ColumnLevelColumnEncoder` — concatenate the column's values into one
  sentence (keeping at most 512 TF-IDF-selected tokens) and embed the sentence
  with a contextual encoder.
* :class:`StarmieColumnEncoder` — embed each column *with the context of its
  whole table* (a blend of the column sentence and a table-context vector).
  This reproduces the property the paper discusses: Starmie columns from the
  same table receive similar representations, which is good for table search
  but hurts column alignment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.api.registry import register_column_encoder
from repro.datalake.table import Table
from repro.embeddings.base import ColumnEncoder, EncoderInfo, TupleEncoder, l2_normalize
from repro.embeddings.serialization import serialize_column
from repro.embeddings.tfidf import TfidfSelector
from repro.embeddings.tokenizer import MAX_SEQUENCE_LENGTH, Tokenizer
from repro.utils.text import is_null


@dataclass
class CorpusContribution:
    """One table's share of a TF-IDF corpus fit, in exact integer form.

    A :class:`TfidfSelector` fit is a sum of per-document distinct-token
    counts, so one table's contribution — the number of column documents it
    adds and each token's document frequency among them — can be added to or
    subtracted from a fitted state with plain integer arithmetic.  Summing
    contributions in any order reproduces a from-scratch ``fit`` bit for bit,
    which is what lets :class:`~repro.search.starmie.StarmieSearcher` maintain
    its corpus statistics incrementally as the lake mutates.

    ``oversized`` records whether any of the table's column documents exceeds
    the encoder's token limit.  Only oversized documents are actually run
    through TF-IDF selection at encode time, so a table with
    ``oversized=False`` has embeddings that do not depend on the fitted state
    at all — the fact that makes most corpus-changing deltas safe to apply
    without re-encoding untouched tables.
    """

    num_documents: int = 0
    document_frequency: Counter = field(default_factory=Counter)
    oversized: bool = False

    def to_state(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_state`)."""
        return {
            "num_documents": self.num_documents,
            "document_frequency": dict(self.document_frequency),
            "oversized": self.oversized,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CorpusContribution":
        return cls(
            num_documents=int(state["num_documents"]),
            document_frequency=Counter(
                {str(token): int(count) for token, count in state["document_frequency"].items()}
            ),
            oversized=bool(state["oversized"]),
        )


@register_column_encoder("cell-level")
class CellLevelColumnEncoder(ColumnEncoder):
    """Average of per-cell embeddings (the paper's "Cell-level" variation)."""

    def __init__(self, base: TupleEncoder, *, max_cells: int = 256) -> None:
        if max_cells <= 0:
            raise ValueError(f"max_cells must be positive, got {max_cells}")
        self._base = base
        self._max_cells = max_cells
        self._info = EncoderInfo(
            name=f"cell-level({base.info.name})",
            dimension=base.info.dimension,
            family="column-cell",
        )

    @property
    def info(self) -> EncoderInfo:
        return self._info

    def encode_column(self, header: str, values: Sequence[Any]) -> np.ndarray:
        cells = [value for value in values if not is_null(value)][: self._max_cells]
        if not cells:
            return self._base.encode_text(str(header))
        embeddings = [self._base.encode_text(f"{header} {value}") for value in cells]
        return l2_normalize(np.mean(embeddings, axis=0))


@register_column_encoder("column-level")
class ColumnLevelColumnEncoder(ColumnEncoder):
    """Single-sentence column embedding with TF-IDF token selection.

    The column's header and values are concatenated into one sentence; if the
    sentence exceeds the encoder's 512-token limit, the most representative
    tokens are kept according to TF-IDF scores fitted over the corpus of
    columns supplied via :meth:`fit_corpus` (Sec. 6.2.3).
    """

    def __init__(
        self,
        base: TupleEncoder,
        *,
        token_limit: int = MAX_SEQUENCE_LENGTH,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        if token_limit <= 0:
            raise ValueError(f"token_limit must be positive, got {token_limit}")
        self._base = base
        self._token_limit = token_limit
        self._tokenizer = tokenizer or Tokenizer(max_length=10 * token_limit)
        self._selector = TfidfSelector()
        self._info = EncoderInfo(
            name=f"column-level({base.info.name})",
            dimension=base.info.dimension,
            family="column-sentence",
        )

    @property
    def info(self) -> EncoderInfo:
        return self._info

    def fit_corpus(self, columns: Sequence[tuple[str, Sequence[Any]]]) -> "ColumnLevelColumnEncoder":
        """Fit the TF-IDF selector over ``(header, values)`` column pairs."""
        documents = [
            self._tokenizer.tokenize_text(serialize_column(header, values))
            for header, values in columns
        ]
        self._selector.fit(documents)
        return self

    def fit_tables(self, tables: Sequence[Table]) -> "ColumnLevelColumnEncoder":
        """Fit the TF-IDF selector over every column of ``tables``."""
        corpus = [
            (column, table.column_values(column))
            for table in tables
            for column in table.columns
        ]
        return self.fit_corpus(corpus)

    def fit_state(self) -> dict:
        """JSON-serializable fitted state of the TF-IDF selector."""
        return self._selector.state_dict()

    def load_fit_state(self, state: dict) -> "ColumnLevelColumnEncoder":
        """Restore a fitted TF-IDF selector dumped by :meth:`fit_state`."""
        self._selector.load_state_dict(state)
        return self

    def corpus_contribution(
        self, columns: Sequence[tuple[str, Sequence[Any]]]
    ) -> CorpusContribution:
        """One table's :class:`CorpusContribution` to the TF-IDF corpus.

        Tokenizes the ``(header, values)`` columns exactly as
        :meth:`fit_corpus` would and returns their document count, distinct
        per-document token frequencies and whether any document exceeds the
        token limit (i.e. whether encoding these columns consults the fitted
        selector).  Summing the contributions of every table in a lake and
        loading the total via :meth:`load_fit_state` is bit-identical to
        calling :meth:`fit_tables` on the same lake.
        """
        documents = [
            self._tokenizer.tokenize_text(serialize_column(header, values))
            for header, values in columns
        ]
        frequency: Counter = Counter()
        for tokens in documents:
            for token in set(tokens):
                frequency[token] += 1
        return CorpusContribution(
            num_documents=len(documents),
            document_frequency=frequency,
            oversized=any(len(tokens) > self._token_limit for tokens in documents),
        )

    def encode_column(self, header: str, values: Sequence[Any]) -> np.ndarray:
        return self.encode_columns([(header, values)])[0]

    def encode_columns(
        self, columns: Sequence[tuple[str, Sequence[Any]]]
    ) -> np.ndarray:
        """Batch encode ``(header, values)`` columns into a ``(n, dim)`` matrix.

        TF-IDF token selection runs over the whole batch (one shared IDF
        lookup via :meth:`TfidfSelector.select_many`) and the sentences are
        embedded through the base encoder's batch ``encode_many`` path.
        """
        documents = [
            self._tokenizer.tokenize_text(serialize_column(header, values))
            for header, values in columns
        ]
        oversized = [i for i, tokens in enumerate(documents) if len(tokens) > self._token_limit]
        if oversized:
            selected = self._selector.select_many(
                [documents[i] for i in oversized], self._token_limit
            )
            for position, index in enumerate(oversized):
                documents[index] = selected[position]
        sentences = [
            " ".join(tokens) if tokens else str(header)
            for tokens, (header, _) in zip(documents, columns)
        ]
        return self._base.encode_many(sentences)


@register_column_encoder("starmie")
class StarmieColumnEncoder(ColumnEncoder):
    """Table-contextualised column embeddings (Starmie [11] stand-in).

    Each column embedding is a convex combination of the column's own sentence
    embedding and a table-context embedding (the mean of all column sentence
    embeddings of the owning table).  A substantial ``table_context_weight``
    pulls the columns of one table together — the behaviour the paper credits
    for Starmie's weak column-alignment scores (Table 1) while remaining a
    strong table-search signal (Sec. 6.5).
    """

    def __init__(
        self,
        base: TupleEncoder,
        *,
        table_context_weight: float = 0.5,
        token_limit: int = MAX_SEQUENCE_LENGTH,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        if not 0.0 <= table_context_weight < 1.0:
            raise ValueError(
                f"table_context_weight must be in [0, 1), got {table_context_weight}"
            )
        self._column_encoder = ColumnLevelColumnEncoder(
            base, token_limit=token_limit, tokenizer=tokenizer
        )
        self._table_context_weight = table_context_weight
        self._info = EncoderInfo(
            name=f"starmie({base.info.name})",
            dimension=base.info.dimension,
            family="column-table-context",
        )

    @property
    def info(self) -> EncoderInfo:
        return self._info

    @property
    def table_context_weight(self) -> float:
        """Blend weight of the table-context vector (part of the index key)."""
        return self._table_context_weight

    def fit_tables(self, tables: Sequence[Table]) -> "StarmieColumnEncoder":
        """Fit the underlying TF-IDF selector over ``tables``."""
        self._column_encoder.fit_tables(tables)
        return self

    def fit_state(self) -> dict:
        """JSON-serializable fitted state of the underlying TF-IDF selector."""
        return self._column_encoder.fit_state()

    def load_fit_state(self, state: dict) -> "StarmieColumnEncoder":
        """Restore a fitted TF-IDF selector dumped by :meth:`fit_state`."""
        self._column_encoder.load_fit_state(state)
        return self

    def corpus_contribution(self, table: Table) -> CorpusContribution:
        """The table's :class:`CorpusContribution` to the TF-IDF corpus."""
        return self._column_encoder.corpus_contribution(
            [(column, table.column_values(column)) for column in table.columns]
        )

    def encode_column(self, header: str, values: Sequence[Any]) -> np.ndarray:
        """Encode a column without table context (falls back to column-level)."""
        return self._column_encoder.encode_column(header, values)

    def encode_table_columns(self, table: Table) -> dict[str, np.ndarray]:
        """Encode every column of ``table`` with its table context blended in.

        All columns go through the column encoder's batch path, so the
        table's TF-IDF selection and base-encoder work is shared.
        """
        if not table.columns:
            return {}
        encoded = self._column_encoder.encode_columns(
            [(column, table.column_values(column)) for column in table.columns]
        )
        raw = {column: encoded[i] for i, column in enumerate(table.columns)}
        context = l2_normalize(np.mean(list(raw.values()), axis=0))
        blended = {
            column: l2_normalize(
                (1.0 - self._table_context_weight) * vector
                + self._table_context_weight * context
            )
            for column, vector in raw.items()
        }
        return blended

    def encode_table(self, table: Table) -> np.ndarray:
        """Whole-table embedding: mean of its contextualised column embeddings."""
        columns = self.encode_table_columns(table)
        if not columns:
            return np.zeros(self.dimension, dtype=np.float64)
        return l2_normalize(np.mean(list(columns.values()), axis=0))
