"""Data types shared by the column-alignment implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datalake.table import Column


@dataclass(frozen=True)
class AlignedCluster:
    """One cluster of mutually-aligned columns anchored on a query column.

    Attributes
    ----------
    query_column:
        The query table column every member of the cluster aligns with.
    members:
        Data lake columns assigned to this cluster (possibly empty when the
        query column matched nothing in the discovered tables).
    """

    query_column: Column
    members: tuple[Column, ...] = ()

    def all_columns(self) -> tuple[Column, ...]:
        """Query column followed by the data lake members."""
        return (self.query_column, *self.members)


@dataclass
class ColumnAlignment:
    """Result of aligning data lake table columns to a query table.

    ``clusters`` holds one :class:`AlignedCluster` per query column (clusters
    without any query column are discarded per Sec. 3.3).  ``discarded``
    records the data lake columns that did not align with any query column —
    they are excluded from the outer union (e.g. ``Park Phone`` in Example 3).
    """

    query_table_name: str
    clusters: list[AlignedCluster] = field(default_factory=list)
    discarded: list[Column] = field(default_factory=list)

    # ---------------------------------------------------------------- lookups
    def mapping_for_table(self, table_name: str) -> dict[str, str]:
        """Map ``data lake column name -> query column name`` for one table."""
        mapping: dict[str, str] = {}
        for cluster in self.clusters:
            for member in cluster.members:
                if member.table_name == table_name:
                    mapping[member.name] = cluster.query_column.name
        return mapping

    def query_columns(self) -> list[str]:
        """Query column headers in cluster order."""
        return [cluster.query_column.name for cluster in self.clusters]

    def aligned_pairs(self) -> set[frozenset[str]]:
        """All unordered pairs of qualified column names that are aligned.

        This is the representation the evaluation metric of Sec. 6.2.2 works
        with: pairs between the query column and each member, pairs between
        members sharing a query column, and a self-pair for query columns with
        no members (so unmatched query columns are still represented).
        """
        pairs: set[frozenset[str]] = set()
        for cluster in self.clusters:
            names = [column.qualified_name for column in cluster.all_columns()]
            if len(names) == 1:
                pairs.add(frozenset({names[0]}))
                continue
            for i, first in enumerate(names):
                for second in names[i + 1 :]:
                    pairs.add(frozenset({first, second}))
        return pairs

    def member_columns(self) -> list[Column]:
        """All aligned data lake columns across clusters."""
        return [member for cluster in self.clusters for member in cluster.members]

    def tables_covered(self) -> list[str]:
        """Names of data lake tables contributing at least one aligned column."""
        names: list[str] = []
        for member in self.member_columns():
            if member.table_name not in names:
                names.append(member.table_name)
        return names

    @staticmethod
    def pairs_from_clusters(clusters: Iterable[Iterable[str]]) -> set[frozenset[str]]:
        """Build the pair representation from raw clusters of qualified names."""
        pairs: set[frozenset[str]] = set()
        for cluster in clusters:
            names = list(cluster)
            if len(names) == 1:
                pairs.add(frozenset({names[0]}))
                continue
            for i, first in enumerate(names):
                for second in names[i + 1 :]:
                    pairs.add(frozenset({first, second}))
        return pairs
