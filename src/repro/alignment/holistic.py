"""Holistic (clustering-based) column alignment — the DUST aligner.

Sec. 3.3 / Appendix A.1.1 of the paper: embed every column of the query table
and of the discovered unionable tables, run constrained hierarchical
clustering over the column embeddings (columns from the same table may never
share a cluster), pick the number of clusters that maximises the silhouette
coefficient, then keep only the clusters containing a query column.  Each kept
cluster aligns its data lake columns to that query column.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.alignment.types import AlignedCluster, ColumnAlignment
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.silhouette import best_num_clusters
from repro.datalake.table import Column, Table
from repro.embeddings.base import ColumnEncoder
from repro.embeddings.column import StarmieColumnEncoder
from repro.utils.errors import AlignmentError


class HolisticColumnAligner:
    """Aligns data lake columns to query columns via constrained clustering.

    Parameters
    ----------
    column_encoder:
        Any :class:`~repro.embeddings.base.ColumnEncoder`.  When a
        :class:`~repro.embeddings.column.StarmieColumnEncoder` is supplied the
        aligner uses its table-contextualised embeddings (the "Starmie (H)"
        baseline of Table 1).
    linkage, metric:
        Clustering configuration; the paper reports average linkage and
        Euclidean distance as most effective (Sec. 6.2.1).
    candidate_fraction:
        Cluster counts evaluated for silhouette selection span from the number
        of query columns up to ``candidate_fraction * total_columns`` (clipped
        to the valid range), which keeps the search cheap without missing the
        region where the optimum lives.
    """

    def __init__(
        self,
        column_encoder: ColumnEncoder,
        *,
        linkage: str = "average",
        metric: str = "euclidean",
        candidate_fraction: float = 0.35,
    ) -> None:
        if not 0.0 < candidate_fraction <= 1.0:
            raise AlignmentError(
                f"candidate_fraction must be in (0, 1], got {candidate_fraction}"
            )
        self.column_encoder = column_encoder
        self.linkage = linkage
        self.metric = metric
        self.candidate_fraction = candidate_fraction

    # ------------------------------------------------------------- embeddings
    def _embed_columns(
        self, tables: Sequence[Table]
    ) -> tuple[list[Column], np.ndarray]:
        """Embed every column of ``tables`` and return refs plus the matrix."""
        refs: list[Column] = []
        vectors: list[np.ndarray] = []
        for table in tables:
            if isinstance(self.column_encoder, StarmieColumnEncoder):
                per_column = self.column_encoder.encode_table_columns(table)
                for column in table.columns:
                    refs.append(table.column_ref(column))
                    vectors.append(per_column[column])
            else:
                for column in table.columns:
                    refs.append(table.column_ref(column))
                    vectors.append(
                        self.column_encoder.encode_column(
                            column, table.column_values(column)
                        )
                    )
        if not refs:
            raise AlignmentError("no columns to align: all input tables are empty")
        return refs, np.vstack(vectors)

    # -------------------------------------------------------------------- API
    def align(self, query_table: Table, lake_tables: Sequence[Table]) -> ColumnAlignment:
        """Align the columns of ``lake_tables`` to the columns of ``query_table``.

        Returns a :class:`ColumnAlignment` with one cluster per query column.
        Clusters that contain no query column are discarded (their member
        columns are reported in ``ColumnAlignment.discarded``); if a cluster
        ends up containing more than one query column — possible because the
        constraint only forbids same-table co-clustering — the data lake
        members are assigned to the closest of those query columns.
        """
        if query_table.num_columns == 0:
            raise AlignmentError(
                f"query table {query_table.name!r} has no columns to align"
            )
        all_tables = [query_table, *lake_tables]
        refs, embeddings = self._embed_columns(all_tables)
        constraint_groups = [ref.table_name for ref in refs]

        clustering = AgglomerativeClustering(linkage=self.linkage, metric=self.metric)
        clustering.fit(embeddings, constraint_groups=constraint_groups)

        total_columns = len(refs)
        lower = max(2, min(query_table.num_columns, total_columns))
        upper = max(lower, int(round(self.candidate_fraction * total_columns)))
        candidates = range(lower, min(upper, total_columns) + 1)
        best_count, _ = best_num_clusters(
            embeddings,
            lambda k: clustering.labels_for(k).labels,
            candidates,
            metric=self.metric,
        )
        if best_count <= 1:
            best_count = min(query_table.num_columns, total_columns)
        result = clustering.labels_for(best_count)

        return self._build_alignment(query_table, refs, embeddings, result.labels)

    # ----------------------------------------------------------- construction
    def _build_alignment(
        self,
        query_table: Table,
        refs: Sequence[Column],
        embeddings: np.ndarray,
        labels: np.ndarray,
    ) -> ColumnAlignment:
        query_name = query_table.name
        clusters_members: dict[int, list[int]] = {}
        for index, label in enumerate(labels):
            clusters_members.setdefault(int(label), []).append(index)

        assigned: dict[str, list[Column]] = {column: [] for column in query_table.columns}
        discarded: list[Column] = []

        for members in clusters_members.values():
            query_indices = [i for i in members if refs[i].table_name == query_name]
            lake_indices = [i for i in members if refs[i].table_name != query_name]
            if not query_indices:
                discarded.extend(refs[i] for i in lake_indices)
                continue
            if len(query_indices) == 1:
                target = refs[query_indices[0]].name
                assigned[target].extend(refs[i] for i in lake_indices)
                continue
            # Multiple query columns in one cluster: assign each lake column to
            # the closest query column by embedding distance.
            for lake_index in lake_indices:
                distances = [
                    float(np.linalg.norm(embeddings[lake_index] - embeddings[qi]))
                    for qi in query_indices
                ]
                closest = query_indices[int(np.argmin(distances))]
                assigned[refs[closest].name].append(refs[lake_index])

        clusters = [
            AlignedCluster(
                query_column=query_table.column_ref(column),
                members=tuple(assigned[column]),
            )
            for column in query_table.columns
        ]
        return ColumnAlignment(
            query_table_name=query_name, clusters=clusters, discarded=discarded
        )
