"""Pairwise (bipartite-matching) column alignment — the Starmie (B) baseline.

Starmie [11] aligns each data lake table to the query table independently by
maximum-weight bipartite matching between the two tables' column embeddings.
The paper uses this per-table-pair strategy as the baseline against which the
holistic aligner is compared in Table 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.alignment.types import AlignedCluster, ColumnAlignment
from repro.datalake.table import Column, Table
from repro.embeddings.base import ColumnEncoder
from repro.embeddings.column import StarmieColumnEncoder
from repro.utils.errors import AlignmentError


class BipartiteColumnAligner:
    """Aligns each data lake table to the query table independently.

    Parameters
    ----------
    column_encoder:
        Encoder used to embed columns; a
        :class:`~repro.embeddings.column.StarmieColumnEncoder` reproduces the
        paper's "Starmie (B)" configuration.
    min_similarity:
        Matches with cosine similarity below this threshold are dropped, so a
        data lake column with no good counterpart stays unaligned rather than
        being forced onto an arbitrary query column.
    """

    def __init__(self, column_encoder: ColumnEncoder, *, min_similarity: float = 0.1) -> None:
        if not -1.0 <= min_similarity <= 1.0:
            raise AlignmentError(
                f"min_similarity must be in [-1, 1], got {min_similarity}"
            )
        self.column_encoder = column_encoder
        self.min_similarity = min_similarity

    # -------------------------------------------------------------- embedding
    def _table_column_embeddings(self, table: Table) -> dict[str, np.ndarray]:
        if isinstance(self.column_encoder, StarmieColumnEncoder):
            return self.column_encoder.encode_table_columns(table)
        return {
            column: self.column_encoder.encode_column(column, table.column_values(column))
            for column in table.columns
        }

    @staticmethod
    def _similarity(first: np.ndarray, second: np.ndarray) -> float:
        norm_first = float(np.linalg.norm(first))
        norm_second = float(np.linalg.norm(second))
        if norm_first == 0.0 or norm_second == 0.0:
            return 0.0
        return float(first @ second) / (norm_first * norm_second)

    # -------------------------------------------------------------------- API
    def match_pair(self, query_table: Table, lake_table: Table) -> dict[str, str]:
        """Match one data lake table to the query table.

        Returns ``{lake column name: query column name}`` for the retained
        matches of the maximum-weight bipartite matching.
        """
        query_embeddings = self._table_column_embeddings(query_table)
        lake_embeddings = self._table_column_embeddings(lake_table)
        query_columns = list(query_table.columns)
        lake_columns = list(lake_table.columns)
        if not query_columns or not lake_columns:
            return {}

        similarity = np.zeros((len(lake_columns), len(query_columns)), dtype=np.float64)
        for i, lake_column in enumerate(lake_columns):
            for j, query_column in enumerate(query_columns):
                similarity[i, j] = self._similarity(
                    lake_embeddings[lake_column], query_embeddings[query_column]
                )

        row_indices, col_indices = linear_sum_assignment(-similarity)
        mapping: dict[str, str] = {}
        for row, col in zip(row_indices, col_indices):
            if similarity[row, col] >= self.min_similarity:
                mapping[lake_columns[row]] = query_columns[col]
        return mapping

    def align(self, query_table: Table, lake_tables: Sequence[Table]) -> ColumnAlignment:
        """Align every data lake table pairwise and merge into one alignment."""
        if query_table.num_columns == 0:
            raise AlignmentError(
                f"query table {query_table.name!r} has no columns to align"
            )
        assigned: dict[str, list[Column]] = {column: [] for column in query_table.columns}
        discarded: list[Column] = []
        for lake_table in lake_tables:
            mapping = self.match_pair(query_table, lake_table)
            for column in lake_table.columns:
                ref = lake_table.column_ref(column)
                target = mapping.get(column)
                if target is None:
                    discarded.append(ref)
                else:
                    assigned[target].append(ref)

        clusters = [
            AlignedCluster(
                query_column=query_table.column_ref(column),
                members=tuple(assigned[column]),
            )
            for column in query_table.columns
        ]
        return ColumnAlignment(
            query_table_name=query_table.name, clusters=clusters, discarded=discarded
        )
