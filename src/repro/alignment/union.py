"""Outer union of aligned tables into unionable tuples.

After column alignment, DUST outer-unions the discovered tables with the
query table's schema (Sec. 3.3): every data lake tuple is re-expressed over
the query columns, padding columns its table does not cover with nulls, and
data lake columns that aligned with no query column are dropped.
"""

from __future__ import annotations

from typing import Sequence

from repro.alignment.types import ColumnAlignment
from repro.datalake.table import Table
from repro.embeddings.serialization import AlignedTuple
from repro.utils.errors import AlignmentError


def aligned_tuples_from_tables(
    alignment: ColumnAlignment,
    lake_tables: Sequence[Table],
    *,
    include_unaligned_tables: bool = False,
) -> list[AlignedTuple]:
    """Convert the rows of ``lake_tables`` into :class:`AlignedTuple` objects.

    Parameters
    ----------
    alignment:
        The column alignment anchored on the query table.
    lake_tables:
        The unionable tables returned by table union search.
    include_unaligned_tables:
        When false (default) tables none of whose columns aligned with any
        query column contribute no tuples; when true their rows are emitted
        with all-null values (useful for debugging recall issues).
    """
    tuples: list[AlignedTuple] = []
    for table in lake_tables:
        mapping = alignment.mapping_for_table(table.name)
        if not mapping and not include_unaligned_tables:
            continue
        for position, row in enumerate(table.rows):
            values = {
                mapping[column]: row[index]
                for index, column in enumerate(table.columns)
                if column in mapping
            }
            tuples.append(
                AlignedTuple(source_table=table.name, source_row=position, values=values)
            )
    return tuples


def query_tuples(query_table: Table) -> list[AlignedTuple]:
    """Express the query table's own rows as :class:`AlignedTuple` objects."""
    return [
        AlignedTuple(
            source_table=query_table.name,
            source_row=position,
            values=dict(zip(query_table.columns, row)),
        )
        for position, row in enumerate(query_table.rows)
    ]


def outer_union(
    query_table: Table,
    alignment: ColumnAlignment,
    lake_tables: Sequence[Table],
    *,
    include_query_rows: bool = True,
    name: str | None = None,
) -> Table:
    """Materialise the outer union as a :class:`Table` over the query schema.

    The result has exactly the query table's columns; each data lake tuple is
    padded with ``None`` for query columns its source table does not cover
    (Example 3: the single-column ``Park Phone`` cluster is discarded, missing
    ``City`` values become nulls).
    """
    if alignment.query_table_name != query_table.name:
        raise AlignmentError(
            f"alignment was computed for query table {alignment.query_table_name!r}, "
            f"not {query_table.name!r}"
        )
    columns = list(query_table.columns)
    rows = []
    provenance: list[tuple[str, int]] = []
    if include_query_rows:
        rows.extend(query_table.rows)
        provenance.extend((query_table.name, i) for i in range(query_table.num_rows))
    for aligned in aligned_tuples_from_tables(alignment, lake_tables):
        rows.append(aligned.as_row(columns))
        provenance.append((aligned.source_table, aligned.source_row))
    return Table(
        name=name or f"{query_table.name}__union",
        columns=columns,
        rows=rows,
        metadata={"provenance": provenance},
    )
