"""Column alignment and outer union (paper Sec. 3.3 and Appendix A.1.1)."""

from repro.alignment.types import ColumnAlignment, AlignedCluster
from repro.alignment.holistic import HolisticColumnAligner
from repro.alignment.bipartite import BipartiteColumnAligner
from repro.alignment.union import outer_union, aligned_tuples_from_tables

__all__ = [
    "ColumnAlignment",
    "AlignedCluster",
    "HolisticColumnAligner",
    "BipartiteColumnAligner",
    "outer_union",
    "aligned_tuples_from_tables",
]
