"""GMC — Greedy Marginal Contribution (Vieira et al. [51]).

GMC greedily builds the diverse set by repeatedly adding the candidate with
the largest *marginal contribution* to the Max-Sum diversification objective.
The marginal contribution of a candidate combines its relevance, its distance
to the items already selected, and an optimistic estimate of its distance to
the items that will be selected later (the largest remaining distances).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier


@register_diversifier("gmc")
class GMCDiversifier(Diversifier):
    """Greedy Marginal Contribution diversification.

    Parameters
    ----------
    trade_off:
        The relevance/diversity trade-off parameter (``lambda`` in the
        original paper); smaller values favour diversity.
    """

    name = "gmc"

    def __init__(self, *, trade_off: float = 0.3) -> None:
        if not 0.0 <= trade_off <= 1.0:
            raise ValueError(f"trade_off must be in [0, 1], got {trade_off}")
        self.trade_off = trade_off

    def _marginal_contribution(
        self,
        candidate: int,
        selected: list[int],
        remaining: np.ndarray,
        request: DiversificationRequest,
        relevance: np.ndarray,
        distances: np.ndarray,
    ) -> float:
        k = request.k
        slots_left = k - len(selected) - 1
        contribution = self.trade_off * (k - 1) * float(relevance[candidate])
        if selected:
            contribution += (1.0 - self.trade_off) * float(
                distances[candidate, selected].sum()
            )
        if slots_left > 0:
            other = remaining[remaining != candidate]
            if other.size > 0:
                to_others = np.sort(distances[candidate, other])[::-1]
                contribution += (
                    (1.0 - self.trade_off) * float(to_others[:slots_left].sum()) / 2.0
                )
        return contribution

    def select(self, request: DiversificationRequest) -> list[int]:
        distances = request.candidate_distances()
        relevance = request.relevance()
        num_candidates = distances.shape[0]
        selected: list[int] = []
        remaining = np.arange(num_candidates)
        for _ in range(request.k):
            contributions = np.array(
                [
                    self._marginal_contribution(
                        int(candidate), selected, remaining, request, relevance, distances
                    )
                    for candidate in remaining
                ]
            )
            best_position = int(np.argmax(contributions))
            best_candidate = int(remaining[best_position])
            selected.append(best_candidate)
            remaining = np.delete(remaining, best_position)
        return self._validate_selection(request, selected)
