"""Common interface and shared objective for diversification algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import DiversificationError
from repro.vectorops import DistanceContext


@dataclass
class DiversificationRequest:
    """Inputs to a diversification run.

    Every distance a diversifier needs is served by one shared
    :class:`~repro.vectorops.DistanceContext`, so DUST and the IR baselines
    (GMC, GNE, CLT, SWAP, Max-Min, Max-Sum) evaluated on the same request —
    or on requests built over the same context — never recompute a matrix.

    Attributes
    ----------
    query_embeddings:
        ``(n, dim)`` embeddings of the query table tuples.  May be empty when
        an algorithm diversifies a candidate set with no reference query (the
        classic IR setting).
    candidate_embeddings:
        ``(s, dim)`` embeddings of the unionable data lake tuples.
    k:
        Number of candidates to select (``k <= s``).
    metric:
        Distance metric name (``"cosine"`` by default, matching the paper).
    context:
        Optional pre-built :class:`~repro.vectorops.DistanceContext` over the
        same query/candidate embeddings (the pipeline builds one per
        :meth:`~repro.core.pipeline.DustPipeline.run`).  Created lazily from
        the embeddings when absent.
    """

    query_embeddings: np.ndarray
    candidate_embeddings: np.ndarray
    k: int
    metric: str = "cosine"
    context: DistanceContext | None = None

    def __post_init__(self) -> None:
        self.query_embeddings = np.atleast_2d(np.asarray(self.query_embeddings, dtype=np.float64))
        self.candidate_embeddings = np.atleast_2d(
            np.asarray(self.candidate_embeddings, dtype=np.float64)
        )
        if self.query_embeddings.size == 0:
            self.query_embeddings = np.zeros(
                (0, self.candidate_embeddings.shape[1]), dtype=np.float64
            )
        if self.candidate_embeddings.shape[0] == 0:
            raise DiversificationError("candidate_embeddings must not be empty")
        if self.k <= 0:
            raise DiversificationError(f"k must be positive, got {self.k}")
        if self.k > self.candidate_embeddings.shape[0]:
            raise DiversificationError(
                f"k={self.k} exceeds the number of candidates "
                f"({self.candidate_embeddings.shape[0]})"
            )
        if (
            self.query_embeddings.shape[0] > 0
            and self.query_embeddings.shape[1] != self.candidate_embeddings.shape[1]
        ):
            raise DiversificationError(
                "query and candidate embeddings have different dimensionality: "
                f"{self.query_embeddings.shape[1]} vs {self.candidate_embeddings.shape[1]}"
            )
        if self.context is not None and (
            self.context.num_queries != self.query_embeddings.shape[0]
            or self.context.num_candidates != self.candidate_embeddings.shape[0]
        ):
            raise DiversificationError(
                "context shape "
                f"({self.context.num_queries} queries, "
                f"{self.context.num_candidates} candidates) does not match the "
                f"request ({self.query_embeddings.shape[0]} queries, "
                f"{self.candidate_embeddings.shape[0]} candidates)"
            )

    @classmethod
    def from_context(
        cls, context: DistanceContext, k: int, *, metric: str | None = None
    ) -> "DiversificationRequest":
        """Build a request that is purely a view over an existing context."""
        return cls(
            query_embeddings=context.query.data,
            candidate_embeddings=context.candidates.data,
            k=k,
            metric=metric or context.metric,
            context=context,
        )

    # -------------------------------------------------------- cached matrices
    def distance_context(self) -> DistanceContext:
        """The shared distance cache, created lazily from the embeddings."""
        if self.context is None:
            self.context = DistanceContext(
                self.query_embeddings, self.candidate_embeddings, metric=self.metric
            )
        return self.context

    def candidate_distances(self) -> np.ndarray:
        """Pairwise distances between candidates, computed lazily and cached."""
        return self.distance_context().candidate_distances(self.metric)

    def query_candidate_distances(self) -> np.ndarray:
        """``(s, n)`` distances from each candidate to each query tuple."""
        return self.distance_context().query_candidate_distances(self.metric)

    def relevance(self) -> np.ndarray:
        """Relevance of each candidate to the query (IR trade-off convention).

        Diversification literature treats relevance and diversity as opposing
        forces; for unionable tuples, a candidate is more *relevant* the closer
        it sits to the query tuples, so relevance is ``1 - mean distance`` to
        the query (all-ones when there is no query).
        """
        distances = self.query_candidate_distances()
        if distances.shape[1] == 0:
            return np.ones(self.candidate_embeddings.shape[0])
        return 1.0 - distances.mean(axis=1)


def mmr_objective(
    request: DiversificationRequest,
    selected: list[int],
    *,
    trade_off: float = 0.3,
) -> float:
    """Max-Sum diversification objective of Vieira et al. [51].

    ``F(S) = (k - 1) * trade_off * sum_rel(S) + 2 * (1 - trade_off) * sum_div(S)``

    where ``sum_rel`` is the summed relevance of the selected items and
    ``sum_div`` the summed pairwise distance among them.  GMC and GNE both
    greedily maximise this function.
    """
    if not selected:
        return 0.0
    relevance = request.relevance()
    distances = request.candidate_distances()
    indices = np.asarray(selected, dtype=int)
    sum_relevance = float(relevance[indices].sum())
    sub = distances[np.ix_(indices, indices)]
    sum_diversity = float(np.triu(sub, k=1).sum())
    k = request.k
    return (k - 1) * trade_off * sum_relevance + 2.0 * (1.0 - trade_off) * sum_diversity


class Diversifier(abc.ABC):
    """Base class: select ``k`` diverse candidates for a request."""

    #: Human-readable algorithm name used in experiment reports.
    name: str = "diversifier"

    @abc.abstractmethod
    def select(self, request: DiversificationRequest) -> list[int]:
        """Return the indices (into the candidate matrix) of the selected tuples."""

    def select_embeddings(self, request: DiversificationRequest) -> np.ndarray:
        """Convenience: return the embeddings of the selected candidates."""
        indices = self.select(request)
        return request.candidate_embeddings[np.asarray(indices, dtype=int)]

    def _validate_selection(self, request: DiversificationRequest, selected: list[int]) -> list[int]:
        """Common post-conditions: right size, unique, in range."""
        if len(selected) != request.k:
            raise DiversificationError(
                f"{self.name} selected {len(selected)} items, expected {request.k}"
            )
        if len(set(selected)) != len(selected):
            raise DiversificationError(f"{self.name} selected duplicate candidates")
        upper = request.candidate_embeddings.shape[0]
        if any(index < 0 or index >= upper for index in selected):
            raise DiversificationError(f"{self.name} selected an out-of-range candidate")
        return selected
