"""SWAP diversification (Yu et al. [54]).

SWAP starts from the ``k`` most *relevant* candidates (the top of the
unionability ranking) and then greedily exchanges selected items with outside
items whenever the exchange improves the diversity of the set while keeping
the relevance drop within a bound.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier


@register_diversifier("swap")
class SwapDiversifier(Diversifier):
    """Relevance-first candidate set improved by diversity-increasing swaps.

    Parameters
    ----------
    relevance_tolerance:
        Maximum relative drop in total relevance a swap may cause (0.2 means
        the swapped-in item may cost at most 20% of the current average
        relevance).
    max_rounds:
        Number of full passes over the candidate pool.
    """

    name = "swap"

    def __init__(self, *, relevance_tolerance: float = 0.5, max_rounds: int = 2) -> None:
        if relevance_tolerance < 0:
            raise ValueError(
                f"relevance_tolerance must be non-negative, got {relevance_tolerance}"
            )
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.relevance_tolerance = relevance_tolerance
        self.max_rounds = max_rounds

    @staticmethod
    def _diversity(distances: np.ndarray, selected: list[int]) -> float:
        indices = np.asarray(selected, dtype=int)
        sub = distances[np.ix_(indices, indices)]
        return float(np.triu(sub, k=1).sum())

    def select(self, request: DiversificationRequest) -> list[int]:
        distances = request.candidate_distances()
        relevance = request.relevance()
        num_candidates = distances.shape[0]

        order = np.argsort(-relevance, kind="stable")
        selected = [int(index) for index in order[: request.k]]
        outside = [int(index) for index in order[request.k :]]

        current_diversity = self._diversity(distances, selected)
        for _ in range(self.max_rounds):
            improved = False
            for incoming in list(outside):
                # Find the selected item whose replacement by `incoming` yields
                # the largest diversity gain.
                best_gain, best_position = 0.0, -1
                for position, outgoing in enumerate(selected):
                    trial = list(selected)
                    trial[position] = incoming
                    gain = self._diversity(distances, trial) - current_diversity
                    relevance_drop = relevance[outgoing] - relevance[incoming]
                    allowed_drop = self.relevance_tolerance * max(
                        float(np.abs(relevance[selected]).mean()), 1e-9
                    )
                    if gain > best_gain and relevance_drop <= allowed_drop:
                        best_gain, best_position = gain, position
                if best_position >= 0:
                    outgoing = selected[best_position]
                    selected[best_position] = incoming
                    outside.remove(incoming)
                    outside.append(outgoing)
                    current_diversity += best_gain
                    improved = True
            if not improved:
                break

        if num_candidates == request.k:
            selected = list(range(num_candidates))
        return self._validate_selection(request, selected)
