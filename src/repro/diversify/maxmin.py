"""Greedy Max-Min diversification (Moumoulidou et al. [33]).

The Max-Min objective maximises the smallest pairwise distance within the
selected set.  The classic greedy 2-approximation starts from the candidate
farthest from the query (or from the candidate mean when there is no query)
and repeatedly adds the candidate whose minimum distance to the already
selected items is largest.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier


@register_diversifier("maxmin")
class MaxMinDiversifier(Diversifier):
    """Greedy farthest-point selection under the Max-Min objective.

    Parameters
    ----------
    include_query:
        When true (default) the minimum distance also accounts for the query
        tuples, so selected tuples avoid being close to anything already in
        the query table — the adaptation used by the paper's Min Diversity
        evaluation metric.
    """

    name = "maxmin"

    def __init__(self, *, include_query: bool = True) -> None:
        self.include_query = include_query

    def select(self, request: DiversificationRequest) -> list[int]:
        distances = request.candidate_distances()
        query_distances = request.query_candidate_distances()

        if self.include_query and query_distances.shape[1] > 0:
            min_to_query = query_distances.min(axis=1)
        else:
            # Without a query, seed with the candidate farthest from the
            # candidate centroid to avoid starting in a dense region.
            centroid = request.candidate_embeddings.mean(axis=0, keepdims=True)
            from repro.cluster.distance import pairwise_distance_matrix

            min_to_query = pairwise_distance_matrix(
                request.candidate_embeddings, centroid, metric=request.metric
            )[:, 0]

        selected = [int(np.argmax(min_to_query))]
        min_to_selected = distances[selected[0]].copy()
        if self.include_query and query_distances.shape[1] > 0:
            min_to_selected = np.minimum(min_to_selected, min_to_query)

        while len(selected) < request.k:
            min_to_selected[selected] = -np.inf
            next_candidate = int(np.argmax(min_to_selected))
            selected.append(next_candidate)
            min_to_selected = np.minimum(min_to_selected, distances[next_candidate])
        return self._validate_selection(request, selected)
