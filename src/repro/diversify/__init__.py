"""Diversification algorithms.

All algorithms share the :class:`Diversifier` interface: given embeddings of
the query tuples and of the candidate unionable data lake tuples, select ``k``
candidate indices.  The package contains the IR baselines evaluated in the
paper (GMC, GNE, CLT, plus SWAP, greedy Max-Min / Max-Sum and random
selection); DUST's own algorithm lives in :mod:`repro.core.diversifier`.
"""

from repro.diversify.base import Diversifier, DiversificationRequest, mmr_objective
from repro.diversify.gmc import GMCDiversifier
from repro.diversify.gne import GNEDiversifier
from repro.diversify.clt import CLTDiversifier
from repro.diversify.swap import SwapDiversifier
from repro.diversify.maxmin import MaxMinDiversifier
from repro.diversify.maxsum import MaxSumDiversifier
from repro.diversify.random_select import RandomDiversifier

__all__ = [
    "Diversifier",
    "DiversificationRequest",
    "mmr_objective",
    "GMCDiversifier",
    "GNEDiversifier",
    "CLTDiversifier",
    "SwapDiversifier",
    "MaxMinDiversifier",
    "MaxSumDiversifier",
    "RandomDiversifier",
]
