"""GNE — Greedy randomized with Neighborhood Expansion (Vieira et al. [51]).

GNE is a GRASP-style randomisation of GMC: each construction step picks a
candidate at random from the best fraction of marginal contributions (the
restricted candidate list), and the constructed solution is then improved by a
local search that swaps selected items with unselected ones whenever the
Max-Sum objective increases.  Multiple iterations keep the best solution seen.

As the paper notes (Sec. 6.4.4), GNE is by far the slowest baseline and does
not scale beyond small candidate sets — the implementation makes no attempt to
hide that, because the runtime comparison is part of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier, mmr_objective
from repro.diversify.gmc import GMCDiversifier
from repro.utils.rng import seeded_rng


@register_diversifier("gne")
class GNEDiversifier(Diversifier):
    """Randomized greedy construction plus swap-based neighbourhood search."""

    name = "gne"

    def __init__(
        self,
        *,
        trade_off: float = 0.3,
        iterations: int = 3,
        candidate_fraction: float = 0.1,
        max_swaps: int = 200,
        seed: int | None = None,
    ) -> None:
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError(
                f"candidate_fraction must be in (0, 1], got {candidate_fraction}"
            )
        self.trade_off = trade_off
        self.iterations = iterations
        self.candidate_fraction = candidate_fraction
        self.max_swaps = max_swaps
        self.seed = seed
        self._gmc = GMCDiversifier(trade_off=trade_off)

    # ----------------------------------------------------------- construction
    def _randomized_construction(
        self, request: DiversificationRequest, rng: np.random.Generator
    ) -> list[int]:
        distances = request.candidate_distances()
        relevance = request.relevance()
        num_candidates = distances.shape[0]
        selected: list[int] = []
        remaining = np.arange(num_candidates)
        for _ in range(request.k):
            contributions = np.array(
                [
                    self._gmc._marginal_contribution(
                        int(candidate), selected, remaining, request, relevance, distances
                    )
                    for candidate in remaining
                ]
            )
            order = np.argsort(-contributions)
            restricted_size = max(1, int(np.ceil(self.candidate_fraction * len(remaining))))
            chosen_position = int(order[int(rng.integers(restricted_size))])
            chosen = int(remaining[chosen_position])
            selected.append(chosen)
            remaining = np.delete(remaining, chosen_position)
        return selected

    # ------------------------------------------------------------ local search
    def _neighborhood_expansion(
        self,
        request: DiversificationRequest,
        selected: list[int],
        rng: np.random.Generator,
    ) -> list[int]:
        current = list(selected)
        current_score = mmr_objective(request, current, trade_off=self.trade_off)
        all_indices = set(range(request.candidate_embeddings.shape[0]))
        for _ in range(self.max_swaps):
            outside = list(all_indices - set(current))
            if not outside:
                break
            swap_out_position = int(rng.integers(len(current)))
            swap_in = int(outside[int(rng.integers(len(outside)))])
            candidate_solution = list(current)
            candidate_solution[swap_out_position] = swap_in
            candidate_score = mmr_objective(
                request, candidate_solution, trade_off=self.trade_off
            )
            if candidate_score > current_score:
                current, current_score = candidate_solution, candidate_score
        return current

    # ------------------------------------------------------------------ select
    def select(self, request: DiversificationRequest) -> list[int]:
        rng = seeded_rng(self.seed)
        best: list[int] | None = None
        best_score = -np.inf
        for _ in range(self.iterations):
            constructed = self._randomized_construction(request, rng)
            improved = self._neighborhood_expansion(request, constructed, rng)
            score = mmr_objective(request, improved, trade_off=self.trade_off)
            if score > best_score:
                best, best_score = improved, score
        assert best is not None
        return self._validate_selection(request, best)
