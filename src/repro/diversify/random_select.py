"""Random selection baseline (paper Sec. 6.4.3).

The paper samples ``k`` tuples uniformly at random (five seeds, keeping the
best-scoring sample per metric) to show that random sampling is ineffective
for tuple diversification.  :class:`RandomDiversifier` implements one sample;
``best_of_random`` reproduces the best-of-five protocol.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier
from repro.utils.rng import seeded_rng


@register_diversifier("random")
class RandomDiversifier(Diversifier):
    """Selects ``k`` candidates uniformly at random (without replacement)."""

    name = "random"

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed

    def select(self, request: DiversificationRequest) -> list[int]:
        rng = seeded_rng(self.seed)
        chosen = rng.choice(
            request.candidate_embeddings.shape[0], size=request.k, replace=False
        )
        return self._validate_selection(request, [int(index) for index in chosen])


def best_of_random(
    request: DiversificationRequest,
    score: Callable[[list[int]], float],
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> tuple[list[int], float]:
    """Run random selection for each seed and keep the best-scoring sample.

    ``score`` maps a selection (candidate indices) to the metric being
    optimised (e.g. Average Diversity); the highest-scoring selection and its
    score are returned, mirroring the paper's best-of-five random baseline.
    """
    best_selection: list[int] | None = None
    best_score = -np.inf
    for seed in seeds:
        selection = RandomDiversifier(seed=seed).select(request)
        value = score(selection)
        if value > best_score:
            best_selection, best_score = selection, value
    assert best_selection is not None
    return best_selection, float(best_score)
