"""CLT — clustering-based diversification (van Leuken et al. [49]).

CLT clusters the candidate set into ``k`` clusters and returns one
representative per cluster.  To keep the comparison with DUST consistent
(Sec. 6.4.2), the representative is each cluster's medoid and the clustering
algorithm/parameters are the same hierarchical clustering DUST uses.
"""

from __future__ import annotations

from repro.api.registry import register_diversifier
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.medoids import cluster_medoids
from repro.diversify.base import DiversificationRequest, Diversifier


@register_diversifier("clt")
class CLTDiversifier(Diversifier):
    """Cluster candidates into ``k`` groups and return each group's medoid."""

    name = "clt"

    def __init__(self, *, linkage: str = "average", cluster_metric: str = "euclidean") -> None:
        self.linkage = linkage
        self.cluster_metric = cluster_metric

    def select(self, request: DiversificationRequest) -> list[int]:
        context = request.distance_context()
        clustering = AgglomerativeClustering(
            linkage=self.linkage, metric=self.cluster_metric
        )
        result = clustering.cluster(
            request.candidate_embeddings,
            request.k,
            precomputed_distances=context.candidate_distances(self.cluster_metric),
        )
        # Use the cached square only when some consumer already materialised
        # it; otherwise the per-cluster sub-matrices are cheaper than a full
        # second square under a different metric.
        medoids = cluster_medoids(
            request.candidate_embeddings,
            result.labels,
            metric=request.metric,
            distances=context.candidate_distances(request.metric)
            if context.is_cached(request.metric)
            else None,
        )
        # Constraint-free clustering may produce fewer clusters than k only when
        # k exceeds the candidate count, which the request already forbids; pad
        # defensively with the remaining farthest candidates if it ever happens.
        if len(medoids) < request.k:
            chosen = set(medoids)
            distances = request.candidate_distances()
            while len(medoids) < request.k:
                remaining = [i for i in range(distances.shape[0]) if i not in chosen]
                best = max(
                    remaining,
                    key=lambda index: float(distances[index, list(chosen)].min())
                    if chosen
                    else 0.0,
                )
                medoids.append(best)
                chosen.add(best)
        return self._validate_selection(request, medoids[: request.k])
