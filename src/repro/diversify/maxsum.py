"""Greedy Max-Sum diversification (Borodin et al. [3]).

The Max-Sum objective maximises the total pairwise distance within the
selected set.  The greedy heuristic repeatedly adds the candidate with the
largest summed distance to the items selected so far (plus, optionally, to the
query tuples).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_diversifier
from repro.diversify.base import DiversificationRequest, Diversifier


@register_diversifier("maxsum")
class MaxSumDiversifier(Diversifier):
    """Greedy selection under the Max-Sum (sum of pairwise distances) objective."""

    name = "maxsum"

    def __init__(self, *, include_query: bool = True) -> None:
        self.include_query = include_query

    def select(self, request: DiversificationRequest) -> list[int]:
        distances = request.candidate_distances()
        query_distances = request.query_candidate_distances()

        if self.include_query and query_distances.shape[1] > 0:
            accumulated = query_distances.sum(axis=1).astype(np.float64)
        else:
            accumulated = distances.sum(axis=1).astype(np.float64)

        selected: list[int] = []
        available = np.ones(distances.shape[0], dtype=bool)
        for _ in range(request.k):
            masked = np.where(available, accumulated, -np.inf)
            chosen = int(np.argmax(masked))
            selected.append(chosen)
            available[chosen] = False
            accumulated = accumulated + distances[chosen]
        return self._validate_selection(request, selected)
