"""Prompt construction for the LLM diversification baseline.

Appendix A.2.4 of the paper gives the exact prompt used with GPT-3; the same
prompt is built here (with the query table rendered in pipe-separated format)
so the simulated LLM baseline consumes identical inputs and hits the same
token-limit constraint the paper reports.
"""

from __future__ import annotations

from repro.datalake.table import Table

#: Template from Appendix A.2.4 of the paper.
PROMPT_TEMPLATE = (
    "Given the following query table: {table}\n"
    "Generate {k} new tuples that are unionable to the query table. "
    "The generated tuples should be non-redundant and diverse with respect to "
    "the existing tuples. Return the tuples in pipe-separated format as the "
    "query table."
)


def render_table_pipe_separated(table: Table) -> str:
    """Render a table in the pipe-separated format used in the prompt."""
    lines = [" | ".join(str(column) for column in table.columns)]
    for row in table.rows:
        lines.append(" | ".join("" if value is None else str(value) for value in row))
    return "\n".join(lines)


def build_diversification_prompt(query_table: Table, k: int) -> str:
    """Instantiate the Appendix A.2.4 prompt for ``query_table`` and ``k``."""
    return PROMPT_TEMPLATE.format(table=render_table_pipe_separated(query_table), k=k)


def estimate_prompt_tokens(prompt: str) -> int:
    """Rough GPT-style token estimate (≈ 0.75 tokens per word + punctuation)."""
    words = prompt.replace("|", " | ").split()
    return int(len(words) * 1.3) + 1
