"""A deterministic stand-in for the GPT-3 diversification baseline.

The paper uses GPT-3 to *generate* k diverse tuples unionable with the query
table (Sec. 6.5.1) and reports three behaviours that matter for the
comparison:

1. for small inputs the LLM produces a few genuinely novel, diverse tuples;
2. it then starts producing redundant tuples (near-duplicates of the query or
   of its own earlier generations);
3. it cannot scale to query tables whose prompt exceeds the model's input
   token limit, which excludes it from the SANTOS experiments.

:class:`SimulatedLLM` reproduces exactly those behaviours without network
access: it recombines values observed in the query table (novel combinations
first, then echoes of existing tuples) and refuses prompts above the token
limit.
"""

from __future__ import annotations

import numpy as np

from repro.datalake.table import Table
from repro.embeddings.serialization import AlignedTuple
from repro.llm.prompt import build_diversification_prompt, estimate_prompt_tokens
from repro.utils.errors import ReproError
from repro.utils.rng import derive_seed, seeded_rng
from repro.utils.text import is_null


class LLMTokenLimitError(ReproError):
    """Raised when the prompt exceeds the simulated model's context window."""


class SimulatedLLM:
    """Generates "LLM-style" unionable tuples for a query table.

    Parameters
    ----------
    token_limit:
        Maximum number of prompt tokens accepted (GPT-3's 4 096 by default).
    novel_fraction:
        Fraction of the requested tuples that are genuinely novel
        recombinations; the remainder are redundant echoes of query tuples,
        reproducing the repetition the paper observes after the first few
        generations.
    """

    def __init__(
        self,
        *,
        token_limit: int = 4096,
        novel_fraction: float = 0.4,
        seed: int = 11,
    ) -> None:
        if token_limit <= 0:
            raise ReproError(f"token_limit must be positive, got {token_limit}")
        if not 0.0 <= novel_fraction <= 1.0:
            raise ReproError(f"novel_fraction must be in [0, 1], got {novel_fraction}")
        self.token_limit = token_limit
        self.novel_fraction = novel_fraction
        self.seed = seed

    # ------------------------------------------------------------------ public
    def generate_tuples(self, query_table: Table, k: int) -> list[AlignedTuple]:
        """Generate ``k`` tuples "unionable" with ``query_table``.

        Raises :class:`LLMTokenLimitError` when the rendered prompt does not
        fit in the context window — the condition under which the paper
        excludes the LLM baseline from larger benchmarks.
        """
        if k <= 0:
            raise ReproError(f"k must be positive, got {k}")
        prompt = build_diversification_prompt(query_table, k)
        tokens = estimate_prompt_tokens(prompt)
        if tokens > self.token_limit:
            raise LLMTokenLimitError(
                f"prompt needs ~{tokens} tokens which exceeds the limit of "
                f"{self.token_limit}; the LLM baseline cannot process this query"
            )

        rng = seeded_rng(derive_seed(self.seed, "llm", query_table.name, k))
        value_pools = {
            column: [
                value
                for value in query_table.column_values(column)
                if not is_null(value)
            ]
            for column in query_table.columns
        }
        num_novel = int(round(self.novel_fraction * k))
        generated: list[AlignedTuple] = []
        for index in range(k):
            if index < num_novel:
                values = self._novel_tuple(query_table, value_pools, rng, index)
            else:
                values = self._redundant_tuple(query_table, rng)
            generated.append(
                AlignedTuple(source_table="llm-generated", source_row=index, values=values)
            )
        return generated

    # ----------------------------------------------------------------- helpers
    def _novel_tuple(
        self,
        query_table: Table,
        value_pools: dict[str, list[object]],
        rng: np.random.Generator,
        index: int,
    ) -> dict[str, object]:
        """Recombine column values across rows and mutate the entity-like column."""
        values: dict[str, object] = {}
        for column in query_table.columns:
            pool = value_pools.get(column, [])
            if not pool:
                values[column] = None
                continue
            values[column] = pool[int(rng.integers(len(pool)))]
        # Perturb the first textual column so the tuple is not an exact copy of
        # any query row: LLMs tend to invent plausible new entity names.
        for column in query_table.columns:
            value = values.get(column)
            if isinstance(value, str) and value:
                values[column] = f"New {value} {index + 1}"
                break
        return values

    def _redundant_tuple(
        self, query_table: Table, rng: np.random.Generator
    ) -> dict[str, object]:
        """Echo one of the query rows nearly verbatim (the redundancy failure mode)."""
        row = query_table.rows[int(rng.integers(query_table.num_rows))]
        return dict(zip(query_table.columns, row))
