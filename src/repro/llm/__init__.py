"""Simulated LLM baseline for diverse tuple generation (paper Sec. 6.5.1)."""

from repro.llm.prompt import build_diversification_prompt, estimate_prompt_tokens
from repro.llm.generator import SimulatedLLM, LLMTokenLimitError

__all__ = [
    "build_diversification_prompt",
    "estimate_prompt_tokens",
    "SimulatedLLM",
    "LLMTokenLimitError",
]
