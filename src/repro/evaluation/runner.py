"""Workload preparation shared by the diversification experiments.

The diversification experiments (Tables 2 and 3, Figs. 7/11/12 and the
appendix analyses) all need the same inputs per query: embeddings of the query
tuples and of the unionable data lake tuples, plus the source table of every
candidate.  :func:`prepare_query_workload` produces these either through the
full DUST alignment stack or — for experiments that deliberately isolate the
diversification stage — through the benchmark's generation provenance, which
gives an exact alignment at zero cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.alignment.holistic import HolisticColumnAligner
from repro.alignment.union import aligned_tuples_from_tables, query_tuples
from repro.benchgen.types import Benchmark
from repro.datalake.table import Table
from repro.embeddings.base import ColumnEncoder, TupleEncoder
from repro.embeddings.serialization import AlignedTuple, serialize_aligned_tuple
from repro.utils.errors import BenchmarkError
from repro.vectorops import DistanceContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.facade import Discovery
    from repro.serving.service import QueryService


@dataclass
class QueryWorkload:
    """Everything a diversification algorithm needs for one query table."""

    query_table: Table
    query_embeddings: np.ndarray
    candidate_embeddings: np.ndarray
    candidates: list[AlignedTuple] = field(default_factory=list)
    table_ids: list[str] = field(default_factory=list)
    _context: DistanceContext | None = field(default=None, repr=False, compare=False)

    @property
    def num_candidates(self) -> int:
        """Number of unionable data lake tuples available to diversify."""
        return len(self.candidates)

    def distance_context(self) -> DistanceContext:
        """One shared distance cache for every method run on this workload."""
        if self._context is None:
            self._context = DistanceContext(
                self.query_embeddings, self.candidate_embeddings
            )
        return self._context


def _provenance_alignment(query_table: Table, lake_tables: Sequence[Table]) -> list[AlignedTuple]:
    """Align lake tuples to the query schema using generation provenance.

    Generated tables record which base column each of their columns derives
    from; two columns align exactly when they derive from the same base
    column.  This is the oracle alignment used when the experiment isolates
    the diversification stage from alignment quality.
    """
    query_provenance = query_table.metadata.get("column_provenance") or {
        column: column for column in query_table.columns
    }
    base_to_query = {base: column for column, base in query_provenance.items()}
    aligned: list[AlignedTuple] = []
    for table in lake_tables:
        provenance = table.metadata.get("column_provenance") or {
            column: column for column in table.columns
        }
        mapping = {
            column: base_to_query[base]
            for column, base in provenance.items()
            if base in base_to_query
        }
        if not mapping:
            continue
        for position, row in enumerate(table.rows):
            values = {
                mapping[column]: row[index]
                for index, column in enumerate(table.columns)
                if column in mapping
            }
            aligned.append(
                AlignedTuple(source_table=table.name, source_row=position, values=values)
            )
    return aligned


def prepare_query_workload(
    benchmark: Benchmark,
    query_table: Table,
    tuple_encoder: TupleEncoder,
    *,
    column_encoder: ColumnEncoder | None = None,
    use_provenance_alignment: bool = True,
    max_candidate_tuples: int | None = None,
    max_unionable_tables: int | None = None,
    search_service: "QueryService | None" = None,
    discovery: "Discovery | None" = None,
    num_search_tables: int = 10,
) -> QueryWorkload:
    """Build the diversification workload of one query table.

    Parameters
    ----------
    use_provenance_alignment:
        ``True`` (default) aligns via generation provenance — the oracle
        setting of Sec. 6.4 that isolates diversification quality.  ``False``
        runs the holistic aligner with ``column_encoder`` instead, exercising
        the full pipeline.
    max_candidate_tuples:
        Optional cap on the number of unionable tuples (the ``s`` of the
        paper's experiments, at most 2 500 in Sec. 6.4.3); tuples are kept in
        table order.
    search_service:
        A prewarmed :class:`~repro.serving.QueryService`.  When given, the
        unionable tables come from its top-``num_search_tables`` search
        rankings (cached and servable in parallel) instead of the benchmark's
        ground truth — the end-to-end setting of Sec. 6.5.
    discovery:
        An attached :class:`~repro.api.facade.Discovery` facade; its
        configured backend (service-cached when the config enables serving)
        supplies the unionable tables.  Mutually exclusive with
        ``search_service``.
    """
    if search_service is not None and discovery is not None:
        raise BenchmarkError(
            "pass either search_service or discovery, not both"
        )
    if discovery is not None:
        lake_tables = discovery.search_tables(query_table, num_search_tables)
    elif search_service is not None:
        lake_tables = search_service.search_tables(query_table, num_search_tables)
    else:
        lake_tables = benchmark.unionable_tables(query_table.name)
    if max_unionable_tables is not None:
        lake_tables = lake_tables[:max_unionable_tables]
    if not lake_tables:
        raise BenchmarkError(
            f"query {query_table.name!r} has no unionable tables in benchmark "
            f"{benchmark.name!r}"
        )

    if use_provenance_alignment:
        candidates = _provenance_alignment(query_table, lake_tables)
    else:
        if column_encoder is None:
            raise BenchmarkError(
                "column_encoder is required when use_provenance_alignment is False"
            )
        alignment = HolisticColumnAligner(column_encoder).align(query_table, lake_tables)
        candidates = aligned_tuples_from_tables(alignment, lake_tables)

    if not candidates:
        raise BenchmarkError(
            f"no unionable tuples could be aligned for query {query_table.name!r}"
        )
    if max_candidate_tuples is not None:
        candidates = candidates[:max_candidate_tuples]

    column_order = list(query_table.columns)
    query_rows = query_tuples(query_table)
    query_texts = [serialize_aligned_tuple(row, column_order) for row in query_rows]
    candidate_texts = [serialize_aligned_tuple(row, column_order) for row in candidates]

    return QueryWorkload(
        query_table=query_table,
        query_embeddings=tuple_encoder.encode_many(query_texts),
        candidate_embeddings=tuple_encoder.encode_many(candidate_texts),
        candidates=candidates,
        table_ids=[candidate.source_table for candidate in candidates],
    )


def prepare_query_workloads(
    benchmark: Benchmark,
    query_tables: Sequence[Table],
    tuple_encoder: TupleEncoder,
    *,
    search_service: "QueryService | None" = None,
    discovery: "Discovery | None" = None,
    num_search_tables: int = 10,
    **workload_kwargs,
) -> dict[str, QueryWorkload]:
    """Build the workloads of several query tables, name-keyed.

    With a ``search_service`` (or a serving-enabled ``discovery`` facade),
    the whole workload's top-k searches run first through
    :meth:`~repro.serving.QueryService.search_many` (parallel, cached) so the
    per-query preparation below is served from the result cache.
    """
    if search_service is not None and discovery is not None:
        raise BenchmarkError("pass either search_service or discovery, not both")
    queries = list(query_tables)
    if search_service is not None:
        search_service.search_many(queries, num_search_tables)
    elif discovery is not None and discovery.config.serving is not None:
        # Without a serving section there is no result cache, so a batch
        # pre-pass would just double the search work.
        discovery.search_many(queries, num_search_tables)
    return {
        query.name: prepare_query_workload(
            benchmark,
            query,
            tuple_encoder,
            search_service=search_service,
            discovery=discovery,
            num_search_tables=num_search_tables,
            **workload_kwargs,
        )
        for query in queries
    }
