"""Tuple representation experiment (paper Sec. 6.3, Fig. 6).

Evaluates a set of tuple encoders — pre-trained baselines, Ditto and the DUST
variants — on the test split of the fine-tuning benchmark, reporting the
accuracy of threshold-based unionability prediction for each model.
"""

from __future__ import annotations

from typing import Mapping

from repro.embeddings.base import TupleEncoder
from repro.embeddings.contextual import (
    BertLikeModel,
    RobertaLikeModel,
    SentenceBertLikeModel,
)
from repro.models.dataset import TuplePairDataset
from repro.models.evaluate import evaluate_encoder_on_pairs


def default_pretrained_baselines() -> dict[str, TupleEncoder]:
    """The un-finetuned encoder baselines of Fig. 6 (BERT, RoBERTa, sBERT)."""
    return {
        "bert": BertLikeModel(),
        "roberta": RobertaLikeModel(),
        "sbert": SentenceBertLikeModel(),
    }


def evaluate_representation_models(
    dataset: TuplePairDataset,
    models: Mapping[str, TupleEncoder],
    *,
    tune_threshold: bool = True,
) -> dict[str, dict[str, float]]:
    """Evaluate every named encoder on the dataset's validation/test splits.

    Returns ``{model name: {"threshold", "validation_accuracy", "test_accuracy"}}``
    — one Fig. 6 cell per model.
    """
    results: dict[str, dict[str, float]] = {}
    for name, encoder in models.items():
        results[name] = evaluate_encoder_on_pairs(
            encoder,
            dataset.validation,
            dataset.test,
            tune_threshold=tune_threshold,
        )
    return results


def format_representation_results(results: Mapping[str, Mapping[str, float]]) -> str:
    """Format Fig. 6 results as an aligned text table (best score highlighted)."""
    if not results:
        return "(no models evaluated)"
    best = max(results, key=lambda name: results[name]["test_accuracy"])
    header = f"{'Model':<18} {'Threshold':>10} {'Val Acc':>9} {'Test Acc':>9}"
    lines = [header, "-" * len(header)]
    for name, scores in results.items():
        marker = "  <= best" if name == best else ""
        lines.append(
            f"{name:<18} {scores['threshold']:>10.2f} "
            f"{scores['validation_accuracy']:>9.3f} {scores['test_accuracy']:>9.3f}{marker}"
        )
    return "\n".join(lines)
