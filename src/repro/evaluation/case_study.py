"""IMDB case-study evaluation (paper Sec. 6.6, Fig. 8).

The case study measures, for increasing ``k``, how many *new* unique values
each method adds to selected columns of the query table.  Methods compared in
the paper: D3L and Starmie (bag-union of their top tables, truncated with SQL
``LIMIT k``), their duplicate-free variants D3L-D / Starmie-D (set union), and
DUST.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.datalake.table import Table
from repro.embeddings.serialization import AlignedTuple
from repro.utils.errors import BenchmarkError
from repro.utils.text import is_null, normalize_text


def _normalized_column_values(values: Iterable[object]) -> set[str]:
    return {
        normalize_text(value)
        for value in values
        if not is_null(value) and normalize_text(value)
    }


def unique_values_added(
    query_table: Table,
    selected_tuples: Sequence[AlignedTuple],
    column: str,
) -> int:
    """Number of distinct new values ``selected_tuples`` add to one query column."""
    if column not in query_table.columns:
        raise BenchmarkError(
            f"column {column!r} is not a column of query table {query_table.name!r}"
        )
    existing = _normalized_column_values(query_table.column_values(column))
    added = _normalized_column_values(
        tuple_.values.get(column) for tuple_ in selected_tuples
    )
    return len(added - existing)


def tuples_from_table_union(
    ranked_tables: Sequence[Table],
    query_columns: Sequence[str],
    k: int,
    *,
    deduplicate: bool = False,
) -> list[AlignedTuple]:
    """Union ranked tables' rows until at least ``k`` tuples, then LIMIT ``k``.

    This reproduces the paper's protocol for the table-search baselines: bag
    union the top-ranked tables in order (set union when ``deduplicate`` is
    true — the "-D" variants), stop once ``k`` tuples are available, and keep
    the first ``k``.  Tables are assumed to share the query schema (the IMDB
    case-study lake does by construction).
    """
    if k <= 0:
        raise BenchmarkError(f"k must be positive, got {k}")
    collected: list[AlignedTuple] = []
    seen_rows: set[tuple] = set()
    for table in ranked_tables:
        for position, row in enumerate(table.rows):
            values = {
                column: row[table.column_index(column)]
                for column in query_columns
                if column in table.columns
            }
            key = tuple(values.get(column) for column in query_columns)
            if deduplicate:
                if key in seen_rows:
                    continue
                seen_rows.add(key)
            collected.append(
                AlignedTuple(source_table=table.name, source_row=position, values=values)
            )
        if len(collected) >= k:
            break
    return collected[:k]


def case_study_series(
    query_table: Table,
    methods: Mapping[str, Sequence[AlignedTuple]],
    columns: Sequence[str],
) -> dict[str, dict[str, int]]:
    """Per-method, per-column count of new unique values (one Fig. 8 point).

    ``methods`` maps a method name to its selected tuples (already truncated
    to the ``k`` under evaluation).
    """
    return {
        method: {
            column: unique_values_added(query_table, tuples, column)
            for column in columns
        }
        for method, tuples in methods.items()
    }
