"""Diversification experiments (paper Sec. 6.4 / Tables 2 and 3).

For every query of a benchmark, each competing method selects ``k`` tuples;
the Average Diversity and Min Diversity of the selection (Sec. 5.4) and the
wall-clock time are recorded.  Following the paper, results are summarised as
the number of queries for which each method achieves the best score per
metric, together with the average time per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.diversifier import DustDiversifier
from repro.core.metrics import average_diversity, min_diversity
from repro.diversify.base import DiversificationRequest, Diversifier
from repro.evaluation.runner import QueryWorkload
from repro.utils.errors import DiversificationError
from repro.utils.timing import timed


@dataclass
class DiversityOutcome:
    """Per-query scores of one method on one benchmark."""

    method: str
    average_scores: dict[str, float] = field(default_factory=dict)
    min_scores: dict[str, float] = field(default_factory=dict)
    times: dict[str, float] = field(default_factory=dict)

    @property
    def mean_time(self) -> float:
        """Average seconds per query."""
        if not self.times:
            return 0.0
        return float(np.mean(list(self.times.values())))


#: A method entry: either a Diversifier instance or a callable
#: ``(workload, k) -> list[int]`` returning selected candidate indices.
MethodLike = Diversifier | Callable[[QueryWorkload, int], list[int]]


def _run_method(method: MethodLike, workload: QueryWorkload, k: int) -> list[int]:
    effective_k = min(k, workload.num_candidates)
    if isinstance(method, Diversifier):
        # Every method's request is a view over the workload's shared
        # DistanceContext, so competing methods never recompute a matrix.
        request = DiversificationRequest(
            query_embeddings=workload.query_embeddings,
            candidate_embeddings=workload.candidate_embeddings,
            k=effective_k,
            context=workload.distance_context(),
        )
        if isinstance(method, DustDiversifier):
            return method.select(request, table_ids=workload.table_ids)
        return method.select(request)
    return method(workload, effective_k)


def evaluate_diversifiers_on_benchmark(
    workloads: Mapping[str, QueryWorkload],
    methods: Mapping[str, MethodLike],
    *,
    k: int,
    metric: str = "cosine",
) -> dict[str, DiversityOutcome]:
    """Run every method on every query workload and record scores and times."""
    if not workloads:
        raise DiversificationError("no query workloads supplied")
    if not methods:
        raise DiversificationError("no diversification methods supplied")

    outcomes = {name: DiversityOutcome(method=name) for name in methods}
    for query_name, workload in workloads.items():
        for method_name, method in methods.items():
            selection, elapsed = timed(_run_method, method, workload, k)
            selected = workload.candidate_embeddings[np.asarray(selection, dtype=int)]
            context = workload.distance_context()
            outcome = outcomes[method_name]
            outcome.average_scores[query_name] = average_diversity(
                workload.query_embeddings,
                selected,
                metric=metric,
                context=context,
                selected_indices=selection,
            )
            outcome.min_scores[query_name] = min_diversity(
                workload.query_embeddings,
                selected,
                metric=metric,
                context=context,
                selected_indices=selection,
            )
            outcome.times[query_name] = elapsed
    return outcomes


def count_wins(
    outcomes: Mapping[str, DiversityOutcome],
    *,
    tolerance: float = 1e-9,
) -> dict[str, dict[str, float]]:
    """Summarise outcomes as the paper's Tables 2/3 rows.

    For every method: the number of queries where it achieves the (possibly
    tied) best Average Diversity, the number where it achieves the best Min
    Diversity, and its average time per query.
    """
    if not outcomes:
        return {}
    methods = list(outcomes)
    queries = list(next(iter(outcomes.values())).average_scores)
    summary = {
        name: {"average_wins": 0, "min_wins": 0, "mean_time": outcomes[name].mean_time}
        for name in methods
    }
    for query in queries:
        best_average = max(outcomes[name].average_scores[query] for name in methods)
        best_minimum = max(outcomes[name].min_scores[query] for name in methods)
        for name in methods:
            if outcomes[name].average_scores[query] >= best_average - tolerance:
                summary[name]["average_wins"] += 1
            if outcomes[name].min_scores[query] >= best_minimum - tolerance:
                summary[name]["min_wins"] += 1
    return summary


def format_win_table(summary: Mapping[str, Mapping[str, float]], *, benchmark: str) -> str:
    """Format a Table 2/3-style summary as aligned text."""
    header = f"{'Method':<12} {'# Average':>10} {'# Min':>7} {'Time (s)':>10}   [{benchmark}]"
    lines = [header, "-" * len(header)]
    for name, row in summary.items():
        lines.append(
            f"{name:<12} {int(row['average_wins']):>10} {int(row['min_wins']):>7} "
            f"{row['mean_time']:>10.3f}"
        )
    return "\n".join(lines)


def selection_from_tuples(
    workload: QueryWorkload, tuples: Sequence[int]
) -> np.ndarray:
    """Embeddings of a selection given as candidate indices (helper for baselines)."""
    return workload.candidate_embeddings[np.asarray(list(tuples), dtype=int)]
