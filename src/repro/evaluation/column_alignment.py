"""Column alignment evaluation (paper Sec. 6.2.2, Table 1).

Alignments are scored as sets of unordered column pairs: the ground truth
contains every pair formed by a query column and a data lake column deriving
from the same base column, every pair of data lake columns sharing the same
matching query column, plus a self-pair for query columns with no match.  A
method's clusters are converted to the same representation and precision,
recall and F1 are computed over the pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.alignment.types import ColumnAlignment
from repro.benchgen.types import Benchmark
from repro.datalake.table import Table
from repro.utils.errors import BenchmarkError


@dataclass(frozen=True)
class AlignmentScores:
    """Precision / recall / F1 of one alignment against the ground truth."""

    precision: float
    recall: float
    f1: float


def _column_provenance(table: Table) -> Mapping[str, str]:
    """Map each column of a generated table back to its base-table column."""
    provenance = table.metadata.get("column_provenance")
    if provenance is None:
        # Base and query tables generated without renaming map to themselves.
        return {column: column for column in table.columns}
    return provenance


def alignment_ground_truth(
    query_table: Table, lake_tables: Sequence[Table]
) -> set[frozenset[str]]:
    """Build the ground-truth pair set for a query and its unionable tables.

    Requires the tables to carry generation provenance metadata (all benchmark
    generators produce it); user-supplied tables without provenance raise
    :class:`BenchmarkError` because no ground truth can be derived for them.
    """
    query_provenance = _column_provenance(query_table)
    clusters: dict[str, list[str]] = {}
    for column in query_table.columns:
        base_column = query_provenance.get(column)
        if base_column is None:
            raise BenchmarkError(
                f"query column {column!r} has no provenance metadata"
            )
        clusters[base_column] = [f"{query_table.name}.{column}"]

    for table in lake_tables:
        provenance = _column_provenance(table)
        for column in table.columns:
            base_column = provenance.get(column)
            if base_column in clusters:
                clusters[base_column].append(f"{table.name}.{column}")

    return ColumnAlignment.pairs_from_clusters(clusters.values())


def alignment_precision_recall_f1(
    predicted_pairs: set[frozenset[str]],
    ground_truth_pairs: set[frozenset[str]],
) -> AlignmentScores:
    """Precision / recall / F1 between predicted and ground-truth pair sets."""
    if not predicted_pairs and not ground_truth_pairs:
        return AlignmentScores(precision=1.0, recall=1.0, f1=1.0)
    intersection = len(predicted_pairs & ground_truth_pairs)
    precision = intersection / len(predicted_pairs) if predicted_pairs else 0.0
    recall = intersection / len(ground_truth_pairs) if ground_truth_pairs else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return AlignmentScores(precision=precision, recall=recall, f1=f1)


def evaluate_alignment_on_benchmark(
    benchmark: Benchmark,
    align: Callable[[Table, Sequence[Table]], ColumnAlignment],
    *,
    max_queries: int | None = None,
    max_tables_per_query: int | None = None,
) -> AlignmentScores:
    """Average alignment P/R/F1 of an aligner over a benchmark's queries.

    ``align`` is any callable with the aligner signature (typically
    ``HolisticColumnAligner(...).align`` or ``BipartiteColumnAligner(...).align``).
    """
    queries = benchmark.query_tables
    if max_queries is not None:
        queries = queries[:max_queries]
    if not queries:
        raise BenchmarkError(f"benchmark {benchmark.name!r} has no query tables")

    precisions, recalls, f1s = [], [], []
    for query in queries:
        lake_tables = benchmark.unionable_tables(query.name)
        if max_tables_per_query is not None:
            lake_tables = lake_tables[:max_tables_per_query]
        if not lake_tables:
            continue
        alignment = align(query, lake_tables)
        scores = alignment_precision_recall_f1(
            alignment.aligned_pairs(),
            alignment_ground_truth(query, lake_tables),
        )
        precisions.append(scores.precision)
        recalls.append(scores.recall)
        f1s.append(scores.f1)

    if not f1s:
        raise BenchmarkError(
            f"no queries of benchmark {benchmark.name!r} had unionable tables"
        )
    count = len(f1s)
    return AlignmentScores(
        precision=sum(precisions) / count,
        recall=sum(recalls) / count,
        f1=sum(f1s) / count,
    )
