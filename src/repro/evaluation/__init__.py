"""Experiment harness: the evaluation logic behind every paper table/figure."""

from repro.evaluation.column_alignment import (
    alignment_ground_truth,
    alignment_precision_recall_f1,
    evaluate_alignment_on_benchmark,
)
from repro.evaluation.representation import evaluate_representation_models
from repro.evaluation.diversity import (
    DiversityOutcome,
    evaluate_diversifiers_on_benchmark,
    count_wins,
)
from repro.evaluation.case_study import unique_values_added, case_study_series
from repro.evaluation.runner import (
    prepare_query_workload,
    prepare_query_workloads,
    QueryWorkload,
)

__all__ = [
    "alignment_ground_truth",
    "alignment_precision_recall_f1",
    "evaluate_alignment_on_benchmark",
    "evaluate_representation_models",
    "DiversityOutcome",
    "evaluate_diversifiers_on_benchmark",
    "count_wins",
    "unique_values_added",
    "case_study_series",
    "prepare_query_workload",
    "prepare_query_workloads",
    "QueryWorkload",
]
