"""Principal component analysis.

Fig. 2 of the paper plots 768-dimension table and tuple embeddings projected
to two principal components to argue that *tuples* spread much more widely in
the embedding space than *tables*.  This small PCA implementation (SVD on the
centred data matrix) powers the Fig. 2 reproduction in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError


class PCA:
    """Principal component analysis via singular value decomposition."""

    def __init__(self, num_components: int = 2) -> None:
        if num_components <= 0:
            raise ConfigurationError(
                f"num_components must be positive, got {num_components}"
            )
        self.num_components = num_components
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._explained_variance: np.ndarray | None = None
        self._explained_variance_ratio: np.ndarray | None = None

    # ---------------------------------------------------------------- fitting
    def fit(self, data: np.ndarray) -> "PCA":
        """Fit principal axes on ``data`` of shape ``(n_samples, n_features)``."""
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2:
            raise ConfigurationError(f"data must be 2-D, got shape {matrix.shape}")
        n_samples, n_features = matrix.shape
        if n_samples < 2:
            raise ConfigurationError("PCA requires at least two samples")
        limit = min(n_samples, n_features)
        if self.num_components > limit:
            raise ConfigurationError(
                f"num_components={self.num_components} exceeds min(n_samples, "
                f"n_features)={limit}"
            )
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self._components = vt[: self.num_components]
        variance = (singular_values**2) / (n_samples - 1)
        self._explained_variance = variance[: self.num_components]
        total = variance.sum()
        self._explained_variance_ratio = (
            self._explained_variance / total if total > 0 else np.zeros_like(self._explained_variance)
        )
        return self

    # ------------------------------------------------------------- projection
    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the fitted principal axes."""
        if self._components is None or self._mean is None:
            raise ConfigurationError("PCA.transform called before fit()")
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        return (matrix - self._mean) @ self._components.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    # ------------------------------------------------------------- attributes
    @property
    def components(self) -> np.ndarray:
        """Principal axes, shape ``(num_components, n_features)``."""
        if self._components is None:
            raise ConfigurationError("PCA.components accessed before fit()")
        return self._components

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each component."""
        if self._explained_variance_ratio is None:
            raise ConfigurationError(
                "PCA.explained_variance_ratio accessed before fit()"
            )
        return self._explained_variance_ratio
