"""Silhouette coefficient and cluster-count selection.

The paper selects the number of column clusters by maximising Silhouette's
coefficient over candidate cuts of the dendrogram (Sec. 3.3, following
Khatiwada et al. [26] and Rousseeuw [44]).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import ConfigurationError


def silhouette_score(
    embeddings: np.ndarray,
    labels: Sequence[int] | np.ndarray,
    *,
    metric: str = "euclidean",
    distances: np.ndarray | None = None,
) -> float:
    """Mean silhouette coefficient of a clustering.

    Singleton clusters contribute a silhouette of 0 (the standard convention).
    A clustering with a single cluster or with every item in its own cluster
    is scored 0, since the coefficient is undefined there.  ``distances``
    optionally supplies the precomputed pairwise matrix under ``metric`` so
    repeated scoring of candidate cuts reuses one computation.
    """
    matrix = np.asarray(embeddings, dtype=np.float64)
    label_array = np.asarray(labels, dtype=np.int64)
    if matrix.ndim != 2:
        raise ConfigurationError(f"embeddings must be 2-D, got shape {matrix.shape}")
    if label_array.shape[0] != matrix.shape[0]:
        raise ConfigurationError(
            f"{label_array.shape[0]} labels for {matrix.shape[0]} embeddings"
        )
    n = matrix.shape[0]
    unique = np.unique(label_array)
    if len(unique) < 2 or len(unique) >= n:
        return 0.0

    if distances is None:
        distances = pairwise_distance_matrix(matrix, metric=metric)
    elif distances.shape != (n, n):
        raise ConfigurationError(
            f"distances has shape {distances.shape} for {n} embeddings"
        )
    scores = np.zeros(n, dtype=np.float64)
    members_by_label = {int(label): np.flatnonzero(label_array == label) for label in unique}

    for index in range(n):
        own_label = int(label_array[index])
        own_members = members_by_label[own_label]
        if len(own_members) <= 1:
            scores[index] = 0.0
            continue
        within = distances[index, own_members]
        a_value = (within.sum()) / (len(own_members) - 1)
        b_value = np.inf
        for label, members in members_by_label.items():
            if label == own_label:
                continue
            b_value = min(b_value, float(distances[index, members].mean()))
        denominator = max(a_value, b_value)
        scores[index] = 0.0 if denominator == 0 else (b_value - a_value) / denominator

    return float(scores.mean())


def best_num_clusters(
    embeddings: np.ndarray,
    labels_for: Callable[[int], Sequence[int] | np.ndarray],
    candidates: Iterable[int],
    *,
    metric: str = "euclidean",
) -> tuple[int, float]:
    """Choose the cluster count maximising the silhouette coefficient.

    Parameters
    ----------
    embeddings:
        ``(n, dim)`` item embeddings.
    labels_for:
        Callback mapping a candidate cluster count to labels (typically
        ``lambda k: clustering.labels_for(k).labels``).
    candidates:
        Candidate cluster counts to evaluate; counts outside ``[2, n]`` are
        skipped.  Ties are broken in favour of the smaller count.

    Returns
    -------
    ``(best_count, best_score)``.  If no candidate is valid, ``(1, 0.0)``.
    """
    matrix = np.asarray(embeddings, dtype=np.float64)
    n = matrix.shape[0]
    best_count, best_score = 1, -np.inf
    evaluated = False
    distances: np.ndarray | None = None
    for candidate in sorted(set(int(c) for c in candidates)):
        if candidate < 2 or candidate > n:
            continue
        if distances is None:
            # One matrix shared by every candidate cut instead of one per cut.
            distances = pairwise_distance_matrix(matrix, metric=metric)
        labels = labels_for(candidate)
        score = silhouette_score(matrix, labels, metric=metric, distances=distances)
        evaluated = True
        if score > best_score:
            best_count, best_score = candidate, score
    if not evaluated:
        return 1, 0.0
    return best_count, float(best_score)
