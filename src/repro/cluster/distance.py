"""Vector distance functions.

The paper uses cosine distance throughout (Sec. 4 and Sec. 6.4.1) and reports
that Manhattan and Euclidean distances give the same relative ordering of the
baselines; all three are provided here behind a common interface so the
benchmark harness can sweep them.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.spatial.distance import cdist

#: Signature shared by all pairwise distance functions on single vectors.
DistanceFunction = Callable[[np.ndarray, np.ndarray], float]


def _as_2d(matrix: np.ndarray) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {array.shape}")
    return array


# --------------------------------------------------------------------- cosine
def cosine_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine distance ``1 - cos(first, second)`` in ``[0, 2]``.

    Zero vectors are treated as maximally distant (distance 1.0) so that
    fully-null tuples never look identical to real tuples.
    """
    first = np.asarray(first, dtype=np.float64).ravel()
    second = np.asarray(second, dtype=np.float64).ravel()
    norm_first = float(np.linalg.norm(first))
    norm_second = float(np.linalg.norm(second))
    if norm_first == 0.0 or norm_second == 0.0:
        return 1.0
    similarity = float(first @ second) / (norm_first * norm_second)
    similarity = max(-1.0, min(1.0, similarity))
    return 1.0 - similarity


def cosine_distance_matrix(first: np.ndarray, second: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine distance matrix between the rows of two matrices.

    Normalises the rows and delegates to
    :func:`cosine_distance_matrix_from_unit`, which holds the single
    implementation of the clipping / zero-vector / diagonal semantics.
    """
    left = _as_2d(first)
    left_norms = np.linalg.norm(left, axis=1, keepdims=True)
    safe_left = np.where(left_norms == 0.0, 1.0, left_norms)
    left_zero = (left_norms == 0.0).ravel()
    if second is None:
        return cosine_distance_matrix_from_unit(left / safe_left, left_zero=left_zero)
    right = _as_2d(second)
    right_norms = np.linalg.norm(right, axis=1, keepdims=True)
    safe_right = np.where(right_norms == 0.0, 1.0, right_norms)
    return cosine_distance_matrix_from_unit(
        left / safe_left,
        right / safe_right,
        left_zero=left_zero,
        right_zero=(right_norms == 0.0).ravel(),
    )


def cosine_distance_matrix_from_unit(
    left_unit: np.ndarray,
    right_unit: np.ndarray | None = None,
    *,
    left_zero: np.ndarray | None = None,
    right_zero: np.ndarray | None = None,
) -> np.ndarray:
    """Cosine distance matrix from rows that are already unit-normalised.

    ``left_zero`` / ``right_zero`` are boolean masks of originally-zero rows
    (which stay all-zero after normalisation).  Given the normalisation that
    :func:`cosine_distance_matrix` performs internally, this produces the
    identical matrix — callers that normalise once (such as
    :class:`~repro.vectorops.EmbeddingMatrix`) skip the per-call norm
    computation.
    """
    right = left_unit if right_unit is None else right_unit
    similarity = left_unit @ right.T
    similarity = np.clip(similarity, -1.0, 1.0)
    distances = 1.0 - similarity
    if right_unit is None:
        right_zero = left_zero
    if left_zero is not None and left_zero.any():
        distances[left_zero, :] = 1.0
    if right_zero is not None and right_zero.any():
        distances[:, right_zero] = 1.0
    if right_unit is None:
        np.fill_diagonal(distances, 0.0)
    return distances


# ------------------------------------------------------------------ euclidean
def euclidean_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Euclidean (L2) distance."""
    first = np.asarray(first, dtype=np.float64).ravel()
    second = np.asarray(second, dtype=np.float64).ravel()
    return float(np.linalg.norm(first - second))


def euclidean_distance_matrix(first: np.ndarray, second: np.ndarray | None = None) -> np.ndarray:
    """Pairwise Euclidean distance matrix (BLAS Gram trick, in-place finish).

    The element-wise operations run in place on two buffers (the broadcast
    norm sum and the Gram matrix) so no extra ``(n, m)`` temporaries are
    allocated; the association order matches the naive
    ``left_sq + right_sq - 2 * gram`` expression bit for bit.
    """
    left = _as_2d(first)
    right = left if second is None else _as_2d(second)
    left_sq = np.sum(left**2, axis=1)[:, None]
    right_sq = np.sum(right**2, axis=1)[None, :]
    gram = left @ right.T
    gram *= 2.0
    squared = left_sq + right_sq
    squared -= gram
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared, out=squared)
    if second is None:
        np.fill_diagonal(distances, 0.0)
    return distances


# ------------------------------------------------------------------ manhattan
def manhattan_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Manhattan (L1) distance."""
    first = np.asarray(first, dtype=np.float64).ravel()
    second = np.asarray(second, dtype=np.float64).ravel()
    return float(np.sum(np.abs(first - second)))


def manhattan_distance_matrix(first: np.ndarray, second: np.ndarray | None = None) -> np.ndarray:
    """Pairwise Manhattan distance matrix (cdist-backed, no Python loop)."""
    left = _as_2d(first)
    right = left if second is None else _as_2d(second)
    distances = cdist(left, right, "cityblock")
    if second is None:
        np.fill_diagonal(distances, 0.0)
    return distances


#: Named registry used by configuration objects and the benchmark harness.
DISTANCE_FUNCTIONS: dict[str, DistanceFunction] = {
    "cosine": cosine_distance,
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
}

#: Matrix-form counterparts of :data:`DISTANCE_FUNCTIONS`.
DISTANCE_MATRIX_FUNCTIONS = {
    "cosine": cosine_distance_matrix,
    "euclidean": euclidean_distance_matrix,
    "manhattan": manhattan_distance_matrix,
}


def pairwise_distance_matrix(
    first: np.ndarray,
    second: np.ndarray | None = None,
    *,
    metric: str = "cosine",
) -> np.ndarray:
    """Pairwise distance matrix for a named metric (cosine/euclidean/manhattan)."""
    try:
        matrix_function = DISTANCE_MATRIX_FUNCTIONS[metric]
    except KeyError as exc:
        raise ValueError(
            f"unknown metric {metric!r}; available: {sorted(DISTANCE_MATRIX_FUNCTIONS)}"
        ) from exc
    return matrix_function(first, second)
