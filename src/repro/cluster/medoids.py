"""Medoid extraction from clusters.

DUST and the CLT baseline select each cluster's medoid — the member closest to
every other member — as the cluster's representative diverse tuple (Sec. 5.2),
which is more robust to outliers than taking the centroid's nearest neighbour.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import ConfigurationError


def cluster_members(labels: Sequence[int] | np.ndarray) -> dict[int, list[int]]:
    """Group item indices by cluster label (labels returned sorted)."""
    groups: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(int(label), []).append(index)
    return {label: groups[label] for label in sorted(groups)}


def medoid_index(
    embeddings: np.ndarray,
    member_indices: Sequence[int],
    *,
    metric: str = "cosine",
    distances: np.ndarray | None = None,
) -> int:
    """Return the index (into ``embeddings``) of the medoid of ``member_indices``.

    The medoid is the member minimising the sum of distances to all other
    members; ties are broken by the smaller index so the result is
    deterministic.  When ``distances`` (the full pairwise matrix over all
    items) is supplied, the member sub-matrix is a view of it and no distance
    is recomputed.
    """
    if not member_indices:
        raise ConfigurationError("medoid_index called with an empty member list")
    if len(member_indices) == 1:
        return int(member_indices[0])
    members = list(member_indices)
    if distances is not None:
        sub = distances[np.ix_(members, members)]
    else:
        sub = pairwise_distance_matrix(
            np.asarray(embeddings, dtype=np.float64)[members], metric=metric
        )
    totals = sub.sum(axis=1)
    best_local = int(np.argmin(totals))
    return int(member_indices[best_local])


def cluster_medoids(
    embeddings: np.ndarray,
    labels: Sequence[int] | np.ndarray,
    *,
    metric: str = "cosine",
    distances: np.ndarray | None = None,
) -> list[int]:
    """Return one medoid index per cluster, ordered by cluster label.

    ``distances`` optionally supplies the precomputed pairwise matrix over all
    items (e.g. a :meth:`~repro.vectorops.DistanceContext.within` view) so the
    per-cluster sub-matrices are served from cache.
    """
    matrix = np.asarray(embeddings, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError(f"embeddings must be 2-D, got shape {matrix.shape}")
    if len(labels) != matrix.shape[0]:
        raise ConfigurationError(
            f"{len(labels)} labels for {matrix.shape[0]} embeddings"
        )
    if distances is not None and distances.shape != (matrix.shape[0], matrix.shape[0]):
        raise ConfigurationError(
            f"distances has shape {distances.shape} for {matrix.shape[0]} embeddings"
        )
    return [
        medoid_index(matrix, members, metric=metric, distances=distances)
        for members in cluster_members(labels).values()
    ]
