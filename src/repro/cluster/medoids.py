"""Medoid extraction from clusters.

DUST and the CLT baseline select each cluster's medoid — the member closest to
every other member — as the cluster's representative diverse tuple (Sec. 5.2),
which is more robust to outliers than taking the centroid's nearest neighbour.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import ConfigurationError


def cluster_members(labels: Sequence[int] | np.ndarray) -> dict[int, list[int]]:
    """Group item indices by cluster label (labels returned sorted)."""
    groups: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(int(label), []).append(index)
    return {label: groups[label] for label in sorted(groups)}


def medoid_index(
    embeddings: np.ndarray,
    member_indices: Sequence[int],
    *,
    metric: str = "cosine",
) -> int:
    """Return the index (into ``embeddings``) of the medoid of ``member_indices``.

    The medoid is the member minimising the sum of distances to all other
    members; ties are broken by the smaller index so the result is
    deterministic.
    """
    if not member_indices:
        raise ConfigurationError("medoid_index called with an empty member list")
    if len(member_indices) == 1:
        return int(member_indices[0])
    members = np.asarray(embeddings, dtype=np.float64)[list(member_indices)]
    distances = pairwise_distance_matrix(members, metric=metric)
    totals = distances.sum(axis=1)
    best_local = int(np.argmin(totals))
    return int(member_indices[best_local])


def cluster_medoids(
    embeddings: np.ndarray,
    labels: Sequence[int] | np.ndarray,
    *,
    metric: str = "cosine",
) -> list[int]:
    """Return one medoid index per cluster, ordered by cluster label."""
    matrix = np.asarray(embeddings, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError(f"embeddings must be 2-D, got shape {matrix.shape}")
    if len(labels) != matrix.shape[0]:
        raise ConfigurationError(
            f"{len(labels)} labels for {matrix.shape[0]} embeddings"
        )
    return [
        medoid_index(matrix, members, metric=metric)
        for members in cluster_members(labels).values()
    ]
