"""Clustering substrate: distances, constrained agglomerative clustering,
silhouette quality, medoid extraction and PCA."""

from repro.cluster.distance import (
    cosine_distance,
    cosine_distance_matrix,
    euclidean_distance,
    euclidean_distance_matrix,
    manhattan_distance,
    manhattan_distance_matrix,
    pairwise_distance_matrix,
    DISTANCE_FUNCTIONS,
)
from repro.cluster.agglomerative import AgglomerativeClustering, ClusteringResult
from repro.cluster.silhouette import silhouette_score, best_num_clusters
from repro.cluster.medoids import cluster_medoids, cluster_members, medoid_index
from repro.cluster.pca import PCA

__all__ = [
    "cosine_distance",
    "cosine_distance_matrix",
    "euclidean_distance",
    "euclidean_distance_matrix",
    "manhattan_distance",
    "manhattan_distance_matrix",
    "pairwise_distance_matrix",
    "DISTANCE_FUNCTIONS",
    "AgglomerativeClustering",
    "ClusteringResult",
    "silhouette_score",
    "best_num_clusters",
    "cluster_medoids",
    "cluster_members",
    "medoid_index",
    "PCA",
]
