"""Hierarchical (agglomerative) clustering with optional cannot-link constraints.

Two code paths are provided behind one interface:

* **Unconstrained clustering** delegates to ``scipy.cluster.hierarchy`` which
  is fast enough for the thousands of tuple embeddings DUST clusters in
  Algorithm 2 (and for the CLT diversification baseline).
* **Constrained clustering** is a from-scratch Lance–Williams implementation
  that supports the paper's column-alignment constraint: *no two columns from
  the same table may be clustered together* (Sec. 3.3).  Column alignment only
  ever clusters tens of columns, so the pure-Python path is more than fast
  enough.

Both paths build a full merge history so the caller can cut the dendrogram at
any number of clusters — which is exactly what the silhouette-based selection
of the number of clusters needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.cluster.distance import pairwise_distance_matrix
from repro.utils.errors import ConfigurationError

SUPPORTED_LINKAGE = ("average", "complete", "single")


@dataclass(frozen=True)
class ClusteringResult:
    """Cluster labels for one cut of the dendrogram.

    Labels are contiguous integers starting at 0, in order of first
    appearance, so results are deterministic and easy to assert on.
    """

    labels: np.ndarray
    num_clusters: int

    def members(self) -> list[list[int]]:
        """Return the item indices of each cluster, ordered by label."""
        groups: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            groups.setdefault(int(label), []).append(index)
        return [groups[label] for label in sorted(groups)]


def _canonical_labels(raw_labels: Sequence[int]) -> np.ndarray:
    """Relabel clusters as 0..k-1 in order of first appearance."""
    mapping: dict[int, int] = {}
    canonical = np.empty(len(raw_labels), dtype=np.int64)
    for index, label in enumerate(raw_labels):
        label = int(label)
        if label not in mapping:
            mapping[label] = len(mapping)
        canonical[index] = mapping[label]
    return canonical


class AgglomerativeClustering:
    """Agglomerative clustering over a set of embedding vectors.

    Parameters
    ----------
    linkage:
        ``"average"`` (paper default), ``"complete"`` or ``"single"``.
    metric:
        ``"euclidean"`` (paper default for column alignment), ``"cosine"`` or
        ``"manhattan"``.
    """

    def __init__(self, *, linkage: str = "average", metric: str = "euclidean") -> None:
        if linkage not in SUPPORTED_LINKAGE:
            raise ConfigurationError(
                f"linkage must be one of {SUPPORTED_LINKAGE}, got {linkage!r}"
            )
        self.linkage = linkage
        self.metric = metric
        self._num_items = 0
        self._merges: list[tuple[int, int]] = []
        self._scipy_linkage: np.ndarray | None = None
        self._min_clusters = 1

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        embeddings: np.ndarray,
        *,
        constraint_groups: Sequence[object] | None = None,
        precomputed_distances: np.ndarray | None = None,
    ) -> "AgglomerativeClustering":
        """Build the merge history for ``embeddings``.

        Parameters
        ----------
        embeddings:
            ``(n, dim)`` matrix of item embeddings.
        constraint_groups:
            Optional per-item group labels; two items sharing a label can
            never end up in the same cluster (cannot-link constraint).  Column
            alignment passes the owning table name of each column.
        precomputed_distances:
            Optional ``(n, n)`` pairwise distance matrix under ``self.metric``
            (typically a :meth:`~repro.vectorops.DistanceContext.within` view).
            When given, neither path recomputes distances: the scipy path
            condenses the matrix instead of running ``pdist``, and the
            constrained path consumes it directly.  Note the library kernels
            differ from scipy's ``pdist`` in two deliberate ways: cosine
            distances of zero vectors are 1.0 instead of NaN (``pdist`` makes
            ``linkage`` raise on such inputs), and the BLAS-backed euclidean
            kernel computes ``sqrt(|x|² + |y|² - 2x·y)``, whose cancellation
            error makes distances below ~``1e-7 * row_norm`` unreliable.  In
            practice this only reorders merges among near-duplicate rows
            (whose merge order is arbitrary anyway); pass a ``cdist``-exact
            matrix instead if ``pdist``-identical dendrograms matter more
            than the BLAS speedup.
        """
        matrix = np.asarray(embeddings, dtype=np.float64)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"embeddings must be a 2-D matrix, got shape {matrix.shape}"
            )
        self._num_items = matrix.shape[0]
        if self._num_items == 0:
            raise ConfigurationError("cannot cluster an empty embedding matrix")
        if constraint_groups is not None and len(constraint_groups) != self._num_items:
            raise ConfigurationError(
                f"constraint_groups has {len(constraint_groups)} entries for "
                f"{self._num_items} items"
            )
        if precomputed_distances is not None and precomputed_distances.shape != (
            self._num_items,
            self._num_items,
        ):
            raise ConfigurationError(
                f"precomputed_distances has shape {precomputed_distances.shape} "
                f"for {self._num_items} items"
            )

        self._merges = []
        self._scipy_linkage = None
        self._min_clusters = 1

        if self._num_items == 1:
            return self

        if constraint_groups is None:
            if precomputed_distances is not None:
                condensed = squareform(precomputed_distances, checks=False)
                self._scipy_linkage = scipy_linkage(condensed, method=self.linkage)
            else:
                scipy_metric = "cityblock" if self.metric == "manhattan" else self.metric
                self._scipy_linkage = scipy_linkage(
                    matrix, method=self.linkage, metric=scipy_metric
                )
            return self

        self._fit_constrained(
            matrix, list(constraint_groups), precomputed=precomputed_distances
        )
        return self

    # -------------------------------------------------------- constrained path
    def _fit_constrained(
        self,
        matrix: np.ndarray,
        groups: list[object],
        *,
        precomputed: np.ndarray | None = None,
    ) -> None:
        n = matrix.shape[0]
        if precomputed is not None:
            distances = precomputed
        else:
            distances = pairwise_distance_matrix(matrix, metric=self.metric)

        # active[i] is True while cluster id i still exists; clusters 0..n-1 are
        # singletons, new clusters get ids n, n+1, ... (scipy convention).
        max_clusters = 2 * n - 1
        active = np.zeros(max_clusters, dtype=bool)
        active[:n] = True
        sizes = np.zeros(max_clusters, dtype=np.int64)
        sizes[:n] = 1
        cluster_groups: list[set[object]] = [set() for _ in range(max_clusters)]
        for index, group in enumerate(groups):
            cluster_groups[index] = {group}

        # Working distance matrix indexed by cluster id (grown as merges happen).
        working = np.full((max_clusters, max_clusters), np.inf, dtype=np.float64)
        working[:n, :n] = distances
        np.fill_diagonal(working, np.inf)
        # Forbid same-group singleton pairs up-front.
        for i in range(n):
            for j in range(i + 1, n):
                if groups[i] == groups[j]:
                    working[i, j] = working[j, i] = np.inf

        current = n
        while True:
            active_ids = np.flatnonzero(active)
            if len(active_ids) <= 1:
                break
            sub = working[np.ix_(active_ids, active_ids)]
            best_flat = int(np.argmin(sub))
            best_value = sub.flat[best_flat]
            if not np.isfinite(best_value):
                break  # every remaining pair violates a constraint
            row, col = divmod(best_flat, len(active_ids))
            first, second = int(active_ids[row]), int(active_ids[col])

            new_id = current
            current += 1
            self._merges.append((first, second))
            active[first] = active[second] = False
            active[new_id] = True
            sizes[new_id] = sizes[first] + sizes[second]
            cluster_groups[new_id] = cluster_groups[first] | cluster_groups[second]

            # Lance–Williams update of distances from the new cluster to the rest.
            for other in np.flatnonzero(active):
                other = int(other)
                if other == new_id:
                    continue
                if cluster_groups[new_id] & cluster_groups[other]:
                    updated = np.inf
                else:
                    d_first = working[first, other]
                    d_second = working[second, other]
                    if self.linkage == "single":
                        updated = min(d_first, d_second)
                    elif self.linkage == "complete":
                        updated = max(d_first, d_second)
                    else:  # average
                        updated = (
                            sizes[first] * d_first + sizes[second] * d_second
                        ) / (sizes[first] + sizes[second])
                working[new_id, other] = working[other, new_id] = updated

        self._min_clusters = self._num_items - len(self._merges)

    # ------------------------------------------------------------------- cuts
    @property
    def num_items(self) -> int:
        """Number of items seen by :meth:`fit`."""
        return self._num_items

    @property
    def min_clusters(self) -> int:
        """Smallest achievable number of clusters (``>1`` only with constraints)."""
        return self._min_clusters

    def labels_for(self, num_clusters: int) -> ClusteringResult:
        """Cut the dendrogram into ``num_clusters`` clusters.

        When constraints make ``num_clusters`` unreachable, the closest
        achievable count (``min_clusters``) is returned instead.
        """
        if self._num_items == 0:
            raise ConfigurationError("labels_for called before fit()")
        if num_clusters <= 0:
            raise ConfigurationError(
                f"num_clusters must be positive, got {num_clusters}"
            )
        num_clusters = min(num_clusters, self._num_items)

        if self._num_items == 1:
            return ClusteringResult(labels=np.zeros(1, dtype=np.int64), num_clusters=1)

        if self._scipy_linkage is not None:
            raw = fcluster(self._scipy_linkage, t=num_clusters, criterion="maxclust")
            labels = _canonical_labels(raw)
            return ClusteringResult(labels=labels, num_clusters=int(labels.max()) + 1)

        num_clusters = max(num_clusters, self._min_clusters)
        parent = list(range(self._num_items))

        def find(item: int) -> int:
            while parent[item] != item:
                parent[item] = parent[parent[item]]
                item = parent[item]
            return item

        # Replay merges until the requested number of clusters remains.  Merge
        # ids >= num_items refer to earlier merge results (scipy convention),
        # so map every cluster id back to a representative item index.
        representative: dict[int, int] = {i: i for i in range(self._num_items)}
        clusters_remaining = self._num_items
        for merge_index, (first, second) in enumerate(self._merges):
            if clusters_remaining <= num_clusters:
                break
            root_first = find(representative[first])
            root_second = find(representative[second])
            parent[root_second] = root_first
            representative[self._num_items + merge_index] = root_first
            clusters_remaining -= 1

        raw = [find(i) for i in range(self._num_items)]
        labels = _canonical_labels(raw)
        return ClusteringResult(labels=labels, num_clusters=int(labels.max()) + 1)

    def cluster(
        self,
        embeddings: np.ndarray,
        num_clusters: int,
        *,
        constraint_groups: Sequence[object] | None = None,
        precomputed_distances: np.ndarray | None = None,
    ) -> ClusteringResult:
        """Convenience: fit and cut in a single call."""
        self.fit(
            embeddings,
            constraint_groups=constraint_groups,
            precomputed_distances=precomputed_distances,
        )
        return self.labels_for(num_clusters)
