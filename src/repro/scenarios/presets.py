"""Evidence-backed named deployment presets.

Each preset is a full :class:`~repro.api.config.DiscoveryConfig` payload
that appears verbatim as a cell of the scenario matrix's config grid
(:mod:`repro.scenarios.runner`), so its trade-offs are *measured*, not
asserted: ``BENCH_scenarios.json`` records, per preset, whether any other
grid config dominates it on its target scenario's Pareto objectives.
``DiscoveryConfig.preset(name)`` resolves these by name.

* ``exact`` — flat exact search plus a result cache: recall 1.0 by
  construction.  Target: ``near-duplicates``, where tiny score margins
  make approximate prefilters pay in recall.
* ``balanced`` — approximate cascade at a generous candidate budget plus a
  result cache: the middle of the latency/recall trade, with the
  exact-scoring set bounded.  Target: ``wide-tables``, where per-table
  exact scoring is most expensive and the lake is large enough that the
  budget actually prunes.
* ``low-latency`` — approximate cascade at a tight candidate budget plus a
  result cache: recall traded away knowingly for a hard-bounded scoring
  set.  Target: ``wide-tables`` too — the tight-budget point on the same
  front, fastest of the grid at the lowest declared recall.

The targets are themselves measured, not aspirational: the initial
targeting (``balanced`` -> ``uniform``, ``low-latency`` -> ``hot-queries``)
was *refuted* by the matrix — with the result cache on, plain exact
absorbs hot repeats better than any cascade, and on small cheap-to-score
lakes the prefilter costs more than the scoring it saves — so the targets
moved to the scenario whose measured front actually carries the cascade
presets: the large wide-table lake where per-table scoring is expensive.
"""

from __future__ import annotations

from typing import Any

from repro.utils.errors import ConfigurationError

#: Result-cache size shared by every preset's serving section.
_CACHE = {"cache_size": 256}

#: Preset name -> DiscoveryConfig payload (kept JSON-plain so presets
#: round-trip through from_dict/to_dict with stable fingerprints).
PRESETS: dict[str, dict[str, Any]] = {
    "exact": {
        "searcher": {"name": "overlap"},
        "serving": dict(_CACHE),
    },
    "balanced": {
        "searcher": {"name": "overlap"},
        "serving": dict(_CACHE),
        "cascade": {"mode": "approx", "candidate_budget": 32},
    },
    "low-latency": {
        "searcher": {"name": "overlap"},
        "serving": dict(_CACHE),
        "cascade": {"mode": "approx", "candidate_budget": 12},
    },
}

#: The scenario each preset is tuned for; the matrix gate checks the preset
#: is non-dominated there.
PRESET_TARGETS: dict[str, str] = {
    "exact": "near-duplicates",
    "balanced": "wide-tables",
    "low-latency": "wide-tables",
}


def available_presets() -> list[str]:
    """Names of every shipped preset, sorted."""
    return sorted(PRESETS)


def preset_payload(name: str) -> dict[str, Any]:
    """The config payload of preset ``name`` (a fresh copy)."""
    if not isinstance(name, str):
        raise ConfigurationError(f"preset name must be a string, got {name!r}")
    key = name.strip().lower()
    if key not in PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {available_presets()}"
        )
    payload = PRESETS[key]
    return {
        section: dict(value) if isinstance(value, dict) else value
        for section, value in payload.items()
    }
