"""Pareto-front reduction over scored matrix cells.

A config *dominates* another (for a scenario) when it is no worse on every
objective and strictly better on at least one; the Pareto front is the set
of non-dominated configs.  :func:`prune` applies hard constraints first
(``{"latency_p50_ms_max": 5.0}``-style bounds), so callers can ask questions
like "best recall among configs under 5 ms p50".
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.utils.errors import ConfigurationError

Record = Mapping[str, Any]


def _oriented(value: float, objective: str) -> float:
    """Map a metric value so that smaller is always better."""
    return value if objective == "min" else -value


def dominates(a: Record, b: Record, objectives: Mapping[str, str]) -> bool:
    """Whether record ``a`` Pareto-dominates record ``b``.

    Both records must carry every objective metric; the runner guarantees
    this by intersecting objectives down to the metrics present in all of a
    scenario's cells.
    """
    no_worse_everywhere = True
    better_somewhere = False
    for name, objective in objectives.items():
        va = _oriented(float(a[name]), objective)
        vb = _oriented(float(b[name]), objective)
        if va > vb:
            no_worse_everywhere = False
            break
        if va < vb:
            better_somewhere = True
    return no_worse_everywhere and better_somewhere


def pareto_front(
    records: Sequence[Record], objectives: Mapping[str, str]
) -> list[Record]:
    """The non-dominated subset of ``records``, input order preserved."""
    if not objectives:
        raise ConfigurationError("pareto_front requires at least one objective")
    return [
        record
        for record in records
        if not any(
            dominates(other, record, objectives)
            for other in records
            if other is not record
        )
    ]


def prune(records: Sequence[Record], constraints: Mapping[str, float]) -> list[Record]:
    """Drop records violating ``<metric>_max`` / ``<metric>_min`` bounds."""
    kept = list(records)
    for key, bound in constraints.items():
        if key.endswith("_max"):
            metric, upper = key[: -len("_max")], True
        elif key.endswith("_min"):
            metric, upper = key[: -len("_min")], False
        else:
            raise ConfigurationError(
                f"constraint {key!r} must end in '_max' or '_min'"
            )
        kept = [
            record
            for record in kept
            if metric in record
            and (
                float(record[metric]) <= bound
                if upper
                else float(record[metric]) >= bound
            )
        ]
    return kept
