"""Scenario matrix: registered workload generators, metrics, Pareto tuning.

The harness that turns "it works on one benchmark shape" into measured
evidence: :mod:`~repro.scenarios.generators` registers seeded workload
shapes (skewed/hot query streams, wide vs. tall tables, near-duplicate and
adversarial shared-vocabulary lakes, write bursts),
:mod:`~repro.scenarios.metrics` registers the per-cell metric set (latency
percentiles, recall vs. an exact reference, peak RSS, build time, write
throughput), :mod:`~repro.scenarios.pareto` reduces scored configs to a
per-scenario Pareto front, and :mod:`~repro.scenarios.presets` names the
configs the measured fronts justify shipping
(``DiscoveryConfig.preset("balanced")``).  Run the matrix via
``python -m repro scenarios`` (the CI smoke slice: ``--smoke``).
"""

from repro.scenarios.generators import Scenario, random_token_lake
from repro.scenarios.metrics import (
    MetricCollector,
    MetricContext,
    recall_against,
    scenario_metric,
)
from repro.scenarios.pareto import dominates, pareto_front, prune
from repro.scenarios.presets import PRESET_TARGETS, available_presets, preset_payload
from repro.scenarios.runner import CONFIG_GRID, run_cell, run_matrix, run_scenario

__all__ = [
    "CONFIG_GRID",
    "MetricCollector",
    "MetricContext",
    "PRESET_TARGETS",
    "Scenario",
    "available_presets",
    "dominates",
    "pareto_front",
    "preset_payload",
    "prune",
    "random_token_lake",
    "recall_against",
    "run_cell",
    "run_matrix",
    "run_scenario",
    "scenario_metric",
]
