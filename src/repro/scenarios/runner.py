"""The scenario matrix: workload shapes × deployment configs → Pareto fronts.

For every registered workload generator (or a named subset) the runner
builds the scenario, executes every config of the grid through the
:class:`~repro.api.facade.Discovery` facade — index build, the query
stream, and (for write scenarios) the mutation stream through
``Discovery.ingest()`` — and scores each cell with the registered metric
set (:mod:`repro.scenarios.metrics`).  Per scenario the scored cells are
reduced to a Pareto front (:mod:`repro.scenarios.pareto`) over the
objective-bearing metrics present in every cell.

Correctness is gated before anything is compared: every *exact* config
(no cascade, or sharded without cascade) must return rankings — names and
scores — bit-identical to the flat exact reference, in every scenario.
Timing is never gated (containers lie about CPUs); parity always is.

The grid deliberately contains the shipped presets
(:mod:`repro.scenarios.presets`) verbatim, so ``BENCH_scenarios.json``
records per preset whether any other measured config dominates it on its
target scenario — presets are evidence, not opinion.

Run via ``python -m repro scenarios`` or
``python benchmarks/bench_scenario_matrix.py``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Sequence

from repro.api.config import DiscoveryConfig
from repro.api.facade import Discovery
from repro.api.registry import SCENARIO_METRICS, WORKLOADS, available_workloads
from repro.scenarios.generators import Scenario
from repro.scenarios.metrics import MetricCollector, MetricContext, Ranking
from repro.scenarios.pareto import pareto_front
from repro.scenarios.presets import PRESET_TARGETS, PRESETS
from repro.utils.errors import ConfigurationError, ReproError

#: Top-k retrieved per request (parity, recall and latency all use it).
K = 10

#: The exact-mode reference cell every other cell's recall is scored against.
REFERENCE_CONFIG = "flat-exact"

#: Config name -> DiscoveryConfig payload.  The three shipped presets appear
#: verbatim (same payloads, same fingerprints), so front membership of a
#: preset cell *is* front membership of the preset.
CONFIG_GRID: dict[str, dict[str, Any]] = {
    REFERENCE_CONFIG: {"searcher": {"name": "overlap"}},
    "exact": PRESETS["exact"],
    "balanced": PRESETS["balanced"],
    "low-latency": PRESETS["low-latency"],
    "cascade-tight": {
        "searcher": {"name": "overlap"},
        "cascade": {"mode": "approx", "candidate_budget": 12},
    },
    "sharded-4": {
        "searcher": {"name": "overlap"},
        "sharding": {"num_shards": 4, "build_parallelism": "serial"},
    },
    "sharded-cascade": {
        "searcher": {"name": "overlap"},
        "sharding": {"num_shards": 4, "build_parallelism": "serial"},
        "cascade": {"mode": "approx", "candidate_budget": 32},
    },
}

#: Configs whose rankings must be bit-identical to the reference: no cascade,
#: or cascade in exact mode (sharding alone never changes rankings).
EXACT_CONFIGS = frozenset(
    name
    for name, payload in CONFIG_GRID.items()
    if payload.get("cascade") is None or payload["cascade"].get("mode") == "exact"
)

#: The 2-scenarios × 3-configs CI smoke slice (parity-gated, never timed).
SMOKE_SCENARIOS = ("uniform", "burst-writes")
SMOKE_CONFIGS = (REFERENCE_CONFIG, "low-latency", "sharded-4")


def run_cell(
    scenario: Scenario,
    config_name: str,
    payload: dict[str, Any],
    *,
    k: int = K,
    reference: list[Ranking] | None = None,
    collector: MetricCollector | None = None,
) -> tuple[dict[str, float], list[Ranking], dict[str, Any]]:
    """Execute one (scenario, config) cell through the Discovery facade.

    Returns ``(metric row, observed rankings, extras)`` where ``extras``
    carries non-metric observability (cache counters).  When ``reference``
    is ``None`` the cell scores recall against itself (the reference cell).
    """
    config = DiscoveryConfig.from_dict(payload)
    lake = scenario.fresh_lake()
    start = time.perf_counter()
    discovery = Discovery.from_config(config).attach(lake)
    build_seconds = time.perf_counter() - start
    try:
        latencies: list[float] = []
        observed: list[Ranking] = []
        for query in scenario.query_stream:
            begin = time.perf_counter()
            hits = discovery.search(query, k)
            latencies.append(time.perf_counter() - begin)
            observed.append([(hit.table_name, float(hit.score)) for hit in hits])
        mutation_count = 0
        mutation_seconds = 0.0
        if scenario.mutation_stream:
            events = scenario.fresh_mutations()
            controller = discovery.ingest()
            begin = time.perf_counter()
            controller.submit_many(events)
            controller.flush()
            mutation_seconds = time.perf_counter() - begin
            mutation_count = len(events)
        extras = {"cache": discovery.service_stats() or None}
    finally:
        discovery.close()
    ctx = MetricContext(
        scenario=scenario,
        config_name=config_name,
        k=k,
        build_seconds=build_seconds,
        latencies=latencies,
        reference=reference if reference is not None else observed,
        observed=observed,
        mutation_count=mutation_count,
        mutation_seconds=mutation_seconds,
    )
    collector = collector or MetricCollector()
    return collector.collect(ctx), observed, extras


def _resolve_names(
    requested: Sequence[str] | None, available: Sequence[str], kind: str
) -> list[str]:
    if not requested:
        return list(available)
    unknown = sorted(set(requested) - set(available))
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} {unknown}; available: {sorted(available)}"
        )
    # Preserve the canonical (grid/registry) order, not the CLI's.
    return [name for name in available if name in set(requested)]


def run_scenario(
    scenario: Scenario, config_names: Sequence[str], *, k: int = K
) -> dict[str, Any]:
    """Run every config cell of one scenario and reduce to a Pareto front."""
    collector = MetricCollector()
    ordered = [REFERENCE_CONFIG] + [
        name for name in config_names if name != REFERENCE_CONFIG
    ]
    cells: dict[str, dict[str, float]] = {}
    extras: dict[str, dict[str, Any]] = {}
    reference: list[Ranking] | None = None
    parity_failures: list[str] = []
    for name in ordered:
        row, observed, extra = run_cell(
            scenario,
            name,
            CONFIG_GRID[name],
            k=k,
            reference=reference,
            collector=collector,
        )
        if reference is None:
            reference = observed
        elif name in EXACT_CONFIGS and observed != reference:
            parity_failures.append(name)
        cells[name] = row
        extras[name] = extra
    # The front is computed over objective metrics present in every cell of
    # this scenario (write-path metrics only exist on write scenarios).
    objectives = {
        metric: direction
        for metric, direction in collector.objectives().items()
        if all(metric in row for row in cells.values())
    }
    records = [{"config": name, **row} for name, row in cells.items()]
    front = [record["config"] for record in pareto_front(records, objectives)]
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "fingerprint": scenario.fingerprint(),
        "num_tables": scenario.lake.num_tables,
        "num_queries": scenario.num_queries,
        "stream_length": len(scenario.query_stream),
        "num_mutations": len(scenario.mutation_stream),
        "cells": cells,
        "extras": extras,
        "objectives": objectives,
        "pareto_front": front,
        "parity_failures": parity_failures,
    }


def run_matrix(
    *,
    scenario_names: Sequence[str] | None = None,
    config_names: Sequence[str] | None = None,
    seed: int = 7,
    k: int = K,
    smoke: bool = False,
) -> dict[str, Any]:
    """Cross scenarios with configs and assemble the machine-readable report."""
    if smoke:
        scenario_names = scenario_names or list(SMOKE_SCENARIOS)
        config_names = config_names or list(SMOKE_CONFIGS)
    scenario_names = _resolve_names(scenario_names, available_workloads(), "scenarios")
    config_names = _resolve_names(config_names, list(CONFIG_GRID), "configs")
    if REFERENCE_CONFIG not in config_names:
        config_names = [REFERENCE_CONFIG, *config_names]
    rows = []
    for name in scenario_names:
        scenario = WORKLOADS.create(name, seed=seed)
        rows.append(run_scenario(scenario, config_names, k=k))
    presets = {}
    for preset, target in PRESET_TARGETS.items():
        if preset not in config_names:
            continue
        measured = next((row for row in rows if row["name"] == target), None)
        presets[preset] = {
            "target_scenario": target,
            "on_front": (
                preset in measured["pareto_front"] if measured is not None else None
            ),
        }
    return {
        "k": k,
        "seed": seed,
        "smoke": bool(smoke),
        "metrics": {
            name: {"objective": SCENARIO_METRICS.get(name).objective}
            for name in SCENARIO_METRICS.names()
        },
        "configs": {
            name: {
                "payload": CONFIG_GRID[name],
                "fingerprint": DiscoveryConfig.from_dict(
                    CONFIG_GRID[name]
                ).fingerprint(),
                "preset": name in PRESETS,
                "exact": name in EXACT_CONFIGS,
            }
            for name in config_names
        },
        "scenarios": rows,
        "presets": presets,
    }


# ------------------------------------------------------------------ reporting
def _print_scenario(row: dict[str, Any]) -> None:
    print(
        f"scenario {row['name']!r}: {row['num_tables']} tables, "
        f"{row['num_queries']} distinct queries over {row['stream_length']} "
        f"requests, {row['num_mutations']} mutation events"
    )
    header = (
        f"  {'config':<16} {'p50 ms':>8} {'p95 ms':>8} {'recall':>7} "
        f"{'build s':>8} {'rss MiB':>8} {'mut/s':>8}  front"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    front = set(row["pareto_front"])
    for name, cell in row["cells"].items():
        mut = cell.get("mutations_per_second")
        mut_text = f"{mut:>8.0f}" if mut is not None else f"{'-':>8}"
        marker = "*" if name in front else ""
        print(
            f"  {name:<16} {cell['latency_p50_ms']:>8.2f} "
            f"{cell['latency_p95_ms']:>8.2f} {cell['recall_at_k']:>7.3f} "
            f"{cell['build_seconds']:>8.3f} {cell['peak_rss_mb']:>8.1f} "
            f"{mut_text}  {marker}"
        )
    print()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scenario matrix: workload shapes × configs → Pareto fronts."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 scenarios × 3 configs, parity-gated only (CI bench-smoke mode)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="workload generators to run (default: all registered)",
    )
    parser.add_argument(
        "--configs",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"grid configs to run (default: all; grid: {sorted(CONFIG_GRID)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--k", type=int, default=K)
    parser.add_argument(
        "--output",
        default="BENCH_scenarios.json",
        help="machine-readable report path (default: %(default)s)",
    )
    return execute(parser.parse_args(argv))


def execute(args: argparse.Namespace) -> int:
    """Run the matrix from a parsed namespace (shared with ``repro scenarios``).

    Expects ``smoke``/``scenarios``/``configs``/``seed``/``k``/``output`` —
    the dest names both this module's parser and the ``python -m repro
    scenarios`` subparser produce.
    """
    report = run_matrix(
        scenario_names=args.scenarios,
        config_names=args.configs,
        seed=args.seed,
        k=args.k,
        smoke=args.smoke,
    )
    for row in report["scenarios"]:
        _print_scenario(row)

    failures = {
        row["name"]: row["parity_failures"]
        for row in report["scenarios"]
        if row["parity_failures"]
    }
    if failures:
        raise ReproError(
            f"exact-config rankings diverged from the flat reference: {failures}"
        )
    print("parity: every exact config bit-identical to the flat reference")

    dominated = sorted(
        name
        for name, entry in report["presets"].items()
        if entry["on_front"] is False
    )
    on_front = sorted(
        name for name, entry in report["presets"].items() if entry["on_front"]
    )
    if report["presets"]:
        for name, entry in sorted(report["presets"].items()):
            state = {True: "on", False: "DOMINATED off", None: "not measured on"}[
                entry["on_front"]
            ]
            print(
                f"preset {name!r}: {state} the {entry['target_scenario']!r} "
                f"Pareto front"
            )
        if not args.smoke and not on_front:
            raise ReproError(
                f"no shipped preset survived its target scenario's front "
                f"(dominated: {dominated})"
            )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
