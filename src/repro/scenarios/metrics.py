"""Registered scenario metrics: how one matrix cell is scored.

One :class:`MetricContext` bundles everything observed while executing a
``(scenario, config)`` cell — per-request latencies, the exact-mode reference
rankings, the cell's own rankings, build time, peak RSS, write-path counters
— and every registered metric maps the context to one number::

    @scenario_metric("latency_p50_ms", objective="min")
    def latency_p50_ms(ctx: MetricContext) -> float:
        return percentile(ctx.latencies, 0.50) * 1000.0

``objective`` declares the metric's Pareto direction (``"min"``/``"max"``);
``None`` marks a report-only metric that is carried in every cell but never
prunes configs (peak RSS is report-only because ``ru_maxrss`` is monotone
within a process, so later cells can never measure below earlier ones).
A metric returning ``None`` is skipped for that cell (write-path metrics on
read-only scenarios), and the per-scenario Pareto front is computed over the
objective-bearing metrics present in *all* of that scenario's cells.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api.registry import SCENARIO_METRICS, register_scenario_metric
from repro.scenarios.generators import Scenario
from repro.serving.events import percentile

#: One ranked result list: ``(table name, score)`` per hit, best first.
Ranking = list[tuple[str, float]]


def peak_rss_kb() -> float:
    """The process's lifetime peak resident set size, in KiB.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux and bytes on macOS;
    normalised here so the metric is portable.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / 1024.0
    return float(peak)


@dataclass
class MetricContext:
    """Everything observed while executing one ``(scenario, config)`` cell."""

    scenario: Scenario
    config_name: str
    k: int
    build_seconds: float
    #: Wall time of each request in the query stream, in order (seconds).
    latencies: list[float]
    #: The exact-mode reference rankings, one per stream request.
    reference: list[Ranking]
    #: This cell's rankings, one per stream request.
    observed: list[Ranking]
    peak_rss_kib: float = field(default_factory=peak_rss_kb)
    #: Write-path counters (zero on scenarios without a mutation stream).
    mutation_count: int = 0
    mutation_seconds: float = 0.0


MetricFunction = Callable[[MetricContext], "float | None"]


def scenario_metric(
    name: str, *, objective: str | None = None
) -> Callable[[MetricFunction], MetricFunction]:
    """Register a scenario metric with its Pareto direction.

    ``objective`` is ``"min"``, ``"max"``, or ``None`` (report-only).
    """
    if objective not in (None, "min", "max"):
        raise ValueError(f"objective must be min/max/None, got {objective!r}")

    def decorate(func: MetricFunction) -> MetricFunction:
        func.metric_name = name
        func.objective = objective
        return register_scenario_metric(name)(func)

    return decorate


def recall_against(reference: Sequence[Ranking], observed: Sequence[Ranking], k: int) -> float:
    """Mean over requests of ``|top-k(reference) ∩ top-k(observed)| / k``."""
    if not reference:
        return 0.0
    recalls = []
    for wanted, got in zip(reference, observed):
        wanted_names = {name for name, _ in wanted[:k]}
        got_names = {name for name, _ in got[:k]}
        recalls.append(len(wanted_names & got_names) / max(len(wanted_names), 1))
    return sum(recalls) / len(recalls)


# ---------------------------------------------------------- registered metrics
@scenario_metric("latency_p50_ms", objective="min")
def latency_p50_ms(ctx: MetricContext) -> float:
    """Median request latency over the query stream (nearest-rank)."""
    return percentile(ctx.latencies, 0.50) * 1000.0


@scenario_metric("latency_p95_ms", objective="min")
def latency_p95_ms(ctx: MetricContext) -> float:
    """Tail request latency over the query stream (nearest-rank)."""
    return percentile(ctx.latencies, 0.95) * 1000.0


@scenario_metric("recall_at_k", objective="max")
def recall_at_k(ctx: MetricContext) -> float:
    """Top-k agreement with the exact-mode reference rankings."""
    return recall_against(ctx.reference, ctx.observed, ctx.k)


@scenario_metric("build_seconds", objective="min")
def build_seconds(ctx: MetricContext) -> float:
    """Wall time from config to first-query readiness (attach + index)."""
    return ctx.build_seconds


@scenario_metric("peak_rss_mb", objective=None)
def peak_rss_mb(ctx: MetricContext) -> float:
    """Process peak RSS after the cell ran, in MiB (report-only: monotone)."""
    return ctx.peak_rss_kib / 1024.0


@scenario_metric("mutations_per_second", objective="max")
def mutations_per_second(ctx: MetricContext) -> float | None:
    """Write throughput through ``Discovery.ingest()`` (write scenarios only)."""
    if ctx.mutation_count == 0:
        return None
    if ctx.mutation_seconds <= 0.0:
        return float("inf")
    return ctx.mutation_count / ctx.mutation_seconds


class MetricCollector:
    """Score contexts against the registered metric set (Snippet-3 style).

    By default every registered metric participates; pass an explicit list
    to score a subset.  ``collect`` returns one ``{name: value}`` row per
    context (metrics returning ``None`` are skipped), and ``observations``
    accumulates the rows for offline aggregation.
    """

    def __init__(self, metrics: list[MetricFunction] | None = None) -> None:
        self.metrics = (
            list(metrics)
            if metrics is not None
            else [SCENARIO_METRICS.get(name) for name in SCENARIO_METRICS.names()]
        )
        self.observations: dict[str, list[float]] = {
            metric.metric_name: [] for metric in self.metrics
        }

    def reset(self) -> None:
        """Drop every accumulated observation."""
        for values in self.observations.values():
            values.clear()

    def collect(self, ctx: MetricContext) -> dict[str, float]:
        """Score one cell; stores and returns the applicable metric values."""
        row: dict[str, float] = {}
        for metric in self.metrics:
            value = metric(ctx)
            if value is None:
                continue
            row[metric.metric_name] = float(value)
            self.observations[metric.metric_name].append(float(value))
        return row

    def objectives(self) -> dict[str, str]:
        """``metric name -> "min"|"max"`` for the objective-bearing metrics."""
        return {
            metric.metric_name: metric.objective
            for metric in self.metrics
            if metric.objective is not None
        }
