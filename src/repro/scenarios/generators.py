"""Registered workload generators: reproducible scenario shapes.

Every subsystem before this one was validated on a single benchmark lake
shape with uniform query traffic.  A :class:`Scenario` packages one
*realistic workload shape* — a seeded lake, a query stream (possibly with
repeats, so caching behaviour is measurable), and an optional table-mutation
stream that drives the streaming-ingest write path — so the scenario-matrix
runner (:mod:`repro.scenarios.runner`) can cross shapes with deployment
configs and score the trade-offs.

Generators self-register with
:func:`~repro.api.registry.register_workload`::

    @register_workload("shared-vocab")
    def shared_vocab_scenario(seed: int = 0, ...) -> Scenario: ...

and are fully deterministic from their integer seed: the same
``(generator, seed)`` pair always produces a bit-identical scenario
(:meth:`Scenario.fingerprint` digests the lake content, the query stream
order and the mutation stream, and the parity suite asserts it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_workload
from repro.benchgen import generate_tus_benchmark
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.ingest.events import TableEvent
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class Scenario:
    """One reproducible workload: a lake, a query stream, optional writes.

    ``query_stream`` entries may repeat (hot-table workloads repeat their
    popular queries), so its length is the number of *requests*, not the
    number of distinct query tables.  ``recall_floor`` is the cascade-approx
    recall@10 this shape is expected to sustain at a half-lake candidate
    budget — the property suite enforces it per generator, and adversarial
    shapes declare honestly lower floors instead of being skipped.
    """

    name: str
    seed: int
    lake: DataLake
    query_stream: list[Table]
    mutation_stream: list[TableEvent] = field(default_factory=list)
    recall_floor: float = 0.8
    description: str = ""

    @property
    def num_queries(self) -> int:
        """Distinct query tables in the stream."""
        return len({table.name for table in self.query_stream})

    def fresh_lake(self) -> DataLake:
        """An isolated copy of the lake (cells shared, catalog independent).

        Every matrix cell attaches and possibly mutates its own copy, so
        cells never observe each other's writes.
        """
        return DataLake(
            (table.copy() for table in self.lake), name=self.lake.name
        )

    def fresh_mutations(self) -> list[TableEvent]:
        """Mutation events carrying per-call table copies."""
        return [
            event
            if event.table is None
            else TableEvent(op=event.op, name=event.name, table=event.table.copy())
            for event in self.mutation_stream
        ]

    def fingerprint(self) -> str:
        """Content digest over the lake, query order and mutation stream.

        Two scenarios with equal fingerprints are bit-identical workloads;
        the seeded-determinism tests compare exactly this.
        """
        digest = hashlib.sha256()
        digest.update(self.lake.fingerprint().encode())
        for table in self.query_stream:
            digest.update(b"\x1fq")
            digest.update(table.name.encode())
            digest.update(table.content_fingerprint().encode())
        for event in self.mutation_stream:
            digest.update(b"\x1fm")
            digest.update(f"{event.op}:{event.name}".encode())
            if event.table is not None:
                digest.update(event.table.content_fingerprint().encode())
        return digest.hexdigest()


# --------------------------------------------------------------- lake builders
def _token_rows(
    rng: np.random.Generator,
    num_rows: int,
    num_columns: int,
    *,
    vocab_size: int,
    prefix: str = "tok",
) -> list[tuple[str, ...]]:
    return [
        tuple(
            f"{prefix}{int(rng.integers(0, vocab_size))}" for _ in range(num_columns)
        )
        for _ in range(num_rows)
    ]


def random_token_lake(
    seed: int,
    *,
    num_tables: int = 14,
    min_columns: int = 1,
    max_columns: int = 3,
    min_rows: int = 2,
    max_rows: int = 8,
    vocab_size: int = 40,
    name: str | None = None,
    table_prefix: str = "rt",
) -> DataLake:
    """A random lake of token tables with varied shapes and shared vocabulary.

    The building block behind several scenario shapes (and the test suites'
    property-style sweeps): table/column/row counts and every cell draw from
    one seeded stream, so equal seeds produce bit-identical lakes.
    """
    rng = seeded_rng(derive_seed(seed, "token-lake", num_tables, vocab_size))
    tables = []
    for index in range(num_tables):
        num_columns = int(rng.integers(min_columns, max_columns + 1))
        num_rows = int(rng.integers(min_rows, max_rows + 1))
        columns = [f"col{c}" for c in range(num_columns)]
        rows = _token_rows(rng, num_rows, num_columns, vocab_size=vocab_size)
        tables.append(
            Table(name=f"{table_prefix}{index}", columns=columns, rows=rows)
        )
    return DataLake(tables, name=name or f"random{seed}")


def _sampled_query(table: Table, rng: np.random.Generator, name: str) -> Table:
    """A query table: a row-sample of one lake table (>= 3 rows, order kept)."""
    num_rows = max(3, min(table.num_rows, int(rng.integers(3, 9))))
    if table.num_rows <= num_rows:
        indices = list(range(table.num_rows))
    else:
        chosen = rng.choice(table.num_rows, size=num_rows, replace=False)
        indices = sorted(int(i) for i in chosen)
    return Table(
        name=name,
        columns=list(table.columns),
        rows=[table.rows[i] for i in indices],
        metadata={"source_table": table.name},
    )


def _cycled_stream(queries: list[Table], stream_length: int) -> list[Table]:
    return [queries[i % len(queries)] for i in range(stream_length)]


def _zipf_stream(
    queries: list[Table],
    rng: np.random.Generator,
    *,
    stream_length: int,
    exponent: float,
) -> list[Table]:
    """Zipf-sample a hot-table request stream over the query pool."""
    ranks = np.arange(1, len(queries) + 1, dtype=float)
    weights = ranks**-exponent
    weights /= weights.sum()
    picks = rng.choice(len(queries), size=stream_length, p=weights)
    return [queries[int(i)] for i in picks]


def _perturbed_rows(
    table: Table,
    rng: np.random.Generator,
    *,
    cell_fraction: float,
    prefix: str,
) -> list[tuple[str, ...]]:
    """Copy ``table``'s rows, replacing ``cell_fraction`` of cells."""
    rows = [list(row) for row in table.rows]
    total = table.num_rows * table.num_columns
    flips = max(1, int(total * cell_fraction))
    for _ in range(flips):
        r = int(rng.integers(0, table.num_rows))
        c = int(rng.integers(0, table.num_columns))
        rows[r][c] = f"{prefix}{int(rng.integers(0, 1000))}"
    return [tuple(row) for row in rows]


# ------------------------------------------------------------------ generators
@register_workload("uniform")
def uniform_scenario(
    seed: int = 0,
    *,
    num_base_tables: int = 6,
    lake_tables_per_base: int = 8,
    base_rows: int = 40,
    num_queries: int = 6,
) -> Scenario:
    """The baseline shape: a TUS-style lake, every query issued exactly once."""
    benchmark = generate_tus_benchmark(
        num_base_tables=num_base_tables,
        lake_tables_per_base=lake_tables_per_base,
        base_rows=base_rows,
        num_queries=num_queries,
        seed=derive_seed(seed, "scenario", "uniform"),
    )
    return Scenario(
        name="uniform",
        seed=seed,
        lake=benchmark.lake,
        query_stream=list(benchmark.query_tables),
        recall_floor=0.8,
        description="TUS-style lake, uniform one-shot query traffic",
    )


@register_workload("hot-queries")
def hot_queries_scenario(
    seed: int = 0,
    *,
    num_base_tables: int = 6,
    lake_tables_per_base: int = 8,
    base_rows: int = 40,
    num_queries: int = 6,
    stream_length: int = 18,
    zipf_exponent: float = 1.5,
) -> Scenario:
    """A skewed request stream: Zipf-sampled repeats over a hot query pool.

    The repeats are the point — result caching pays here and nowhere else,
    which is exactly the trade-off the config grid has to surface.
    """
    benchmark = generate_tus_benchmark(
        num_base_tables=num_base_tables,
        lake_tables_per_base=lake_tables_per_base,
        base_rows=base_rows,
        num_queries=num_queries,
        seed=derive_seed(seed, "scenario", "hot-queries"),
    )
    rng = seeded_rng(derive_seed(seed, "scenario", "hot-queries", "stream"))
    stream = _zipf_stream(
        list(benchmark.query_tables),
        rng,
        stream_length=stream_length,
        exponent=zipf_exponent,
    )
    return Scenario(
        name="hot-queries",
        seed=seed,
        lake=benchmark.lake,
        query_stream=stream,
        recall_floor=0.8,
        description="Zipf-skewed repeats over a hot query pool",
    )


@register_workload("wide-tables")
def wide_tables_scenario(
    seed: int = 0,
    *,
    num_tables: int = 96,
    num_queries: int = 5,
    stream_length: int = 8,
) -> Scenario:
    """Wide, short tables: many columns, few rows (entity-profile lakes).

    Large enough (96 tables) that a 32-candidate cascade budget prunes
    two-thirds of the lake: per-table exact scoring is most expensive on
    wide tables, so this is the shape where the cascade presets have to
    earn their front seats with a real latency win rather than degenerate
    to exact-plus-overhead.
    """
    lake = random_token_lake(
        derive_seed(seed, "scenario", "wide-tables"),
        num_tables=num_tables,
        min_columns=8,
        max_columns=14,
        min_rows=4,
        max_rows=8,
        vocab_size=480,
        name="wide-tables",
        table_prefix="wide",
    )
    rng = seeded_rng(derive_seed(seed, "scenario", "wide-tables", "queries"))
    tables = [lake.get(name) for name in lake.table_names()]
    queries = [
        _sampled_query(tables[int(rng.integers(0, len(tables)))], rng, f"q{i}")
        for i in range(num_queries)
    ]
    return Scenario(
        name="wide-tables",
        seed=seed,
        lake=lake,
        query_stream=_cycled_stream(queries, stream_length),
        recall_floor=0.6,
        description="many columns, few rows per table",
    )


@register_workload("tall-tables")
def tall_tables_scenario(
    seed: int = 0,
    *,
    num_tables: int = 16,
    num_queries: int = 4,
    stream_length: int = 6,
) -> Scenario:
    """Tall, narrow tables: few columns, many rows (log/measurement lakes)."""
    lake = random_token_lake(
        derive_seed(seed, "scenario", "tall-tables"),
        num_tables=num_tables,
        min_columns=1,
        max_columns=3,
        min_rows=60,
        max_rows=120,
        vocab_size=400,
        name="tall-tables",
        table_prefix="tall",
    )
    rng = seeded_rng(derive_seed(seed, "scenario", "tall-tables", "queries"))
    tables = [lake.get(name) for name in lake.table_names()]
    queries = [
        _sampled_query(tables[int(rng.integers(0, len(tables)))], rng, f"q{i}")
        for i in range(num_queries)
    ]
    return Scenario(
        name="tall-tables",
        seed=seed,
        lake=lake,
        query_stream=_cycled_stream(queries, stream_length),
        recall_floor=0.6,
        description="few columns, many rows per table",
    )


@register_workload("near-duplicates")
def near_duplicates_scenario(
    seed: int = 0,
    *,
    num_bases: int = 5,
    dupes_per_base: int = 5,
    num_queries: int = 5,
    stream_length: int = 8,
) -> Scenario:
    """A near-duplicate-heavy lake: clusters of barely-perturbed copies.

    Rankings are decided by tiny score gaps between near-identical tables,
    the worst case for an approximate prefilter's margin — the shape where
    "exact" earns its keep.
    """
    rng = seeded_rng(derive_seed(seed, "scenario", "near-duplicates"))
    tables: list[Table] = []
    bases: list[Table] = []
    for b in range(num_bases):
        num_columns = int(rng.integers(3, 6))
        base = Table(
            name=f"dupbase{b}",
            columns=[f"col{c}" for c in range(num_columns)],
            rows=_token_rows(rng, int(rng.integers(10, 18)), num_columns, vocab_size=200),
        )
        bases.append(base)
        tables.append(base)
        for d in range(dupes_per_base):
            tables.append(
                Table(
                    name=f"dup{b}_{d}",
                    columns=list(base.columns),
                    rows=_perturbed_rows(
                        base, rng, cell_fraction=0.08, prefix="alt"
                    ),
                )
            )
    lake = DataLake(tables, name="near-duplicates")
    queries = [
        _sampled_query(bases[i % len(bases)], rng, f"q{i}") for i in range(num_queries)
    ]
    return Scenario(
        name="near-duplicates",
        seed=seed,
        lake=lake,
        query_stream=_cycled_stream(queries, stream_length),
        recall_floor=0.7,
        description="clusters of near-identical tables, tiny score margins",
    )


@register_workload("shared-vocab")
def shared_vocab_scenario(
    seed: int = 0,
    *,
    num_tables: int = 24,
    vocab_size: int = 14,
    num_queries: int = 5,
    stream_length: int = 8,
) -> Scenario:
    """An adversarial lake: every table draws from one tiny shared vocabulary.

    Value-overlap signals collide across the whole lake, so approximate
    prefilters lose their discriminative power — the generator declares an
    honestly lower recall floor rather than hiding the regression.
    """
    lake = random_token_lake(
        derive_seed(seed, "scenario", "shared-vocab"),
        num_tables=num_tables,
        min_columns=2,
        max_columns=4,
        min_rows=6,
        max_rows=14,
        vocab_size=vocab_size,
        name="shared-vocab",
        table_prefix="sv",
    )
    rng = seeded_rng(derive_seed(seed, "scenario", "shared-vocab", "queries"))
    tables = [lake.get(name) for name in lake.table_names()]
    queries = [
        _sampled_query(tables[int(rng.integers(0, len(tables)))], rng, f"q{i}")
        for i in range(num_queries)
    ]
    return Scenario(
        name="shared-vocab",
        seed=seed,
        lake=lake,
        query_stream=_cycled_stream(queries, stream_length),
        recall_floor=0.5,
        description="one tiny vocabulary shared by every table",
    )


@register_workload("burst-writes")
def burst_writes_scenario(
    seed: int = 0,
    *,
    num_tables: int = 18,
    num_queries: int = 4,
    stream_length: int = 6,
    adds: int = 12,
    replaces: int = 12,
    removes: int = 6,
) -> Scenario:
    """A write-heavy stream: bursts of adds/replaces/removes after the reads.

    The mutation stream drives ``Discovery.ingest()`` — per-table netting,
    micro-batch application, backend re-sync — so the matrix scores each
    config's write throughput (mutations/sec), not just its read path.
    Removes target tables added earlier in the stream, so single-flush runs
    exercise the netting path and multi-flush runs exercise real removal.
    """
    lake = random_token_lake(
        derive_seed(seed, "scenario", "burst-writes"),
        num_tables=num_tables,
        min_columns=2,
        max_columns=4,
        min_rows=8,
        max_rows=16,
        vocab_size=80,
        name="burst-writes",
        table_prefix="bw",
    )
    rng = seeded_rng(derive_seed(seed, "scenario", "burst-writes", "stream"))
    tables = [lake.get(name) for name in lake.table_names()]
    queries = [
        _sampled_query(tables[int(rng.integers(0, len(tables)))], rng, f"q{i}")
        for i in range(num_queries)
    ]
    events: list[TableEvent] = []
    added_names: list[str] = []
    for i in range(adds):
        name = f"new{i}"
        num_columns = int(rng.integers(2, 5))
        table = Table(
            name=name,
            columns=[f"col{c}" for c in range(num_columns)],
            rows=_token_rows(rng, int(rng.integers(6, 14)), num_columns, vocab_size=80),
        )
        events.append(TableEvent(op="add", name=name, table=table))
        added_names.append(name)
    for i in range(replaces):
        target = tables[int(rng.integers(0, len(tables)))]
        events.append(
            TableEvent(
                op="replace",
                name=target.name,
                table=Table(
                    name=target.name,
                    columns=list(target.columns),
                    rows=_perturbed_rows(target, rng, cell_fraction=0.2, prefix="upd"),
                ),
            )
        )
    for name in added_names[: min(removes, len(added_names))]:
        events.append(TableEvent(op="remove", name=name))
    return Scenario(
        name="burst-writes",
        seed=seed,
        lake=lake,
        query_stream=_cycled_stream(queries, stream_length),
        mutation_stream=events,
        recall_floor=0.6,
        description="read stream plus add/replace/remove write bursts",
    )
