"""Column and table profiling.

Profiles summarise the contents of a column (distinct values, null fraction,
numeric statistics, token sets) and are consumed by the D3L search signals,
the benchmark statistics experiment (Fig. 5) and the case-study evaluation
(Fig. 8, counting novel values added per column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.datalake.table import Table
from repro.utils.text import is_null, normalize_text, to_float


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one column."""

    table_name: str
    column_name: str
    num_values: int
    num_nulls: int
    num_distinct: int
    is_numeric: bool
    mean: float | None
    std: float | None
    minimum: float | None
    maximum: float | None
    distinct_values: frozenset[str] = field(default_factory=frozenset)
    tokens: frozenset[str] = field(default_factory=frozenset)

    @property
    def null_fraction(self) -> float:
        """Fraction of cells that are null."""
        if self.num_values == 0:
            return 0.0
        return self.num_nulls / self.num_values

    @property
    def distinct_fraction(self) -> float:
        """Fraction of non-null cells that are distinct (uniqueness)."""
        non_null = self.num_values - self.num_nulls
        if non_null == 0:
            return 0.0
        return self.num_distinct / non_null

    def to_state(self) -> dict[str, Any]:
        """JSON-serializable form (frozensets become sorted lists).

        Floats round-trip exactly through JSON (``repr`` based), so a profile
        restored with :meth:`from_state` compares equal to the original.
        """
        return {
            "table_name": self.table_name,
            "column_name": self.column_name,
            "num_values": self.num_values,
            "num_nulls": self.num_nulls,
            "num_distinct": self.num_distinct,
            "is_numeric": self.is_numeric,
            "mean": self.mean,
            "std": self.std,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "distinct_values": sorted(self.distinct_values),
            "tokens": sorted(self.tokens),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "ColumnProfile":
        """Rebuild a profile dumped by :meth:`to_state`."""
        return cls(
            table_name=state["table_name"],
            column_name=state["column_name"],
            num_values=int(state["num_values"]),
            num_nulls=int(state["num_nulls"]),
            num_distinct=int(state["num_distinct"]),
            is_numeric=bool(state["is_numeric"]),
            mean=state["mean"],
            std=state["std"],
            minimum=state["minimum"],
            maximum=state["maximum"],
            distinct_values=frozenset(state["distinct_values"]),
            tokens=frozenset(state["tokens"]),
        )


@dataclass(frozen=True)
class TableProfile:
    """Summary statistics of one table."""

    table_name: str
    num_rows: int
    num_columns: int
    num_numeric_columns: int
    columns: tuple[ColumnProfile, ...]


def profile_column(table: Table, column_name: str) -> ColumnProfile:
    """Profile one column of ``table``."""
    values = table.column_values(column_name)
    non_null = [value for value in values if not is_null(value)]
    normalized = [normalize_text(value) for value in non_null]
    distinct = frozenset(normalized)
    tokens = frozenset(token for text in normalized for token in text.split())

    numeric_values = [to_float(value) for value in non_null]
    numeric_values = [value for value in numeric_values if value is not None]
    is_numeric = bool(non_null) and len(numeric_values) / len(non_null) >= 0.8

    if numeric_values:
        array = np.asarray(numeric_values, dtype=float)
        mean: float | None = float(array.mean())
        std: float | None = float(array.std())
        minimum: float | None = float(array.min())
        maximum: float | None = float(array.max())
    else:
        mean = std = minimum = maximum = None

    return ColumnProfile(
        table_name=table.name,
        column_name=column_name,
        num_values=len(values),
        num_nulls=len(values) - len(non_null),
        num_distinct=len(distinct),
        is_numeric=is_numeric,
        mean=mean,
        std=std,
        minimum=minimum,
        maximum=maximum,
        distinct_values=distinct,
        tokens=tokens,
    )


def profile_table(table: Table) -> TableProfile:
    """Profile every column of ``table``."""
    columns = tuple(profile_column(table, name) for name in table.columns)
    return TableProfile(
        table_name=table.name,
        num_rows=table.num_rows,
        num_columns=table.num_columns,
        num_numeric_columns=sum(1 for profile in columns if profile.is_numeric),
        columns=columns,
    )


def column_value_overlap(first: ColumnProfile, second: ColumnProfile) -> float:
    """Jaccard overlap of the distinct (normalised) values of two columns."""
    if not first.distinct_values or not second.distinct_values:
        return 0.0
    intersection = len(first.distinct_values & second.distinct_values)
    union = len(first.distinct_values | second.distinct_values)
    return intersection / union if union else 0.0


def new_values_added(query_values: set[str], candidate_values: set[str]) -> int:
    """Count values in ``candidate_values`` that do not appear in ``query_values``.

    This is the Fig. 8 case-study metric: how many novel values a method adds
    to a column of the query table.
    """
    return len(candidate_values - query_values)
