"""CSV round-trip for tables and data lakes.

The original benchmarks are distributed as directories of CSV files.  These
helpers let users load their own lakes from disk and let the examples persist
generated benchmarks, without requiring pandas.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.datalake.lake import DataLake
from repro.datalake.table import Row, Table
from repro.utils.errors import DataLakeError
from repro.utils.text import is_null


def table_from_rows(
    name: str,
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
) -> Table:
    """Build a :class:`Table` from a list of ``{column: value}`` mappings.

    When ``columns`` is omitted, the union of keys across all rows is used
    (in first-seen order); missing keys become ``None``.
    """
    if columns is None:
        ordered: list[str] = []
        for row in rows:
            for key in row:
                if key not in ordered:
                    ordered.append(key)
        columns = ordered
    if not columns:
        raise DataLakeError(f"cannot build table {name!r} with no columns")
    data: list[Row] = [tuple(row.get(column) for column in columns) for row in rows]
    return Table(name=name, columns=list(columns), rows=data)


def table_to_payload(table: Table) -> dict[str, Any]:
    """JSON-serializable wire form of ``table``: name, columns, rows.

    ``metadata`` is deliberately excluded — no index reads it, and the wire
    protocol transports query *content*, which is exactly what
    :meth:`~repro.datalake.table.Table.content_fingerprint` covers.
    """
    return {
        "name": table.name,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


def table_from_payload(payload: Mapping[str, Any]) -> Table:
    """Rebuild a :class:`Table` from :func:`table_to_payload` wire form."""
    if not isinstance(payload, Mapping):
        raise DataLakeError(f"table payload must be a mapping, got {payload!r}")
    missing = {"name", "columns", "rows"} - set(payload)
    if missing:
        raise DataLakeError(f"table payload is missing keys: {sorted(missing)}")
    return Table(
        name=str(payload["name"]),
        columns=[str(column) for column in payload["columns"]],
        rows=[tuple(row) for row in payload["rows"]],
    )


def read_csv(path: str | Path, *, name: str | None = None) -> Table:
    """Read a CSV file (header row required) into a :class:`Table`.

    Empty strings and common null markers are converted to ``None`` so that
    downstream null handling (outer union padding, all-null column removal)
    behaves the same for loaded and generated tables.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DataLakeError(f"CSV file {path} is empty") from exc
        rows: list[Row] = []
        for raw in reader:
            padded = list(raw) + [None] * (len(header) - len(raw))
            rows.append(
                tuple(None if is_null(value) else value for value in padded[: len(header)])
            )
    return Table(name=name or path.stem, columns=header, rows=rows)


def write_csv(table: Table, path: str | Path) -> Path:
    """Write ``table`` to ``path`` as UTF-8 CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow(["" if value is None else value for value in row])
    return path


def read_lake(directory: str | Path, *, name: str | None = None) -> DataLake:
    """Load every ``*.csv`` file under ``directory`` into a :class:`DataLake`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DataLakeError(f"{directory} is not a directory")
    tables = [read_csv(path) for path in sorted(directory.glob("*.csv"))]
    return DataLake(tables, name=name or directory.name)


def write_lake(lake: DataLake, directory: str | Path) -> Path:
    """Write every table of ``lake`` as ``<table name>.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in lake:
        write_csv(table, directory / f"{table.name}.csv")
    return directory


def iter_csv_rows(path: str | Path) -> Iterable[dict[str, Any]]:
    """Stream rows of a CSV file as dictionaries without loading the table."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            yield {key: (None if is_null(value) else value) for key, value in row.items()}
