"""Deterministic lake sharding: :class:`LakePartitioner` and :class:`LakeShard`.

A large lake is indexed and served in **shards** — disjoint subsets of its
tables.  A :class:`LakeShard` is a cheap *view*: it names its member tables
and materialises a :class:`~repro.datalake.lake.DataLake` that shares the
parent's :class:`~repro.datalake.table.Table` objects without copying a cell.
Because shard lakes are content-fingerprinted exactly like any other lake,
everything built on fingerprints composes per shard for free: the
:class:`~repro.serving.store.IndexStore` persists one entry per shard, and
mutating one shard changes only that shard's fingerprint, so only that
shard's index is rebuilt and re-persisted.

Two partitioning strategies, both deterministic across processes and runs:

* ``"hash"`` (default) — each table is assigned by a stable hash of its
  *name*.  Assignment is mutation-stable: adding or removing a table never
  moves any other table between shards, which keeps incremental refreshes
  local to the mutated shard.
* ``"size"`` — size-balanced greedy assignment (largest table first onto the
  least-loaded shard, by cell count).  Shards carry near-equal build cost,
  but a mutation can rebalance tables across shards, touching more shards on
  refresh.  Prefer it for one-shot parallel builds of skewed lakes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.utils.errors import DataLakeError

#: Partitioning strategies understood by :class:`LakePartitioner`.
PARTITION_STRATEGIES = ("hash", "size")


def _stable_shard_hash(name: str) -> int:
    """Process-stable integer hash of a table name (no PYTHONHASHSEED drift)."""
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "big")


@dataclass(frozen=True)
class LakeShard:
    """One shard of a partitioned lake: a named, ordered subset of its tables.

    Table objects are shared with the parent lake — materialising the shard
    via :meth:`to_lake` copies references, never cell values — so a shard is
    always a live view of the parent's current content.
    """

    parent: DataLake
    shard_id: int
    num_shards: int
    strategy: str
    #: Member table names, in the parent lake's insertion order.
    table_names: tuple[str, ...]

    @property
    def num_tables(self) -> int:
        return len(self.table_names)

    @property
    def is_empty(self) -> bool:
        return not self.table_names

    def tables(self) -> list[Table]:
        """The member tables (shared objects, parent insertion order)."""
        return [self.parent.get(name) for name in self.table_names]

    def to_lake(self) -> DataLake:
        """Materialise the shard as a lake sharing the parent's tables.

        The name encodes the shard topology for readability only — lake
        fingerprints deliberately exclude the name, so a shard lake's
        fingerprint is purely its members' content and persisted shard
        indexes are shared with any equal-content lake.
        """
        return DataLake(
            self.tables(),
            name=f"{self.parent.name}#shard{self.shard_id}of{self.num_shards}",
        )

    def table_fingerprints(self) -> dict[str, str]:
        """``name -> content fingerprint`` of the member tables, in order."""
        return {
            name: self.parent.get(name).content_fingerprint()
            for name in self.table_names
        }

    def fingerprint(self) -> str:
        """Content fingerprint of the shard (same digest as :meth:`to_lake`).

        Depends only on the member tables' content — not on shard topology —
        so mutating one table changes exactly one shard's fingerprint and
        re-sharding an unchanged lake re-addresses existing persisted
        entries instead of invalidating them.
        """
        hasher = hashlib.sha256()
        for name in self.table_names:
            hasher.update(self.parent.get(name).content_fingerprint().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"LakeShard({self.shard_id}/{self.num_shards}, "
            f"strategy={self.strategy!r}, tables={self.num_tables})"
        )


class LakePartitioner:
    """Splits a lake into ``num_shards`` deterministic :class:`LakeShard` views."""

    def __init__(self, num_shards: int, *, strategy: str = "hash") -> None:
        if num_shards < 1:
            raise DataLakeError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in PARTITION_STRATEGIES:
            raise DataLakeError(
                f"partition strategy must be one of {'/'.join(PARTITION_STRATEGIES)}, "
                f"got {strategy!r}"
            )
        self.num_shards = int(num_shards)
        self.strategy = strategy

    def shard_id_of(self, table_name: str) -> int:
        """The shard a table name maps to under the ``"hash"`` strategy.

        Only the hash strategy is name-addressable — size-balanced assignment
        depends on the whole lake's contents, so it has no per-name answer.
        """
        if self.strategy != "hash":
            raise DataLakeError(
                f"shard_id_of is only defined for the 'hash' strategy, "
                f"not {self.strategy!r}"
            )
        return _stable_shard_hash(table_name) % self.num_shards

    def _assignment(self, lake: DataLake) -> dict[str, int]:
        """``table name -> shard id`` for every table of ``lake``."""
        if self.strategy == "hash":
            return {name: self.shard_id_of(name) for name in lake.table_names()}
        # Size-balanced: largest first onto the least-loaded shard (LPT).
        # Cell count approximates build cost; ties break by name then shard
        # id, so the assignment is a pure function of the lake's contents.
        sized = sorted(
            ((table.num_rows * table.num_columns, table.name) for table in lake),
            key=lambda item: (-item[0], item[1]),
        )
        loads = [0] * self.num_shards
        assignment: dict[str, int] = {}
        for cells, name in sized:
            shard_id = min(range(self.num_shards), key=lambda i: (loads[i], i))
            assignment[name] = shard_id
            loads[shard_id] += cells
        return assignment

    def partition(self, lake: DataLake) -> list[LakeShard]:
        """Partition ``lake`` into exactly ``num_shards`` disjoint shards.

        Every table lands in exactly one shard; shards may be empty (more
        shards than tables).  Member order within a shard follows the lake's
        insertion order, so partitioning is stable under re-partition of an
        unchanged lake.
        """
        assignment = self._assignment(lake)
        members: list[list[str]] = [[] for _ in range(self.num_shards)]
        for name in lake.table_names():  # lake insertion order within shards
            members[assignment[name]].append(name)
        return [
            LakeShard(
                parent=lake,
                shard_id=shard_id,
                num_shards=self.num_shards,
                strategy=self.strategy,
                table_names=tuple(names),
            )
            for shard_id, names in enumerate(members)
        ]
