"""Data-lake substrate: in-memory tables, columns, a versioned catalog, CSV I/O.

The catalog (:class:`DataLake`) journals every ``add_table`` / ``remove_table``
/ ``replace_table`` / ``touch`` mutation so downstream indexes can maintain
themselves incrementally — see :class:`LakeDelta` and
:meth:`~repro.search.base.TableUnionSearcher.update_index`.
"""

from repro.datalake.table import Column, Row, Table
from repro.datalake.lake import DataLake
from repro.datalake.delta import LakeDelta, diff_table_fingerprints
from repro.datalake.partition import LakePartitioner, LakeShard
from repro.datalake.io import (
    read_csv,
    table_from_payload,
    table_from_rows,
    table_to_payload,
    write_csv,
)
from repro.datalake.profile import ColumnProfile, TableProfile, profile_column, profile_table

__all__ = [
    "Column",
    "Row",
    "Table",
    "DataLake",
    "LakeDelta",
    "diff_table_fingerprints",
    "LakePartitioner",
    "LakeShard",
    "read_csv",
    "write_csv",
    "table_from_rows",
    "table_from_payload",
    "table_to_payload",
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
]
