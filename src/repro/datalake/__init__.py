"""Data-lake substrate: in-memory tables, columns, a catalog and CSV I/O."""

from repro.datalake.table import Column, Row, Table
from repro.datalake.lake import DataLake
from repro.datalake.io import read_csv, write_csv, table_from_rows
from repro.datalake.profile import ColumnProfile, TableProfile, profile_column, profile_table

__all__ = [
    "Column",
    "Row",
    "Table",
    "DataLake",
    "read_csv",
    "write_csv",
    "table_from_rows",
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
]
