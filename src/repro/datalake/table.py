"""In-memory relational tables.

The paper manipulates tables as bags of tuples over named columns (Sec. 3).
:class:`Table` is the value model used everywhere in this library: benchmark
generators produce them, union-search indexes them, column alignment rewrites
them and the DUST pipeline unions and diversifies their rows.

Cells are stored as Python objects (usually ``str`` or ``float``); missing
values are represented by ``None`` and recognised through
:func:`repro.utils.text.is_null`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.utils.errors import DataLakeError
from repro.utils.text import is_null, is_numeric

#: A single tuple (row) of a table: one value per column, in column order.
Row = tuple[Any, ...]


@dataclass(frozen=True)
class Column:
    """A column reference: the owning table name, header and position."""

    table_name: str
    name: str
    index: int

    @property
    def qualified_name(self) -> str:
        """``table.column`` identifier, unique within a data lake."""
        return f"{self.table_name}.{self.name}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.qualified_name


@dataclass
class Table:
    """A named table with a header and a list of rows.

    Parameters
    ----------
    name:
        Identifier of the table inside its data lake (file name in the paper's
        benchmarks).
    columns:
        Column headers, in order.  Headers must be unique within the table.
    rows:
        Tuples of cell values.  Every row must have exactly ``len(columns)``
        values; shorter/longer rows raise :class:`DataLakeError`.
    metadata:
        Free-form annotations (topic, base-table provenance, ...).  Benchmark
        generators use this to record ground truth; the search and
        diversification code never reads it.
    """

    name: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise DataLakeError(
                f"table {self.name!r} has duplicate column headers: {self.columns}"
            )
        normalized: list[Row] = []
        for position, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise DataLakeError(
                    f"table {self.name!r} row {position} has {len(row)} values, "
                    f"expected {len(self.columns)}"
                )
            normalized.append(tuple(row))
        self.rows = normalized
        self._fingerprint_cache: str | None = None

    # ------------------------------------------------------------------ shape
    @property
    def num_rows(self) -> int:
        """Number of tuples in the table."""
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        """Number of columns in the table."""
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    # -------------------------------------------------------------- accessors
    def column_index(self, name: str) -> int:
        """Return the position of column ``name`` or raise :class:`DataLakeError`."""
        try:
            return self.columns.index(name)
        except ValueError as exc:
            raise DataLakeError(
                f"table {self.name!r} has no column {name!r}; columns are {self.columns}"
            ) from exc

    def column_ref(self, name: str) -> Column:
        """Return a :class:`Column` reference for column ``name``."""
        return Column(self.name, name, self.column_index(name))

    def column_refs(self) -> list[Column]:
        """Return :class:`Column` references for all columns, in order."""
        return [Column(self.name, name, i) for i, name in enumerate(self.columns)]

    def column_values(self, name: str, *, drop_nulls: bool = False) -> list[Any]:
        """Return the values of column ``name`` in row order."""
        index = self.column_index(name)
        values = [row[index] for row in self.rows]
        if drop_nulls:
            values = [value for value in values if not is_null(value)]
        return values

    def row_dict(self, position: int) -> dict[str, Any]:
        """Return row ``position`` as a ``{column: value}`` mapping."""
        if not 0 <= position < self.num_rows:
            raise DataLakeError(
                f"row index {position} out of range for table {self.name!r} "
                f"with {self.num_rows} rows"
            )
        return dict(zip(self.columns, self.rows[position]))

    # ------------------------------------------------------------- operations
    def project(self, columns: Sequence[str], *, name: str | None = None) -> "Table":
        """Return a new table containing only ``columns`` (in the given order)."""
        indices = [self.column_index(column) for column in columns]
        projected_rows = [tuple(row[i] for i in indices) for row in self.rows]
        return Table(
            name=name or self.name,
            columns=list(columns),
            rows=projected_rows,
            metadata=dict(self.metadata),
        )

    def select_rows(self, positions: Sequence[int], *, name: str | None = None) -> "Table":
        """Return a new table containing the rows at ``positions`` (in order)."""
        for position in positions:
            if not 0 <= position < self.num_rows:
                raise DataLakeError(
                    f"row index {position} out of range for table {self.name!r}"
                )
        return Table(
            name=name or self.name,
            columns=list(self.columns),
            rows=[self.rows[i] for i in positions],
            metadata=dict(self.metadata),
        )

    def rename_columns(self, mapping: Mapping[str, str], *, name: str | None = None) -> "Table":
        """Return a copy with columns renamed according to ``mapping``."""
        renamed = [mapping.get(column, column) for column in self.columns]
        return Table(
            name=name or self.name,
            columns=renamed,
            rows=list(self.rows),
            metadata=dict(self.metadata),
        )

    def drop_all_null_columns(self) -> "Table":
        """Drop columns whose values are all null (paper Sec. 6.1 preprocessing)."""
        keep = [
            column
            for column in self.columns
            if any(not is_null(value) for value in self.column_values(column))
        ]
        if len(keep) == self.num_columns:
            return self
        return self.project(keep)

    def distinct_rows(self, *, name: str | None = None) -> "Table":
        """Return a copy with exact duplicate rows removed (set semantics)."""
        seen: set[Row] = set()
        unique: list[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Table(
            name=name or self.name,
            columns=list(self.columns),
            rows=unique,
            metadata=dict(self.metadata),
        )

    def append_rows(self, rows: Iterable[Row]) -> None:
        """Append ``rows`` in place, validating arity.

        This is the one in-place mutation the value model supports, and it
        invalidates the cached :meth:`content_fingerprint`, so every
        content-keyed consumer — searcher query memos, the
        :class:`~repro.serving.service.QueryService` result cache, persisted
        :class:`~repro.serving.store.IndexStore` entries — sees the table as
        new content on its next fingerprint read.  If the table is a member
        of a :class:`~repro.datalake.lake.DataLake`, the lake's *version*
        counter does not observe the mutation: call ``lake.touch(name)``
        afterwards (or let fingerprint-diff consumers such as
        ``searcher.refresh()`` detect it) so delta-maintained indexes
        re-index this table.
        """
        for row in rows:
            row = tuple(row)
            if len(row) != self.num_columns:
                raise DataLakeError(
                    f"cannot append row with {len(row)} values to table "
                    f"{self.name!r} with {self.num_columns} columns"
                )
            self.rows.append(row)
        self._fingerprint_cache = None

    def is_numeric_column(self, name: str, *, threshold: float = 0.8) -> bool:
        """Heuristically classify column ``name`` as numeric.

        A column is numeric when at least ``threshold`` of its non-null values
        parse as numbers (the same rule the D3L and SANTOS substrates use to
        route columns to numeric vs textual signals).
        """
        values = self.column_values(name, drop_nulls=True)
        if not values:
            return False
        numeric = sum(1 for value in values if is_numeric(value))
        return numeric / len(values) >= threshold

    def content_fingerprint(self) -> str:
        """Stable hex digest of the table's name, header and rows.

        Two tables with the same name, columns and cell values (``metadata``
        is excluded — no index reads it) produce the same fingerprint across
        processes, which is what lets the serving layer key persisted indexes
        and cached search results by content rather than by object identity.

        The digest is cached; :meth:`append_rows` invalidates it.  Mutating
        ``rows`` or ``columns`` directly bypasses the invalidation — go
        through the provided operations (which return new tables) instead.
        Incremental index maintenance diffs these fingerprints
        (:meth:`DataLake.table_fingerprints`) to decide which tables to
        re-index, so a stale cached digest would mean a silently stale index
        entry: the invalidation rule above is a correctness contract, not an
        optimisation detail.
        """
        if self._fingerprint_cache is not None:
            return self._fingerprint_cache
        hasher = hashlib.sha256()
        hasher.update(self.name.encode())
        for column in self.columns:
            hasher.update(b"\x1f")
            hasher.update(column.encode())
        for row in self.rows:
            hasher.update(b"\x1e")
            for value in row:
                hasher.update(b"\x1f")
                hasher.update(f"{type(value).__name__}:{value!r}".encode())
        self._fingerprint_cache = hasher.hexdigest()
        return self._fingerprint_cache

    def copy(self, *, name: str | None = None) -> "Table":
        """Return a deep-enough copy (rows are immutable tuples)."""
        return Table(
            name=name or self.name,
            columns=list(self.columns),
            rows=list(self.rows),
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"Table(name={self.name!r}, columns={self.num_columns}, "
            f"rows={self.num_rows})"
        )
