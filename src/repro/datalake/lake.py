"""The :class:`DataLake` catalog.

A data lake is simply a named collection of :class:`~repro.datalake.table.Table`
objects (paper Sec. 3: the set ``D`` of data lake tables).  The catalog keeps
insertion order, enforces unique table names, supports the preprocessing rules
used in the paper's experiments (drop all-null columns, drop query tables with
fewer than three rows) and exposes simple statistics used by the Fig. 5
benchmark-statistics experiment.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator

from repro.datalake.table import Table
from repro.utils.errors import DataLakeError


class DataLake:
    """An ordered, name-indexed collection of tables."""

    def __init__(self, tables: Iterable[Table] = (), *, name: str = "datalake") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    # ------------------------------------------------------------- mutation
    def add(self, table: Table) -> None:
        """Add ``table``; raises :class:`DataLakeError` on duplicate names."""
        if table.name in self._tables:
            raise DataLakeError(
                f"data lake {self.name!r} already contains a table named {table.name!r}"
            )
        self._tables[table.name] = table

    def add_all(self, tables: Iterable[Table]) -> None:
        """Add every table in ``tables``."""
        for table in tables:
            self.add(table)

    def remove(self, name: str) -> Table:
        """Remove and return the table called ``name``."""
        try:
            return self._tables.pop(name)
        except KeyError as exc:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {name!r}"
            ) from exc

    # ------------------------------------------------------------- accessors
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def get(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {name!r}"
            ) from exc

    def table_names(self) -> list[str]:
        """Return table names in insertion order."""
        return list(self._tables)

    def tables(self) -> list[Table]:
        """Return tables in insertion order."""
        return list(self._tables.values())

    # ------------------------------------------------------------ statistics
    @property
    def num_tables(self) -> int:
        """Number of tables in the lake."""
        return len(self._tables)

    @property
    def num_columns(self) -> int:
        """Total number of columns across all tables."""
        return sum(table.num_columns for table in self)

    @property
    def num_rows(self) -> int:
        """Total number of tuples across all tables."""
        return sum(table.num_rows for table in self)

    def fingerprint(self) -> str:
        """Content fingerprint of the lake: digest over every table, in order.

        The lake ``name`` is deliberately excluded so two lakes holding the
        same tables share persisted indexes and cached search results.
        """
        hasher = hashlib.sha256()
        for table in self:
            hasher.update(table.content_fingerprint().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def filter(self, predicate: Callable[[Table], bool], *, name: str | None = None) -> "DataLake":
        """Return a new lake with only the tables satisfying ``predicate``."""
        return DataLake(
            (table for table in self if predicate(table)),
            name=name or self.name,
        )

    def preprocess(self, *, min_rows: int = 0) -> "DataLake":
        """Apply the paper's preprocessing (Sec. 6.1, final paragraph).

        Columns whose values are all null are dropped from every table, and
        tables with fewer than ``min_rows`` rows are removed (the paper uses
        ``min_rows=3`` for query tables).
        """
        cleaned = []
        for table in self:
            table = table.drop_all_null_columns()
            if table.num_rows >= min_rows and table.num_columns > 0:
                cleaned.append(table)
        return DataLake(cleaned, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"DataLake(name={self.name!r}, tables={self.num_tables}, "
            f"columns={self.num_columns}, rows={self.num_rows})"
        )
