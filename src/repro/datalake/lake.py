"""The :class:`DataLake` catalog.

A data lake is simply a named collection of :class:`~repro.datalake.table.Table`
objects (paper Sec. 3: the set ``D`` of data lake tables).  The catalog keeps
insertion order, enforces unique table names, supports the preprocessing rules
used in the paper's experiments (drop all-null columns, drop query tables with
fewer than three rows) and exposes simple statistics used by the Fig. 5
benchmark-statistics experiment.

Lakes are **versioned**: every mutation made through :meth:`~DataLake.add_table`,
:meth:`~DataLake.remove_table`, :meth:`~DataLake.replace_table` or
:meth:`~DataLake.touch` bumps :attr:`~DataLake.version` and is journaled, so
:meth:`~DataLake.changes_since` can report the net
:class:`~repro.datalake.delta.LakeDelta` between any two versions — the input
to incremental index maintenance
(:meth:`~repro.search.base.TableUnionSearcher.update_index`).  Tables passed
to the constructor are the version-0 seed state, not mutations: they are
catalogued without journal entries.

The journal is bounded (:data:`MAX_JOURNAL_ENTRIES`); a long-lived,
high-write lake eventually trims entries and consumers anchored below the
trim floor would fall off the full-rebuild cliff.  **Compaction checkpoints**
(:meth:`~DataLake.checkpoint`) close that gap: a checkpoint records the
lake's per-table fingerprint snapshot at its version, and
:meth:`~DataLake.changes_since` falls back to diffing the snapshot against
the current content when the journal no longer reaches that far — so a
consumer that re-anchors at checkpointed versions (the streaming-ingest
micro-batcher checkpoints after every applied batch) never sees ``None``
regardless of how many events have streamed past it.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator

from repro.datalake.delta import LakeDelta, diff_table_fingerprints
from repro.datalake.table import Table
from repro.utils.errors import DataLakeError

#: Journal entries kept before the oldest are dropped.  Versions older than
#: the retained window make ``changes_since`` return ``None`` (callers then
#: fall back to a fingerprint diff or a full rebuild) unless they are
#: checkpointed, so the bound trades a rebuild on very stale consumers for
#: bounded memory on long-lived lakes.
MAX_JOURNAL_ENTRIES = 4096

#: Compaction checkpoints retained before the oldest are dropped.  Each
#: checkpoint is one ``name -> fingerprint`` map (O(tables) strings), so the
#: bound keeps checkpointing O(1) in the number of applied batches.
MAX_CHECKPOINTS = 16


class DataLake:
    """An ordered, name-indexed, versioned collection of tables."""

    def __init__(self, tables: Iterable[Table] = (), *, name: str = "datalake") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._version = 0
        #: ``(version_after_the_op, "add" | "remove", table_name)`` entries.
        self._journal: list[tuple[int, str, str]] = []
        #: Versions at or below this floor predate the retained journal.
        self._journal_floor = 0
        #: Total journal entries discarded by the trim (write-path health).
        self._journal_dropped = 0
        #: Compaction checkpoints: ``version -> table fingerprint snapshot``.
        self._checkpoints: dict[int, dict[str, str]] = {}
        # Seed tables are the lake's version-0 state, not mutations: they
        # enter the catalog without version bumps or journal entries, so
        # constructing a large lake (or a shard view of one) never burns the
        # bounded journal window and consumers pinned at version 0 see an
        # empty delta instead of a spurious full rebuild.
        for table in tables:
            self._admit(table)

    # ------------------------------------------------------------- versioning
    @property
    def version(self) -> int:
        """Monotonic mutation counter (0 for an empty, untouched lake).

        Only catalog-level operations bump the version; mutating a member
        table in place (:meth:`Table.append_rows`) does not — call
        :meth:`touch` afterwards to register the change, or rely on
        fingerprint diffs (:meth:`table_fingerprints`), which always see
        through in-place mutation.
        """
        return self._version

    def _journal_op(self, op: str, name: str) -> None:
        self._journal.append((self._version, op, name))
        if len(self._journal) > MAX_JOURNAL_ENTRIES:
            dropped = len(self._journal) - MAX_JOURNAL_ENTRIES
            # Never split a same-version entry group (the remove+add pair a
            # replace/touch journals at one version): trimming half of a pair
            # would leave an orphaned entry whose version equals the floor.
            # Extend the trim to the group boundary so the floor is always a
            # clean edge — every retained entry's version is > the floor.
            while (
                dropped < len(self._journal)
                and self._journal[dropped][0] == self._journal[dropped - 1][0]
            ):
                dropped += 1
            self._journal_floor = self._journal[dropped - 1][0]
            self._journal_dropped += dropped
            del self._journal[:dropped]

    @property
    def journal_depth(self) -> int:
        """Number of journal entries currently retained."""
        return len(self._journal)

    @property
    def journal_floor(self) -> int:
        """Oldest version ``changes_since`` can serve from the journal.

        A consumer at exactly the floor is still served (the floor version's
        own entries were dropped, but every *later* entry is retained, which
        is all a floor-anchored consumer needs); versions strictly below the
        floor fall back to compaction checkpoints, then to ``None``.
        """
        return self._journal_floor

    @property
    def journal_dropped(self) -> int:
        """Total journal entries discarded by the bounded-journal trim."""
        return self._journal_dropped

    # ------------------------------------------------------------- compaction
    def checkpoint(self) -> int:
        """Record a compaction checkpoint at the current version.

        Snapshots the per-table fingerprint map so ``changes_since`` can
        later serve a consumer anchored at this version even after the
        journal trims past it.  At most :data:`MAX_CHECKPOINTS` snapshots are
        retained (oldest evicted first).  Returns the checkpointed version.
        """
        self._checkpoints[self._version] = self.table_fingerprints()
        while len(self._checkpoints) > MAX_CHECKPOINTS:
            del self._checkpoints[min(self._checkpoints)]
        return self._version

    @property
    def checkpoint_versions(self) -> list[int]:
        """Versions with a retained compaction checkpoint, ascending."""
        return sorted(self._checkpoints)

    def _changes_from_checkpoint(self, version: int) -> LakeDelta | None:
        snapshot = self._checkpoints.get(version)
        if snapshot is None:
            return None
        added, removed = diff_table_fingerprints(snapshot, self.table_fingerprints())
        return LakeDelta(
            base_version=version,
            version=self._version,
            added=tuple(added),
            removed=tuple(removed),
        )

    def changes_since(self, version: int) -> LakeDelta | None:
        """Net delta between ``version`` and the current version.

        Served from the journal when ``version`` is within the retained
        window; when it predates the window, a compaction checkpoint at
        exactly that version (see :meth:`checkpoint`) is diffed against the
        current content instead.  Returns ``None`` only when neither source
        can derive the delta: ``version`` is in the future, or it is below
        the journal floor and not checkpointed.  Callers treat ``None`` as
        "assume everything changed" (full rebuild or fingerprint diff).
        Replaced/touched tables appear in both ``added`` and ``removed``;
        add-then-remove sequences cancel out.
        """
        if version > self._version:
            return None
        if version < self._journal_floor:
            return self._changes_from_checkpoint(version)
        first_op: dict[str, str] = {}
        for entry_version, op, table_name in self._journal:
            if entry_version <= version:
                continue
            first_op.setdefault(table_name, op)
        added: list[str] = []
        removed: list[str] = []
        for table_name, op in first_op.items():
            present_at_base = op == "remove"
            present_now = table_name in self._tables
            if present_at_base:
                removed.append(table_name)
            if present_now:
                added.append(table_name)
        return LakeDelta(
            base_version=version,
            version=self._version,
            added=tuple(added),
            removed=tuple(removed),
        )

    # ------------------------------------------------------------- mutation
    def _admit(self, table: Table) -> None:
        """Insert ``table`` into the catalog (no version bump, no journal)."""
        if table.name in self._tables:
            raise DataLakeError(
                f"data lake {self.name!r} already contains a table named {table.name!r}"
            )
        self._tables[table.name] = table

    def add_table(self, table: Table) -> "DataLake":
        """Add ``table``; raises :class:`DataLakeError` on duplicate names."""
        self._admit(table)
        self._version += 1
        self._journal_op("add", table.name)
        return self

    def remove_table(self, name: str) -> Table:
        """Remove and return the table called ``name``."""
        try:
            removed = self._tables.pop(name)
        except KeyError as exc:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {name!r}"
            ) from exc
        self._version += 1
        self._journal_op("remove", name)
        return removed

    def replace_table(self, table: Table) -> Table:
        """Swap in a new version of an existing table; returns the old one.

        Fingerprint-delta-aware: when the replacement's content fingerprint
        equals the incumbent's, the call is a no-op (no version bump, no
        journal entry), so re-loading an unchanged table never invalidates
        indexes or caches keyed by lake content.
        """
        try:
            previous = self._tables[table.name]
        except KeyError as exc:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {table.name!r} to replace"
            ) from exc
        if previous.content_fingerprint() == table.content_fingerprint():
            return previous
        self._tables[table.name] = table
        self._version += 1
        self._journal_op("remove", table.name)
        self._journal_op("add", table.name)
        return previous

    def touch(self, name: str) -> "DataLake":
        """Register an in-place mutation of the table called ``name``.

        :meth:`Table.append_rows` mutates a table without going through the
        catalog, so no journal entry records it.  ``touch`` journals the
        change as a replace (the table appears in both ``added`` and
        ``removed`` of subsequent deltas), keeping version-based consumers
        correct.  Fingerprint-diff consumers (:meth:`table_fingerprints`)
        see in-place mutation even without ``touch``.
        """
        if name not in self._tables:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {name!r}"
            )
        self._version += 1
        self._journal_op("remove", name)
        self._journal_op("add", name)
        return self

    def add(self, table: Table) -> None:
        """Alias of :meth:`add_table` (kept for backward compatibility)."""
        self.add_table(table)

    def add_all(self, tables: Iterable[Table]) -> None:
        """Add every table in ``tables``."""
        for table in tables:
            self.add_table(table)

    def remove(self, name: str) -> Table:
        """Alias of :meth:`remove_table` (kept for backward compatibility)."""
        return self.remove_table(name)

    # ------------------------------------------------------------- accessors
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def get(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise DataLakeError(
                f"data lake {self.name!r} has no table named {name!r}"
            ) from exc

    def table_names(self) -> list[str]:
        """Return table names in insertion order."""
        return list(self._tables)

    def tables(self) -> list[Table]:
        """Return tables in insertion order."""
        return list(self._tables.values())

    # ------------------------------------------------------------ statistics
    @property
    def num_tables(self) -> int:
        """Number of tables in the lake."""
        return len(self._tables)

    @property
    def num_columns(self) -> int:
        """Total number of columns across all tables."""
        return sum(table.num_columns for table in self)

    @property
    def num_rows(self) -> int:
        """Total number of tuples across all tables."""
        return sum(table.num_rows for table in self)

    def fingerprint(self) -> str:
        """Content fingerprint of the lake: digest over every table, in order.

        The lake ``name`` is deliberately excluded so two lakes holding the
        same tables share persisted indexes and cached search results.  The
        digest is recomputed on every call (each table's own fingerprint is
        cached), so it reflects in-place ``append_rows`` mutations that the
        version counter cannot see.
        """
        hasher = hashlib.sha256()
        for table in self:
            hasher.update(table.content_fingerprint().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def table_fingerprints(self) -> dict[str, str]:
        """``table name -> content fingerprint`` for every table, in order.

        This is the lake's content snapshot used for delta derivation:
        diffing two snapshots (:func:`~repro.datalake.delta.diff_table_fingerprints`)
        yields the same net delta as the journal, works across processes (the
        :class:`~repro.serving.store.IndexStore` persists the map in each
        entry's manifest) and additionally catches in-place table mutation.
        """
        return {table.name: table.content_fingerprint() for table in self}

    def filter(self, predicate: Callable[[Table], bool], *, name: str | None = None) -> "DataLake":
        """Return a new lake with only the tables satisfying ``predicate``."""
        return DataLake(
            (table for table in self if predicate(table)),
            name=name or self.name,
        )

    def preprocess(self, *, min_rows: int = 0) -> "DataLake":
        """Apply the paper's preprocessing (Sec. 6.1, final paragraph).

        Columns whose values are all null are dropped from every table, and
        tables with fewer than ``min_rows`` rows are removed (the paper uses
        ``min_rows=3`` for query tables).
        """
        cleaned = []
        for table in self:
            table = table.drop_all_null_columns()
            if table.num_rows >= min_rows and table.num_columns > 0:
                cleaned.append(table)
        return DataLake(cleaned, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"DataLake(name={self.name!r}, tables={self.num_tables}, "
            f"columns={self.num_columns}, rows={self.num_rows})"
        )
