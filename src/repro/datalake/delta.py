"""Lake mutation deltas.

:class:`~repro.datalake.lake.DataLake` versions every mutation made through
``add_table``/``remove_table``/``replace_table``/``touch`` and can summarise
the net change between any two versions as a :class:`LakeDelta` — the cheap,
journal-backed answer to "what changed since version v?" for callers that
track versions (monitoring, change feeds, invalidation decisions).

The index-maintenance paths themselves — ``searcher.refresh()``, the
delta-aware :class:`~repro.serving.store.IndexStore` and
``QueryService.refresh()`` — deliberately do *not* read the journal: they
diff per-table content fingerprints (:func:`diff_table_fingerprints`), which
works across processes against persisted snapshots and also catches in-place
``Table.append_rows`` mutations the journal cannot see, then feed the
resulting added/removed lists to
:meth:`~repro.search.base.TableUnionSearcher.update_index`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LakeDelta:
    """The net difference between two versions of one data lake.

    A table that was replaced (or mutated in place and ``touch``-ed) appears
    in **both** ``added`` and ``removed``: index maintenance treats a replace
    as "drop the old entry, index the new one".  A table that was added and
    then removed between the two versions appears in neither.
    """

    #: Version the delta is relative to (the "before" state).
    base_version: int
    #: Version the delta leads to (the "after" state).
    version: int
    #: Names of tables present now that were absent (or different) at base.
    added: tuple[str, ...] = ()
    #: Names of tables present at base that are absent (or different) now.
    removed: tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        """Whether the two versions hold identical table sets."""
        return not self.added and not self.removed

    @property
    def num_changes(self) -> int:
        """Number of index entries the delta touches (replace counts twice)."""
        return len(self.added) + len(self.removed)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"LakeDelta(v{self.base_version}->v{self.version}, "
            f"added={len(self.added)}, removed={len(self.removed)})"
        )


def diff_table_fingerprints(
    base: dict[str, str], current: dict[str, str]
) -> tuple[list[str], list[str]]:
    """Net ``(added, removed)`` table names between two fingerprint maps.

    ``base`` and ``current`` map table name to content fingerprint (see
    :meth:`~repro.datalake.lake.DataLake.table_fingerprints`).  A name whose
    fingerprint differs between the maps is reported in both lists (a
    replace).  This is the journal-free way to compute a delta — it works
    against a persisted snapshot from another process, and it also catches
    in-place ``Table.append_rows`` mutations that no journal entry records.
    """
    added = [name for name, fingerprint in current.items() if base.get(name) != fingerprint]
    removed = [name for name, fingerprint in base.items() if current.get(name) != fingerprint]
    return added, removed
