"""The unified public discovery API.

One front door to the whole reproduction:

* :mod:`repro.api.registry` — string-keyed component registries
  (``@register_searcher("starmie")``, ``available_searchers()``) for
  searchers, diversifiers, column/tuple encoders and benchmark generators.
* :mod:`repro.api.config` — :class:`DiscoveryConfig`, the declarative,
  validated, JSON-round-trippable configuration tree that names every
  component of a discovery deployment.
* :mod:`repro.api.facade` — the :class:`Discovery` facade plus the fluent
  query builder: ``Discovery.from_config(cfg).attach(lake)`` then
  ``d.query(table).k(10).backend("starmie").run()``.
* :mod:`repro.api.schema` — the versioned result payload
  (``RESULT_SCHEMA_VERSION``) shared byte-for-byte by ``ResultSet.to_json``,
  the ``search`` CLI and the resident server's ``/v1/search`` wire response.
* :mod:`repro.api.cli` — the ``python -m repro`` / ``dust`` command line
  (``search``, ``diversify``, ``evaluate``, ``warm``, ``serve``, ``info``).

Only the registry is imported eagerly; the facade and config modules load on
first attribute access so that implementation modules can register themselves
during package import without a cycle.
"""

from repro.api.registry import (
    BENCHMARKS,
    COLUMN_ENCODERS,
    DIVERSIFIERS,
    SEARCHERS,
    TUPLE_ENCODERS,
    Registry,
    available_benchmarks,
    available_column_encoders,
    available_diversifiers,
    available_searchers,
    available_tuple_encoders,
    register_benchmark,
    register_column_encoder,
    register_diversifier,
    register_searcher,
    register_tuple_encoder,
)

__all__ = [
    "Registry",
    "SEARCHERS",
    "DIVERSIFIERS",
    "TUPLE_ENCODERS",
    "COLUMN_ENCODERS",
    "BENCHMARKS",
    "register_searcher",
    "register_diversifier",
    "register_tuple_encoder",
    "register_column_encoder",
    "register_benchmark",
    "available_searchers",
    "available_diversifiers",
    "available_tuple_encoders",
    "available_column_encoders",
    "available_benchmarks",
    "ComponentSpec",
    "DiscoveryConfig",
    "Discovery",
    "DiscoveryQuery",
    "ResultSet",
    "build_benchmark",
    "RESULT_SCHEMA_VERSION",
    "dump_result",
    "validate_result_payload",
    "canonical_result_payload",
]

#: Attributes served lazily (PEP 562) so that ``repro.api`` can be imported
#: from the implementation modules that register themselves without cycling
#: back through the facade's imports of those same modules.
_LAZY_ATTRIBUTES = {
    "ComponentSpec": "repro.api.config",
    "DiscoveryConfig": "repro.api.config",
    "Discovery": "repro.api.facade",
    "DiscoveryQuery": "repro.api.facade",
    "ResultSet": "repro.api.facade",
    "build_benchmark": "repro.api.facade",
    "RESULT_SCHEMA_VERSION": "repro.api.schema",
    "dump_result": "repro.api.schema",
    "validate_result_payload": "repro.api.schema",
    "canonical_result_payload": "repro.api.schema",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRIBUTES.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
