"""The versioned query/result wire schema shared by the CLI and the server.

One result payload format, specified once, serialized one way.  A
:class:`~repro.api.facade.ResultSet` serializes to a plain dict carrying
``schema_version`` (:data:`RESULT_SCHEMA_VERSION`), run provenance and the
per-candidate ``table``/``score``/``rank`` triples of the search ranking;
:func:`dump_result` is the single JSON serializer both the ``search`` CLI
subcommand and the ``/v1/search`` HTTP endpoint call, so their outputs are
byte-identical serializations of the same payload.

Two helpers keep consumers honest:

* :func:`validate_result_payload` — structural check of a decoded payload
  (required keys, version match, ranking triples well-formed).  The server
  smoke test and the concurrency benchmark run every wire response through
  it.
* :func:`canonical_result_payload` — strips the *volatile* fields (wall-clock
  ``timings``) so two independently computed results for the same query over
  the same content compare equal.  This is the parity predicate used to
  assert that wire results are bit-identical to direct facade queries.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.utils.errors import ConfigurationError

#: Bump when the shape of :meth:`ResultSet.to_dict` payloads changes
#: incompatibly.  Consumers reject payloads from a different major version.
RESULT_SCHEMA_VERSION = 1

#: Keys every version-1 result payload must carry.
RESULT_REQUIRED_KEYS = (
    "schema_version",
    "query",
    "provenance",
    "search_results",
    "num_candidate_tuples",
    "selections",
    "selected_rows",
    "timings",
)

#: Fields excluded by :func:`canonical_result_payload`: wall-clock values that
#: legitimately differ between two runs computing identical results.
VOLATILE_RESULT_KEYS = ("timings",)


def dump_result(payload: Mapping[str, Any]) -> str:
    """Serialize a result payload to its canonical JSON text.

    The one serializer behind ``ResultSet.to_json``, the ``search`` CLI
    output and the ``/v1/search`` response body — same key order, same
    indentation, same fallback stringification, byte for byte.
    """
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def validate_result_payload(payload: Any) -> dict[str, Any]:
    """Check that ``payload`` is a well-formed version-1 result payload.

    Returns the payload (as a plain dict) on success and raises
    :class:`~repro.utils.errors.ConfigurationError` describing the first
    structural problem otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"result payload must be a mapping, got {type(payload).__name__}"
        )
    missing = [key for key in RESULT_REQUIRED_KEYS if key not in payload]
    if missing:
        raise ConfigurationError(f"result payload is missing keys: {missing}")
    version = payload["schema_version"]
    if version != RESULT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"result payload has schema_version {version!r}, "
            f"this library speaks {RESULT_SCHEMA_VERSION}"
        )
    for position, hit in enumerate(payload["search_results"]):
        if not isinstance(hit, Mapping) or not {"table", "score", "rank"} <= set(hit):
            raise ConfigurationError(
                f"search_results[{position}] must carry table/score/rank, got {hit!r}"
            )
    if not isinstance(payload["provenance"], Mapping):
        raise ConfigurationError(
            f"result payload provenance must be a mapping, got {payload['provenance']!r}"
        )
    return dict(payload)


def canonical_result_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The payload minus its volatile fields, for cross-run parity checks.

    Round-trips through JSON so that a payload decoded off the wire and one
    freshly produced in-process compare equal even where JSON normalises
    Python types (tuples become lists, non-string keys become strings).
    """
    stripped = {
        key: value
        for key, value in payload.items()
        if key not in VOLATILE_RESULT_KEYS
    }
    return json.loads(json.dumps(stripped, sort_keys=True, default=str))
