"""Declarative configuration tree for the unified discovery API.

A :class:`DiscoveryConfig` names every component of a discovery deployment by
its registry name plus parameters::

    {
      "searcher": {"name": "d3l", "signal_weights": {"name": 2.0}},
      "column_encoder": {"name": "cell-level", "base": "fasttext"},
      "tuple_encoder": {"name": "roberta"},
      "diversifier": {"name": "dust"},
      "pipeline": {"num_search_tables": 10, "k": 30, "min_query_rows": 3},
      "dust": {"candidate_multiplier": 2, "prune_limit": 2500, ...},
      "serving": {"store_dir": ".cache/index-store"},
      "sharding": {"num_shards": 8, "build_workers": 4}
    }

The tree round-trips through ``from_dict``/``to_dict`` and JSON, is validated
eagerly (unknown sections, unknown component or parameter names and invalid
pipeline/dust/serving values all raise
:class:`~repro.utils.errors.ConfigurationError` at construction time;
component parameter *values* are checked by the constructors at build time),
and has a stable content :meth:`fingerprint`.  Because the
searcher section fully determines the constructed searcher — whose
``config_fingerprint()`` keys the persistent
:class:`~repro.serving.store.IndexStore` — equal configs address the same
persisted index entries: a config *is* an index-store key.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

from repro.api.registry import (
    COLUMN_ENCODERS,
    DIVERSIFIERS,
    SEARCHERS,
    TUPLE_ENCODERS,
    Registry,
)
from repro.core.config import DustConfig, PipelineConfig
from repro.utils.errors import ConfigurationError

#: Section name -> registry used to validate the component's ``name``.
_COMPONENT_SECTIONS: dict[str, Registry] = {
    "searcher": SEARCHERS,
    "column_encoder": COLUMN_ENCODERS,
    "tuple_encoder": TUPLE_ENCODERS,
    "diversifier": DIVERSIFIERS,
}

_PIPELINE_FIELDS = ("num_search_tables", "k", "min_query_rows")
_DUST_FIELDS = tuple(f.name for f in fields(DustConfig))
_SERVING_DEFAULTS: dict[str, Any] = {
    "store_dir": None,
    "cache_size": 1024,
    "max_workers": None,
    "chunk_size": 8,
    "parallelism": "auto",
    "parallel_min_seconds": 1.0,
}
_SHARDING_DEFAULTS: dict[str, Any] = {
    "num_shards": 1,
    "strategy": "hash",
    "build_workers": None,
    "build_parallelism": "auto",
    "parallel_min_seconds": 0.5,
}
_CASCADE_DEFAULTS: dict[str, Any] = {
    "mode": "approx",
    "prefilter": "auto",
    "candidate_budget": 32,
    "escalation_margin": 0.0,
    "projection_dim": 16,
    "num_hashes": 64,
    "num_bands": 16,
    "seed": 7,
}
_INGEST_DEFAULTS: dict[str, Any] = {
    "max_batch_events": 256,
    "max_batch_bytes": 1_048_576,
    "max_latency_seconds": 0.5,
    "checkpoint": True,
    "rebalance_skew_threshold": 2.0,
    "exclusive_timeout_seconds": 5.0,
}
_SERVER_DEFAULTS: dict[str, Any] = {
    "host": "127.0.0.1",
    "port": 8765,
    "max_inflight": 4,
    "queue_timeout_seconds": 1.0,
    "retry_after_seconds": 1.0,
    "event_log": None,
    "maintenance": True,
    "maintenance_interval_seconds": 1.0,
    "maintenance_idle_seconds": 0.5,
    "prewarm_queries": 8,
}
_STORE_DEFAULTS: dict[str, Any] = {
    "backend": "directory",
    "path": None,
    "pool_size": 4,
    "mmap": True,
    "lazy_shards": True,
}


@dataclass(frozen=True)
class ComponentSpec:
    """One named component: a registry name plus constructor parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigurationError(
                f"component name must be a non-empty string, got {self.name!r}"
            )
        object.__setattr__(self, "name", self.name.strip().lower())
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def from_value(cls, value: "ComponentSpec | str | Mapping[str, Any]", *, section: str) -> "ComponentSpec":
        """Parse ``"starmie"`` or ``{"name": "starmie", <param>: ...}``."""
        if isinstance(value, ComponentSpec):
            return value
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, Mapping):
            payload = dict(value)
            name = payload.pop("name", None)
            if name is None:
                raise ConfigurationError(
                    f"config section {section!r} must carry a 'name' key, got {value!r}"
                )
            # Accept both flat params and an explicit nested "params" dict.
            params = payload.pop("params", {})
            if not isinstance(params, Mapping):
                raise ConfigurationError(
                    f"config section {section!r}: 'params' must be a mapping, got {params!r}"
                )
            return cls(name, {**params, **payload})
        raise ConfigurationError(
            f"config section {section!r} must be a name or mapping, got {value!r}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, **self.params}


def _validate_component_params(section: str, registry: Registry, spec: ComponentSpec) -> None:
    """Reject parameter *names* the component's constructor does not accept.

    Parameter values are still validated by the constructor itself at build
    time; this catches the config-file typo case up front without having to
    instantiate (potentially expensive) components.
    """
    factory = registry.get(spec.name)  # unknown component name -> error
    target = factory.__init__ if inspect.isclass(factory) else factory
    try:
        parameters = inspect.signature(target).parameters
    except (TypeError, ValueError):  # pragma: no cover - C-level callables
        return
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return
    allowed = {name for name in parameters if name != "self"}
    unknown = set(spec.params) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown parameters for {section} {spec.name!r}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _validate_serving(serving: Mapping[str, Any]) -> None:
    """Eagerly apply the QueryService/IndexStore value constraints."""
    if serving["cache_size"] < 0:
        raise ConfigurationError(
            f"serving.cache_size must be non-negative, got {serving['cache_size']}"
        )
    if serving["chunk_size"] <= 0:
        raise ConfigurationError(
            f"serving.chunk_size must be positive, got {serving['chunk_size']}"
        )
    if serving["max_workers"] is not None and serving["max_workers"] <= 0:
        raise ConfigurationError(
            f"serving.max_workers must be positive, got {serving['max_workers']}"
        )
    if serving["parallel_min_seconds"] < 0:
        raise ConfigurationError(
            "serving.parallel_min_seconds must be non-negative, "
            f"got {serving['parallel_min_seconds']}"
        )
    if serving["parallelism"] not in ("auto", "process", "thread", "serial"):
        raise ConfigurationError(
            "serving.parallelism must be auto/process/thread/serial, "
            f"got {serving['parallelism']!r}"
        )


def _validate_sharding(sharding: Mapping[str, Any]) -> None:
    """Eagerly apply the LakePartitioner/sharded-build value constraints."""
    num_shards = sharding["num_shards"]
    if not isinstance(num_shards, int) or num_shards < 1:
        raise ConfigurationError(
            f"sharding.num_shards must be a positive integer, got {num_shards!r}"
        )
    if sharding["strategy"] not in ("hash", "size"):
        raise ConfigurationError(
            f"sharding.strategy must be hash/size, got {sharding['strategy']!r}"
        )
    if sharding["build_workers"] is not None and sharding["build_workers"] <= 0:
        raise ConfigurationError(
            f"sharding.build_workers must be positive, got {sharding['build_workers']}"
        )
    if sharding["build_parallelism"] not in ("auto", "process", "serial"):
        raise ConfigurationError(
            "sharding.build_parallelism must be auto/process/serial, "
            f"got {sharding['build_parallelism']!r}"
        )
    if sharding["parallel_min_seconds"] < 0:
        raise ConfigurationError(
            "sharding.parallel_min_seconds must be non-negative, "
            f"got {sharding['parallel_min_seconds']}"
        )


def _validate_cascade(cascade: Mapping[str, Any]) -> None:
    """Eagerly apply the CascadeSearcher/prefilter value constraints."""
    if cascade["mode"] not in ("exact", "approx"):
        raise ConfigurationError(
            f"cascade.mode must be exact/approx, got {cascade['mode']!r}"
        )
    if cascade["prefilter"] not in ("auto", "lsh", "projection"):
        raise ConfigurationError(
            "cascade.prefilter must be auto/lsh/projection, "
            f"got {cascade['prefilter']!r}"
        )
    budget = cascade["candidate_budget"]
    if not isinstance(budget, int) or budget < 1:
        raise ConfigurationError(
            f"cascade.candidate_budget must be a positive integer, got {budget!r}"
        )
    if cascade["escalation_margin"] < 0:
        raise ConfigurationError(
            "cascade.escalation_margin must be non-negative, "
            f"got {cascade['escalation_margin']}"
        )
    if cascade["projection_dim"] < 1:
        raise ConfigurationError(
            f"cascade.projection_dim must be positive, got {cascade['projection_dim']}"
        )
    num_hashes, num_bands = cascade["num_hashes"], cascade["num_bands"]
    if num_hashes < 1 or num_bands < 1 or num_hashes % num_bands != 0:
        raise ConfigurationError(
            f"cascade.num_hashes ({num_hashes}) must be a positive multiple of "
            f"cascade.num_bands ({num_bands})"
        )


def _validate_server(server: Mapping[str, Any]) -> None:
    """Eagerly apply the DiscoveryServer value constraints."""
    port = server["port"]
    if not isinstance(port, int) or not 0 <= port <= 65535:
        raise ConfigurationError(
            f"server.port must be an integer in [0, 65535] (0 = ephemeral), "
            f"got {port!r}"
        )
    if not isinstance(server["host"], str) or not server["host"]:
        raise ConfigurationError(
            f"server.host must be a non-empty string, got {server['host']!r}"
        )
    max_inflight = server["max_inflight"]
    if not isinstance(max_inflight, int) or max_inflight < 1:
        raise ConfigurationError(
            f"server.max_inflight must be a positive integer, got {max_inflight!r}"
        )
    for key in (
        "queue_timeout_seconds",
        "retry_after_seconds",
        "maintenance_interval_seconds",
        "maintenance_idle_seconds",
    ):
        if server[key] < 0:
            raise ConfigurationError(
                f"server.{key} must be non-negative, got {server[key]}"
            )
    if server["event_log"] is not None and not isinstance(server["event_log"], str):
        raise ConfigurationError(
            f"server.event_log must be a path string or null, got {server['event_log']!r}"
        )
    if not isinstance(server["maintenance"], bool):
        raise ConfigurationError(
            f"server.maintenance must be a boolean, got {server['maintenance']!r}"
        )
    prewarm = server["prewarm_queries"]
    if not isinstance(prewarm, int) or prewarm < 0:
        raise ConfigurationError(
            f"server.prewarm_queries must be a non-negative integer, got {prewarm!r}"
        )


def _validate_ingest(ingest: Mapping[str, Any]) -> None:
    """Eagerly apply the IngestController/MicroBatcher value constraints."""
    for key in ("max_batch_events", "max_batch_bytes"):
        value = ingest[key]
        if not isinstance(value, int) or value < 1:
            raise ConfigurationError(
                f"ingest.{key} must be a positive integer, got {value!r}"
            )
    if ingest["max_latency_seconds"] <= 0:
        raise ConfigurationError(
            "ingest.max_latency_seconds must be positive, "
            f"got {ingest['max_latency_seconds']}"
        )
    if not isinstance(ingest["checkpoint"], bool):
        raise ConfigurationError(
            f"ingest.checkpoint must be a boolean, got {ingest['checkpoint']!r}"
        )
    if ingest["rebalance_skew_threshold"] < 1.0:
        raise ConfigurationError(
            "ingest.rebalance_skew_threshold must be >= 1.0, "
            f"got {ingest['rebalance_skew_threshold']}"
        )
    if ingest["exclusive_timeout_seconds"] < 0:
        raise ConfigurationError(
            "ingest.exclusive_timeout_seconds must be non-negative, "
            f"got {ingest['exclusive_timeout_seconds']}"
        )


def _validate_store(store: Mapping[str, Any]) -> None:
    """Eagerly apply the IndexStore backend constraints."""
    from repro.api.registry import STORE_BACKENDS

    backend = store["backend"]
    if not isinstance(backend, str) or backend not in STORE_BACKENDS:
        raise ConfigurationError(
            f"store.backend must be one of {STORE_BACKENDS.names()}, "
            f"got {backend!r}"
        )
    if store["path"] is not None and not isinstance(store["path"], str):
        raise ConfigurationError(
            f"store.path must be a path string or null, got {store['path']!r}"
        )
    pool_size = store["pool_size"]
    if not isinstance(pool_size, int) or pool_size < 1:
        raise ConfigurationError(
            f"store.pool_size must be a positive integer, got {pool_size!r}"
        )
    for key in ("mmap", "lazy_shards"):
        if not isinstance(store[key], bool):
            raise ConfigurationError(
                f"store.{key} must be a boolean, got {store[key]!r}"
            )


def _checked_section(
    section: str, payload: Mapping[str, Any], allowed: tuple[str, ...]
) -> dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"config section {section!r} must be a mapping, got {payload!r}"
        )
    unknown = set(payload) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown keys in config section {section!r}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    return dict(payload)


@dataclass
class DiscoveryConfig:
    """The declarative, serializable configuration of a discovery deployment.

    All sections are optional and normalised at construction: ``pipeline``,
    ``dust`` and ``serving`` overrides are expanded to their fully-resolved
    values (so :meth:`to_dict` is canonical and :meth:`fingerprint` is a
    content address), and every component name is resolved against its
    registry up front.
    """

    searcher: ComponentSpec = field(default_factory=lambda: ComponentSpec("overlap"))
    column_encoder: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("column-level", {"base": "roberta"})
    )
    tuple_encoder: ComponentSpec = field(default_factory=lambda: ComponentSpec("roberta"))
    diversifier: ComponentSpec = field(default_factory=lambda: ComponentSpec("dust"))
    pipeline: dict[str, Any] = field(default_factory=dict)
    dust: dict[str, Any] = field(default_factory=dict)
    serving: dict[str, Any] | None = None
    #: Optional lake-sharding section: ``{"num_shards": 8, "strategy": "hash",
    #: "build_workers": 4, ...}``.  With ``num_shards > 1`` every backend the
    #: facade builds becomes a :class:`~repro.search.sharded.ShardedSearcher`
    #: — partition-parallel builds, fan-out/merge serving, per-shard store
    #: entries — transparently, with rankings bit-identical to a flat index.
    sharding: dict[str, Any] | None = None
    #: Optional tiered-cascade section: ``{"mode": "approx",
    #: "candidate_budget": 32, "escalation_margin": 0.0, ...}``.  When present
    #: the facade wraps the built backend in a
    #: :class:`~repro.search.cascade.CascadeSearcher` — approximate candidate
    #: prefilter, narrow exact scoring, ambiguity-triggered escalation.
    #: ``mode: "exact"`` keeps rankings bit-identical to the bare backend.
    cascade: dict[str, Any] | None = None
    #: Optional resident-server section: ``{"host": ..., "port": ...,
    #: "max_inflight": 4, "queue_timeout_seconds": 1.0, ...}`` consumed by
    #: ``python -m repro serve`` /
    #: :class:`~repro.serving.server.DiscoveryServer`.  Deliberately
    #: **fingerprint-neutral**: where a deployment listens and how it
    #: admission-controls traffic never changes what its indexes contain, so
    #: two configs differing only here share :meth:`fingerprint` — and hence
    #: persisted index entries and cached results.
    server: dict[str, Any] | None = None
    #: Optional streaming-ingestion section: ``{"max_batch_events": 256,
    #: "max_batch_bytes": 1048576, "max_latency_seconds": 0.5, ...}``
    #: consumed by :meth:`~repro.api.facade.Discovery.ingest` /
    #: :class:`~repro.ingest.controller.IngestController`.  Like ``server``,
    #: it is **fingerprint-neutral**: batching cadence changes *when* writes
    #: land, never what an index built from the same content contains.
    ingest: dict[str, Any] | None = None
    #: Optional index-store backend section: ``{"backend": "sqlite",
    #: "path": null, "pool_size": 4, "mmap": true, "lazy_shards": true}``
    #: selecting *how* ``serving.store_dir`` persists entries (the
    #: :data:`~repro.api.registry.STORE_BACKENDS` registry).  Like ``server``
    #: and ``ingest`` it is **fingerprint-neutral**: the physical storage of
    #: an index never changes its content, so the same entries stay
    #: addressable when a deployment migrates between backends.
    store: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        for section, registry in _COMPONENT_SECTIONS.items():
            spec = ComponentSpec.from_value(getattr(self, section), section=section)
            setattr(self, section, spec)
            _validate_component_params(section, registry, spec)

        pipeline = _checked_section("pipeline", self.pipeline, _PIPELINE_FIELDS)
        dust = _checked_section("dust", self.dust, _DUST_FIELDS)
        # Building the frozen config dataclasses validates every value (k > 0,
        # known metric/linkage, ...) and fills in the paper defaults.
        resolved = PipelineConfig(dust=DustConfig(**dust), **pipeline)
        self.pipeline = {name: getattr(resolved, name) for name in _PIPELINE_FIELDS}
        self.dust = {name: getattr(resolved.dust, name) for name in _DUST_FIELDS}

        if self.serving is not None:
            serving = _checked_section(
                "serving", self.serving, tuple(_SERVING_DEFAULTS)
            )
            self.serving = {**_SERVING_DEFAULTS, **serving}
            _validate_serving(self.serving)

        if self.sharding is not None:
            sharding = _checked_section(
                "sharding", self.sharding, tuple(_SHARDING_DEFAULTS)
            )
            self.sharding = {**_SHARDING_DEFAULTS, **sharding}
            _validate_sharding(self.sharding)

        if self.cascade is not None:
            cascade = _checked_section(
                "cascade", self.cascade, tuple(_CASCADE_DEFAULTS)
            )
            self.cascade = {**_CASCADE_DEFAULTS, **cascade}
            _validate_cascade(self.cascade)

        if self.server is not None:
            server = _checked_section("server", self.server, tuple(_SERVER_DEFAULTS))
            self.server = {**_SERVER_DEFAULTS, **server}
            _validate_server(self.server)

        if self.ingest is not None:
            ingest = _checked_section("ingest", self.ingest, tuple(_INGEST_DEFAULTS))
            self.ingest = {**_INGEST_DEFAULTS, **ingest}
            _validate_ingest(self.ingest)

        if self.store is not None:
            store = _checked_section("store", self.store, tuple(_STORE_DEFAULTS))
            self.store = {**_STORE_DEFAULTS, **store}
            _validate_store(self.store)

    # ----------------------------------------------------------------- presets
    @classmethod
    def preset(cls, name: str) -> "DiscoveryConfig":
        """A shipped, evidence-backed named configuration.

        Presets (``"exact"``, ``"balanced"``, ``"low-latency"``) are the
        config payloads of :mod:`repro.scenarios.presets`, chosen from the
        measured Pareto fronts of the scenario matrix
        (``python -m repro scenarios`` → ``BENCH_scenarios.json``); each is
        a grid cell of that matrix, so its trade-offs are re-measured every
        run.  Presets round-trip: ``preset(n).to_dict()`` rebuilds an equal
        config with a stable :meth:`fingerprint`.
        """
        from repro.scenarios.presets import preset_payload

        return cls.from_dict(preset_payload(name))

    # -------------------------------------------------------------- resolution
    def pipeline_config(self) -> PipelineConfig:
        """The validated :class:`~repro.core.config.PipelineConfig` this names."""
        return PipelineConfig(dust=self.dust_config(), **self.pipeline)

    def dust_config(self) -> DustConfig:
        """The validated :class:`~repro.core.config.DustConfig` this names."""
        return DustConfig(**self.dust)

    # ----------------------------------------------------------- serialization
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DiscoveryConfig":
        """Build and validate a config from a plain (e.g. JSON-loaded) dict."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"discovery config must be a mapping, got {payload!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown discovery config sections: {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        kwargs: dict[str, Any] = {}
        for section in _COMPONENT_SECTIONS:
            if section in payload:
                kwargs[section] = ComponentSpec.from_value(
                    payload[section], section=section
                )
        for section in (
            "pipeline", "dust", "serving", "sharding", "cascade", "server",
            "ingest", "store",
        ):
            if section in payload:
                kwargs[section] = payload[section]
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        """Canonical, fully-resolved, JSON-serializable form (round-trips)."""
        payload: dict[str, Any] = {
            section: getattr(self, section).to_dict()
            for section in _COMPONENT_SECTIONS
        }
        payload["pipeline"] = dict(self.pipeline)
        payload["dust"] = dict(self.dust)
        if self.serving is not None:
            payload["serving"] = dict(self.serving)
        if self.sharding is not None:
            payload["sharding"] = dict(self.sharding)
        if self.cascade is not None:
            payload["cascade"] = dict(self.cascade)
        if self.server is not None:
            payload["server"] = dict(self.server)
        if self.ingest is not None:
            payload["ingest"] = dict(self.ingest)
        if self.store is not None:
            payload["store"] = dict(self.store)
        return payload

    @classmethod
    def from_json(cls, text: str) -> "DiscoveryConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid discovery config JSON: {exc}") from exc
        return cls.from_dict(payload)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_file(cls, path: str | Path) -> "DiscoveryConfig":
        """Load a config from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read discovery config file {path}: {exc}"
            ) from exc
        return cls.from_json(text)

    # ------------------------------------------------------------- fingerprint
    def fingerprint(self) -> str:
        """Stable hex digest of the canonical config tree.

        Two configs with the same fingerprint build component-for-component
        identical deployments — and therefore address the same entries of a
        persistent index store.  The ``server`` section is excluded: a
        deployment's listen address and admission limits are operational
        knobs, not index content, so moving a server to another port must
        not orphan its persisted indexes or cached results.  ``ingest`` is
        excluded for the same reason: batching cadence changes when writes
        land, never what equal content indexes to.  ``store`` is excluded
        too: the physical backend holding an index entry never changes what
        the entry contains, so migrating a deployment from the directory
        layout to SQLite must not re-key its indexes.
        """
        content = self.to_dict()
        content.pop("server", None)
        content.pop("ingest", None)
        content.pop("store", None)
        payload = json.dumps(content, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()
