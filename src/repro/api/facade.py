"""The :class:`Discovery` facade: one front door to the whole system.

``Discovery.from_config(cfg).attach(lake)`` resolves every component named by
a :class:`~repro.api.config.DiscoveryConfig` through the registries, wires the
:class:`~repro.core.pipeline.DustPipeline` (and, when a ``serving`` section is
configured, an :class:`~repro.serving.store.IndexStore`-backed
:class:`~repro.serving.service.QueryService`) exactly as the hand-written call
sites used to, and serves fluent queries::

    discovery = Discovery.from_config({"searcher": {"name": "overlap"}})
    discovery.attach(benchmark.lake)
    result = discovery.query(table).k(10).backend("starmie").run()
    print(result.to_json())

Selections are bit-identical to manually-wired ``DustPipeline`` runs: the
facade builds the same objects and calls the same entry points, it only
removes the wiring boilerplate.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.api.config import ComponentSpec, DiscoveryConfig
from repro.api.schema import RESULT_SCHEMA_VERSION, dump_result
from repro.api.registry import (
    BENCHMARKS,
    COLUMN_ENCODERS,
    DIVERSIFIERS,
    SEARCHERS,
    TUPLE_ENCODERS,
    registry_catalog,
)
from repro.core.pipeline import DustPipeline, DustResult
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import SearchResult, TableUnionSearcher
from repro.search.cascade import CascadeSearcher
from repro.search.sharded import ShardedSearcher
from repro.serving.service import QueryService
from repro.serving.store import IndexStore
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ingest -> api)
    from repro.ingest.controller import IngestController

#: Reduced-scale shape overrides applied by :func:`build_benchmark` so CLI and
#: CI invocations stay laptop-sized; pass explicit overrides for larger runs.
_BENCHMARK_SCALE: dict[str, dict[str, int]] = {
    "tus": {"num_base_tables": 6, "base_rows": 60, "lake_tables_per_base": 6},
    "tus-sampled": {"num_base_tables": 6, "base_rows": 60, "lake_tables_per_base": 6},
    "santos": {"num_base_tables": 6, "base_rows": 60, "lake_tables_per_base": 6},
    "imdb": {"num_movies": 200, "num_lake_tables": 8, "rows_per_table": 50, "query_rows": 20},
}


def build_benchmark(name: str, *, num_queries: int = 2, seed: int = 3, **overrides: Any):
    """Build a registered benchmark at CLI-friendly scale.

    ``num_queries``/``seed`` are forwarded when the generator accepts them
    (the IMDB case study, for instance, always has exactly one query table).
    """
    factory = BENCHMARKS.get(name)
    accepted = set(inspect.signature(factory).parameters)
    kwargs: dict[str, Any] = dict(_BENCHMARK_SCALE.get(name.strip().lower(), {}))
    kwargs.update(overrides)
    if "num_queries" in accepted:
        kwargs.setdefault("num_queries", num_queries)
    if "seed" in accepted:
        kwargs.setdefault("seed", seed)
    unknown = set(kwargs) - accepted
    if unknown:
        raise ConfigurationError(
            f"benchmark generator {name!r} does not accept parameters {sorted(unknown)}"
        )
    return factory(**kwargs)


@dataclass
class ResultSet:
    """A :class:`~repro.core.pipeline.DustResult` plus run provenance."""

    result: DustResult
    #: Which config/backend/lake produced this result (all content-addressed).
    provenance: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- delegation
    @property
    def query_table_name(self) -> str:
        return self.result.query_table_name

    @property
    def search_results(self) -> list[SearchResult]:
        return self.result.search_results

    @property
    def selected_tuples(self):
        return self.result.selected_tuples

    @property
    def selected_indices(self) -> list[int]:
        return self.result.selected_indices

    @property
    def timings(self) -> dict[str, float]:
        return self.result.timings

    def __len__(self) -> int:
        return len(self.result.selected_tuples)

    def selections(self) -> list[tuple[str, int]]:
        """``(source table, source row)`` of every selected tuple."""
        return [
            (aligned.source_table, aligned.source_row)
            for aligned in self.result.selected_tuples
        ]

    def as_table(self, query_table: Table, *, name: str | None = None) -> Table:
        return self.result.as_table(query_table, name=name)

    def diversity(self, *, metric: str = "cosine") -> dict[str, float]:
        return self.result.diversity(metric=metric)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """The version-1 result payload of :mod:`repro.api.schema`.

        This is the *specified* result schema: ``schema_version`` names the
        payload format, ``provenance`` records which config/backend/lake
        produced it, and ``search_results`` carries one
        ``{"table", "score", "rank"}`` triple per ranked candidate.  The
        ``search`` CLI output and the ``/v1/search`` wire response are both
        :func:`~repro.api.schema.dump_result` serializations of this dict.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "query": self.result.query_table_name,
            "provenance": dict(self.provenance),
            "search_results": [
                {"table": hit.table_name, "score": hit.score, "rank": hit.rank}
                for hit in self.result.search_results
            ],
            "num_candidate_tuples": self.result.num_candidate_tuples,
            "selections": [list(pair) for pair in self.selections()],
            "selected_rows": [
                dict(aligned.values) for aligned in self.result.selected_tuples
            ],
            "timings": dict(self.result.timings),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        if indent == 2:
            return dump_result(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)


class DiscoveryQuery:
    """Fluent single/multi-query builder returned by :meth:`Discovery.query`."""

    def __init__(self, discovery: "Discovery", table: Table | None = None) -> None:
        self._discovery = discovery
        self._table = table
        self._k: int | None = None
        self._backend: str | None = None

    def table(self, table: Table) -> "DiscoveryQuery":
        """Set (or replace) the query table."""
        self._table = table
        return self

    def k(self, value: int) -> "DiscoveryQuery":
        """Number of diverse tuples to return (defaults to the config's k)."""
        if value <= 0:
            raise ConfigurationError(f"k must be positive, got {value}")
        self._k = int(value)
        return self

    def backend(self, name: str) -> "DiscoveryQuery":
        """Route this query through a different registered search backend."""
        SEARCHERS.get(name)  # fail fast on unknown names
        self._backend = name
        return self

    def run(self, table: Table | None = None) -> ResultSet:
        """Execute Algorithm 1 for the configured query table."""
        query_table = table if table is not None else self._table
        if query_table is None:
            raise ConfigurationError(
                "no query table: pass one to query()/table()/run()"
            )
        return self._discovery.run(query_table, k=self._k, backend=self._backend)

    def run_many(self, tables: Sequence[Table]) -> list[ResultSet]:
        """Execute Algorithm 1 for several query tables against one index."""
        return self._discovery.run_many(tables, k=self._k, backend=self._backend)


class Discovery:
    """Builds and serves a configured discovery deployment.

    Components (encoders, diversifier, pipeline config) are resolved once at
    construction; search backends are built and indexed lazily per backend
    name when :meth:`attach`-ed to a lake — through the persistent index store
    and query service when the config has a ``serving`` section.  When the
    attached lake mutates, :meth:`refresh` marks every built backend stale
    and each re-synchronises (delta index update + result-cache drop) lazily
    on its next query.
    """

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self.config = config or DiscoveryConfig()
        self._pipeline_config = self.config.pipeline_config()
        self._tuple_encoder = TUPLE_ENCODERS.create(
            self.config.tuple_encoder.name, **self.config.tuple_encoder.params
        )
        self._column_encoder = self._build_column_encoder(self.config.column_encoder)
        self._diversifier = self._build_diversifier(self.config.diversifier)
        serving = self.config.serving
        self._store = (
            IndexStore.from_config(serving["store_dir"], self.config.store)
            if serving is not None and serving.get("store_dir")
            else None
        )
        self._lake: DataLake | None = None
        self._searchers: dict[str, TableUnionSearcher] = {}
        self._services: dict[str, QueryService] = {}
        self._pipelines: dict[str, DustPipeline] = {}
        #: Backends whose index predates a :meth:`refresh` call; each one
        #: re-synchronises lazily the next time it serves a query.
        self._stale_backends: set[str] = set()
        #: Lazily-built streaming write path (see :meth:`ingest`).
        self._ingest = None
        self._closed = False

    # ------------------------------------------------------------ construction
    @classmethod
    def from_config(
        cls, config: "DiscoveryConfig | Mapping[str, Any] | str | Path | None" = None
    ) -> "Discovery":
        """Build a facade from a config object, dict, or JSON file path."""
        if config is None or isinstance(config, DiscoveryConfig):
            return cls(config)
        if isinstance(config, Mapping):
            return cls(DiscoveryConfig.from_dict(config))
        if isinstance(config, (str, Path)):
            return cls(DiscoveryConfig.from_file(config))
        raise ConfigurationError(
            f"from_config() accepts a DiscoveryConfig, mapping or path, got {config!r}"
        )

    def _build_column_encoder(self, spec: ComponentSpec):
        params = dict(spec.params)
        base = params.get("base")
        if isinstance(base, (str, Mapping)):
            base_spec = ComponentSpec.from_value(base, section="column_encoder.base")
            params["base"] = TUPLE_ENCODERS.create(base_spec.name, **base_spec.params)
        elif base is None:
            # Column encoders wrap a base tuple encoder; share the config's.
            params["base"] = self._tuple_encoder
        return COLUMN_ENCODERS.create(spec.name, **params)

    def _build_diversifier(self, spec: ComponentSpec):
        params = dict(spec.params)
        if spec.name == "dust" and "config" not in params:
            params["config"] = self.config.dust_config()
        return DIVERSIFIERS.create(spec.name, **params)

    @property
    def tuple_encoder(self):
        """The config's tuple encoder instance."""
        return self._tuple_encoder

    @property
    def column_encoder(self):
        """The config's column encoder instance."""
        return self._column_encoder

    def diversifier(self, name: str | None = None, **params: Any):
        """The config's diversifier, or any registered one built by name.

        A ``dust`` diversifier without an explicit ``config`` parameter
        inherits this deployment's dust configuration — the single place that
        wiring rule lives, shared by the facade and the CLI.
        """
        if name is None and not params:
            return self._diversifier
        if name is None:
            name = self.config.diversifier.name
        return self._build_diversifier(ComponentSpec(name, params))

    # -------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "Discovery is closed; build a new facade to serve more queries"
            )

    def close(self) -> None:
        """Release every resource this deployment holds.

        Query-service worker state and result caches are dropped, built
        searchers/pipelines are released, and the index-store handle is
        detached.  Serving a query (or attaching a lake) afterwards raises
        :class:`~repro.utils.errors.ConfigurationError`; calling ``close``
        again is a no-op.  The facade is a context manager, so long-lived
        callers — the resident server, multi-query ``run_many`` drivers —
        can scope the deployment with ``with``.
        """
        if self._closed:
            return
        self._closed = True
        if self._ingest is not None:
            self._ingest.close()
            self._ingest = None
        for service in self._services.values():
            service.close()
        self._services.clear()
        self._searchers.clear()
        self._pipelines.clear()
        self._stale_backends.clear()
        self._store = None
        self._lake = None

    def __enter__(self) -> "Discovery":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------------------- attach
    def attach(self, lake: DataLake) -> "Discovery":
        """Bind a data lake and index the configured default backend."""
        self._check_open()
        self._lake = lake
        self._searchers.clear()
        self._services.clear()
        self._pipelines.clear()
        self._stale_backends.clear()
        if self._ingest is not None:
            # The controller targets the previous lake; drop it so the next
            # ingest() call rebuilds against the new attachment.
            self._ingest.close()
            self._ingest = None
        self._ensure_backend(self.config.searcher.name)
        return self

    def refresh(self) -> "Discovery":
        """Declare the attached lake mutated; backends re-sync lazily.

        Call after mutating the attached lake
        (``add_table``/``remove_table``/``replace_table``/``touch``).  Every
        already-built backend is marked stale; each one delta-updates its
        index (and, when serving, drops its now-stale result cache) the next
        time a query routes through it — so a deployment with five indexed
        backends pays one incremental update per backend *actually queried*,
        not five up front.  Backends not yet built simply index the current
        lake on first use, as always.
        """
        self.lake  # raises when not attached
        self._stale_backends.update(self._searchers)
        return self

    def resync(self) -> list[str]:
        """Eagerly re-synchronise every built backend with the lake's content.

        The eager complement of :meth:`refresh`'s lazy re-sync, for callers
        that *want* to pay the delta updates now rather than on the next
        query — the server's background maintenance loop runs this between
        request bursts so queries never stall on an index update.  Detects
        drift directly from content fingerprints (no prior :meth:`refresh`
        call required) and returns the backend names whose indexes actually
        moved.
        """
        self._check_open()
        lake = self.lake  # raises when not attached
        moved: list[str] = []
        for key, searcher in self._searchers.items():
            service = self._services.get(key)
            if service is not None:
                # The service snapshots the fingerprint it last warmed or
                # refreshed against; the live lake object may have mutated
                # underneath it since.
                drifted = service._lake_fingerprint != lake.fingerprint()
            else:
                drifted = (
                    not searcher.is_indexed
                    or searcher._indexed_table_fps != lake.table_fingerprints()
                )
            if drifted or key in self._stale_backends:
                self._sync_backend(key)
                moved.append(key)
        return moved

    @property
    def built_backends(self) -> list[str]:
        """Names of the backends already built for this deployment, sorted."""
        return sorted(self._searchers)

    def ingest(self, *, gate: Any = None) -> "IngestController":
        """The deployment's streaming write path (built lazily, one per lake).

        Returns an :class:`~repro.ingest.controller.IngestController`
        configured from this config's ``ingest`` section (defaults when the
        section is absent).  Events submitted to it are netted per table,
        coalesced into bounded micro-batches, applied atomically to the
        attached lake plus every built backend's ``update_index`` path, and
        checkpointed for journal compaction.  Pass the serving layer's
        ``gate`` so applied batches exclude in-flight queries; calling again
        with a gate rebinds the existing controller.
        """
        self._check_open()
        self.lake  # raises when not attached
        if self._ingest is None:
            from repro.ingest.controller import IngestController

            section = self.config.ingest
            if section is None:
                from repro.api.config import _INGEST_DEFAULTS

                section = dict(_INGEST_DEFAULTS)
            self._ingest = IngestController(self, gate=gate, **section)
        elif gate is not None:
            self._ingest.bind_gate(gate)
        return self._ingest

    def lake_health(self) -> dict[str, Any] | None:
        """Write-path health of the attached lake (``None`` when detached).

        Version, journal depth/floor, entries dropped by the bounded-journal
        trim, and retained compaction-checkpoint versions — the numbers an
        operator needs to judge whether ``changes_since`` consumers are at
        risk of the full-rebuild floor.
        """
        if not self.is_attached:
            return None
        lake = self.lake
        return {
            "name": lake.name,
            "version": lake.version,
            "num_tables": lake.num_tables,
            "journal_depth": lake.journal_depth,
            "journal_floor": lake.journal_floor,
            "journal_dropped": lake.journal_dropped,
            "checkpoints": lake.checkpoint_versions,
        }

    def service_stats(self) -> dict[str, dict[str, int]]:
        """Result-cache hit/miss counters per built query service."""
        return {
            key: service.cache_stats for key, service in sorted(self._services.items())
        }

    def _sync_backend(self, key: str) -> None:
        """Apply a pending lake delta to one built backend."""
        service = self._services.get(key)
        if service is not None:
            service.refresh()
        else:
            self._searchers[key].refresh()
        self._stale_backends.discard(key)

    @property
    def store(self) -> IndexStore | None:
        """The deployment's persistent index store (None when not configured)."""
        return self._store

    @property
    def lake(self) -> DataLake:
        if self._lake is None:
            raise ConfigurationError(
                "Discovery is not attached to a data lake; call attach(lake) first"
            )
        return self._lake

    @property
    def is_attached(self) -> bool:
        return self._lake is not None

    # ---------------------------------------------------------------- backends
    def _backend_key(self, backend: str | None) -> str:
        key = (backend or self.config.searcher.name).strip().lower()
        SEARCHERS.get(key)  # unknown name -> ConfigurationError
        return key

    def _build_searcher(self, backend: str) -> TableUnionSearcher:
        # The default backend keeps its configured parameters; alternates are
        # built with registry defaults.
        spec = self.config.searcher
        params = dict(spec.params) if backend == spec.name else {}

        def factory() -> TableUnionSearcher:
            return SEARCHERS.create(backend, **params)

        sharding = self.config.sharding
        if sharding is not None and sharding["num_shards"] > 1:
            # Transparently shard-aware: the composite builds shard indexes
            # in parallel, serves by fan-out/merge and (with a store)
            # persists per shard — rankings bit-identical to the flat
            # backend, so nothing downstream changes.
            searcher: TableUnionSearcher = ShardedSearcher(
                factory,
                num_shards=sharding["num_shards"],
                strategy=sharding["strategy"],
                workers=sharding["build_workers"],
                parallelism=sharding["build_parallelism"],
                parallel_min_seconds=sharding["parallel_min_seconds"],
                store=self._store,
            )
        else:
            searcher = factory()
        cascade = self.config.cascade
        if cascade is not None:
            # Outermost wrapper: the cascade prefilters over the (possibly
            # sharded) backend and pushes its candidate budget down through
            # score_candidates; in "exact" mode it delegates wholesale.
            searcher = CascadeSearcher(
                searcher,
                mode=cascade["mode"],
                candidate_budget=cascade["candidate_budget"],
                escalation_margin=cascade["escalation_margin"],
                prefilter=cascade["prefilter"],
                projection_dim=cascade["projection_dim"],
                num_hashes=cascade["num_hashes"],
                num_bands=cascade["num_bands"],
                seed=cascade["seed"],
            )
        return searcher

    def _ensure_backend(self, backend: str) -> TableUnionSearcher:
        self._check_open()
        key = self._backend_key(backend)
        searcher = self._searchers.get(key)
        if searcher is not None:
            if key in self._stale_backends:
                self._sync_backend(key)
            return searcher
        searcher = self._build_searcher(key)
        if self.config.serving is not None:
            serving = self.config.serving
            service = QueryService(
                searcher,
                store=self._store,
                max_workers=serving["max_workers"],
                chunk_size=serving["chunk_size"],
                cache_size=serving["cache_size"],
                parallelism=serving["parallelism"],
                parallel_min_seconds=serving["parallel_min_seconds"],
            )
            service.warm(self.lake)
            self._services[key] = service
        elif self._store is not None and not searcher.manages_own_persistence:
            self._store.load_or_build(searcher, self.lake)
        else:
            searcher.index(self.lake)
        self._searchers[key] = searcher
        return searcher

    def searcher(self, backend: str | None = None) -> TableUnionSearcher:
        """The (lazily indexed) searcher serving ``backend``."""
        return self._ensure_backend(self._backend_key(backend))

    def service(self, backend: str | None = None) -> QueryService | None:
        """The backend's :class:`QueryService`, or ``None`` without serving."""
        key = self._backend_key(backend)
        self._ensure_backend(key)
        return self._services.get(key)

    def pipeline(self, backend: str | None = None) -> DustPipeline:
        """The wired :class:`DustPipeline` serving ``backend``."""
        key = self._backend_key(backend)
        # Always route through _ensure_backend: a cached pipeline holds the
        # searcher by reference, and the backend may have a pending refresh()
        # delta to apply before serving another query.
        searcher = self._ensure_backend(key)
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = DustPipeline(
                searcher=searcher,
                column_encoder=self._column_encoder,
                tuple_encoder=self._tuple_encoder,
                config=self._pipeline_config,
                diversifier=self._diversifier,
            )
            self._pipelines[key] = pipeline
        return pipeline

    # ----------------------------------------------------------------- search
    def search(
        self, query_table: Table, k: int | None = None, *, backend: str | None = None
    ) -> list[SearchResult]:
        """Step-1 only: ranked unionable tables (service-cached when serving)."""
        key = self._backend_key(backend)
        self._ensure_backend(key)
        k = k if k is not None else self._pipeline_config.num_search_tables
        service = self._services.get(key)
        if service is not None:
            return service.search(query_table, k)
        return self._searchers[key].search(query_table, k)

    def search_many(
        self,
        query_tables: Sequence[Table],
        k: int | None = None,
        *,
        backend: str | None = None,
    ) -> list[list[SearchResult]]:
        """Batch step-1 rankings (parallel + cached when serving is enabled)."""
        key = self._backend_key(backend)
        self._ensure_backend(key)
        k = k if k is not None else self._pipeline_config.num_search_tables
        service = self._services.get(key)
        if service is not None:
            return service.search_many(query_tables, k)
        searcher = self._searchers[key]
        return [searcher.search(query, k) for query in query_tables]

    def search_tables(
        self, query_table: Table, k: int | None = None, *, backend: str | None = None
    ) -> list[Table]:
        """Like :meth:`search` but resolving the ranked names to tables."""
        return [
            self.lake.get(hit.table_name)
            for hit in self.search(query_table, k, backend=backend)
        ]

    # -------------------------------------------------------------------- run
    def query(self, table: Table | None = None) -> DiscoveryQuery:
        """Start a fluent query: ``d.query(t).k(10).backend("starmie").run()``."""
        return DiscoveryQuery(self, table)

    def _provenance(self, backend: str, k: int | None) -> dict[str, Any]:
        return {
            "backend": backend,
            "k": k if k is not None else self._pipeline_config.k,
            "config_fingerprint": self.config.fingerprint(),
            "searcher_fingerprint": self._searchers[backend].config_fingerprint(),
            "lake": self.lake.name,
            "lake_fingerprint": self.lake.fingerprint(),
        }

    def run(
        self, query_table: Table, *, k: int | None = None, backend: str | None = None
    ) -> ResultSet:
        """Run Algorithm 1 end to end for one query table."""
        key = self._backend_key(backend)
        pipeline = self.pipeline(key)
        service = self._services.get(key)
        search_results = (
            service.search(query_table, self._pipeline_config.num_search_tables)
            if service is not None
            else None
        )
        result = pipeline.run(query_table, k=k, search_results=search_results)
        return ResultSet(result=result, provenance=self._provenance(key, k))

    def run_many(
        self,
        query_tables: Sequence[Table],
        *,
        k: int | None = None,
        backend: str | None = None,
    ) -> list[ResultSet]:
        """Run Algorithm 1 for several queries against one built index."""
        key = self._backend_key(backend)
        pipeline = self.pipeline(key)
        service = self._services.get(key)
        results = pipeline.run_many(query_tables, k=k, service=service)
        provenance = self._provenance(key, k)
        return [
            ResultSet(result=result, provenance=dict(provenance))
            for result in results
        ]

    # ------------------------------------------------------------------- info
    def info(self) -> dict[str, Any]:
        """Everything a caller needs to know about this deployment."""
        from repro import __version__

        return {
            "version": __version__,
            "config": self.config.to_dict(),
            "config_fingerprint": self.config.fingerprint(),
            # Every component registry in one place — searchers and
            # diversifiers alongside the scenario-matrix workload generators
            # and metrics — so ``info``/``/v1/info`` stay the single
            # discoverability surface as registries are added.
            "registries": registry_catalog(),
            "lake": (
                {
                    "name": self.lake.name,
                    "num_tables": self.lake.num_tables,
                    "version": self.lake.version,
                    "fingerprint": self.lake.fingerprint(),
                    "journal_depth": self.lake.journal_depth,
                    "journal_floor": self.lake.journal_floor,
                    "journal_dropped": self.lake.journal_dropped,
                    "checkpoints": self.lake.checkpoint_versions,
                }
                if self.is_attached
                else None
            ),
            "ingest": self._ingest.stats if self._ingest is not None else None,
            "indexed_backends": sorted(self._searchers),
            "serving": self.config.serving is not None,
            "store": self._store.stats() if self._store is not None else None,
            "num_shards": (
                self.config.sharding["num_shards"]
                if self.config.sharding is not None
                else 1
            ),
            "cascade": (
                self.config.cascade["mode"]
                if self.config.cascade is not None
                else None
            ),
        }
