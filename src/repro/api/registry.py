"""String-keyed component registries behind the unified discovery API.

Every pluggable component family of the reproduction — table union searchers,
diversifiers, column/tuple encoders and benchmark generators — registers its
implementations here under a short stable name, so configuration files and the
CLI can refer to components declaratively (``{"searcher": {"name": "starmie"}}``)
instead of importing and wiring constructors by hand.

Implementations self-register at import time with the decorator helpers::

    @register_searcher("starmie")
    class StarmieSearcher(TableUnionSearcher): ...

Each registry knows which modules host its implementations and imports them
lazily on first lookup, so ``available_searchers()`` is always complete while
``import repro.api.registry`` itself stays dependency-free (no import cycles
with the implementation packages).
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterator, TypeVar

from repro.utils.errors import ConfigurationError

T = TypeVar("T")


class Registry:
    """One named component family: a mapping from short names to factories."""

    def __init__(self, kind: str, *, modules: tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._modules = modules
        self._entries: dict[str, Any] = {}
        self._loaded = False

    # ------------------------------------------------------------ population
    def _ensure_loaded(self) -> None:
        """Import the implementation modules so their decorators have run.

        ``_loaded`` flips only after every import succeeds: a failing module
        keeps the registry retryable (and the real ImportError visible)
        instead of permanently reporting an empty component list.
        """
        if self._loaded:
            return
        for module in self._modules:
            importlib.import_module(module)
        self._loaded = True

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator registering a class or factory under ``name``."""
        key = self._normalize(name)

        def decorate(target: T) -> T:
            existing = self._entries.get(key)
            if existing is not None and existing is not target:
                raise ConfigurationError(
                    f"{self.kind} name {key!r} is already registered to "
                    f"{existing!r}; pick a different name"
                )
            self._entries[key] = target
            return target

        return decorate

    # --------------------------------------------------------------- lookups
    def _normalize(self, name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        return name.strip().lower()

    def get(self, name: str) -> Any:
        """The factory registered under ``name`` (case-insensitive)."""
        self._ensure_loaded()
        key = self._normalize(name)
        try:
            return self._entries[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from None

    def create(self, name: str, **params: Any) -> Any:
        """Instantiate the component registered under ``name`` with ``params``."""
        factory = self.get(name)
        try:
            return factory(**params)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for {self.kind} {name!r}: {exc}"
            ) from exc

    def names(self) -> list[str]:
        """Sorted names of every registered implementation."""
        self._ensure_loaded()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return self._normalize(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)


#: Table union search backends (Algorithm 1, line 3).
SEARCHERS = Registry("searcher", modules=("repro.search",))
#: Diversification algorithms (DUST plus the IR baselines).
DIVERSIFIERS = Registry("diversifier", modules=("repro.diversify", "repro.core.diversifier"))
#: Tuple encoders (word and contextual embedding models).
TUPLE_ENCODERS = Registry("tuple encoder", modules=("repro.embeddings",))
#: Column encoders used for alignment and column-based search.
COLUMN_ENCODERS = Registry("column encoder", modules=("repro.embeddings",))
#: Synthetic benchmark generators (TUS / SANTOS / UGEN-V1 / IMDB).
BENCHMARKS = Registry("benchmark generator", modules=("repro.benchgen",))
#: Scenario workload generators (the scenario-matrix harness).
WORKLOADS = Registry("workload generator", modules=("repro.scenarios",))
#: Scenario metrics scored over each (scenario, config) matrix cell.
SCENARIO_METRICS = Registry("scenario metric", modules=("repro.scenarios",))
#: Physical index-store backends (directory tree / SQLite database).
STORE_BACKENDS = Registry("store backend", modules=("repro.serving.backends",))


def register_searcher(name: str) -> Callable[[T], T]:
    """Register a :class:`~repro.search.base.TableUnionSearcher` subclass."""
    return SEARCHERS.register(name)


def register_diversifier(name: str) -> Callable[[T], T]:
    """Register a :class:`~repro.diversify.base.Diversifier` subclass."""
    return DIVERSIFIERS.register(name)


def register_tuple_encoder(name: str) -> Callable[[T], T]:
    """Register a :class:`~repro.embeddings.base.TupleEncoder` subclass."""
    return TUPLE_ENCODERS.register(name)


def register_column_encoder(name: str) -> Callable[[T], T]:
    """Register a :class:`~repro.embeddings.base.ColumnEncoder` subclass."""
    return COLUMN_ENCODERS.register(name)


def register_benchmark(name: str) -> Callable[[T], T]:
    """Register a benchmark generator function."""
    return BENCHMARKS.register(name)


def register_workload(name: str) -> Callable[[T], T]:
    """Register a scenario workload generator (``repro.scenarios``)."""
    return WORKLOADS.register(name)


def register_scenario_metric(name: str) -> Callable[[T], T]:
    """Register a scenario metric function (``repro.scenarios.metrics``)."""
    return SCENARIO_METRICS.register(name)


def register_store_backend(name: str) -> Callable[[T], T]:
    """Register a :class:`~repro.serving.backends.base.StoreBackend` subclass."""
    return STORE_BACKENDS.register(name)


def available_searchers() -> list[str]:
    """Names of every registered table union searcher."""
    return SEARCHERS.names()


def available_diversifiers() -> list[str]:
    """Names of every registered diversification algorithm."""
    return DIVERSIFIERS.names()


def available_tuple_encoders() -> list[str]:
    """Names of every registered tuple encoder."""
    return TUPLE_ENCODERS.names()


def available_column_encoders() -> list[str]:
    """Names of every registered column encoder."""
    return COLUMN_ENCODERS.names()


def available_benchmarks() -> list[str]:
    """Names of every registered benchmark generator."""
    return BENCHMARKS.names()


def available_workloads() -> list[str]:
    """Names of every registered scenario workload generator."""
    return WORKLOADS.names()


def available_scenario_metrics() -> list[str]:
    """Names of every registered scenario metric."""
    return SCENARIO_METRICS.names()


def available_store_backends() -> list[str]:
    """Names of every registered index-store backend."""
    return STORE_BACKENDS.names()


def registry_catalog() -> dict[str, list[str]]:
    """Every registry's implementation names, keyed by component family.

    The one discoverability surface shared by ``python -m repro info`` and
    the server's ``GET /v1/info``: adding a registry here makes it visible
    everywhere an operator looks for available components.
    """
    return {
        "searchers": available_searchers(),
        "diversifiers": available_diversifiers(),
        "tuple_encoders": available_tuple_encoders(),
        "column_encoders": available_column_encoders(),
        "benchmarks": available_benchmarks(),
        "workloads": available_workloads(),
        "scenario_metrics": available_scenario_metrics(),
        "store_backends": available_store_backends(),
    }
