"""The ``dust`` / ``python -m repro`` command line.

Every subcommand drives the system through the :class:`~repro.api.facade.Discovery`
facade and a :class:`~repro.api.config.DiscoveryConfig` (``--config`` JSON
file, defaults otherwise)::

    dust info
    dust search    --config cfg.json --benchmark ugen --query 0 --k 10
    dust diversify --benchmark ugen --methods dust gmc --k 10
    dust evaluate  --benchmark ugen --k 10
    dust warm      --store .cache/index-store --benchmark ugen --backends overlap d3l
    dust warm      --store .cache/index-store --benchmark ugen --shards 4 --workers 4
    dust serve     --config cfg.json --benchmark ugen --port 0 --event-log events.jsonl
    dust ingest    --url http://127.0.0.1:8765 --events stream.jsonl
    dust scenarios --smoke

``search`` prints one :class:`~repro.api.facade.ResultSet` as the versioned
result payload of :mod:`repro.api.schema` (``--json`` guarantees nothing else
reaches stdout); ``diversify``/``evaluate`` print diversity scores of the
registered diversification methods; ``warm`` pre-builds and persists search
indexes (the CI bench-smoke job runs it twice to prove the store's load
path); ``serve`` runs the resident discovery server
(:class:`~repro.serving.server.DiscoveryServer`) until SIGTERM; ``ingest``
streams JSONL table mutation events into a running server's
``POST /v1/ingest`` in bounded chunks; ``scenarios`` runs the scenario
matrix of :mod:`repro.scenarios` (workload shapes × config grid → Pareto
fronts, ``--smoke`` for the parity-gated CI slice).  ``search``,
``warm`` and ``serve`` share one config-override flag set
(:func:`config_override_parent`): with ``--shards N`` the lake is
partitioned, the shard indexes are built in parallel worker processes and
persisted per shard, and the merged whole-lake entry is persisted too.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.api.config import DiscoveryConfig
from repro.api.facade import Discovery, build_benchmark
from repro.api.registry import (
    SEARCHERS,
    available_benchmarks,
    available_diversifiers,
    available_searchers,
    registry_catalog,
)
from repro.utils.errors import ReproError


def _add_config_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        metavar="JSON_FILE",
        default=None,
        help="DiscoveryConfig JSON file (defaults to the built-in configuration)",
    )


def _add_benchmark_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmark",
        choices=available_benchmarks(),
        default="ugen",
        help="generated benchmark lake to run against (default: %(default)s)",
    )
    parser.add_argument("--num-queries", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)


def _add_cascade_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cascade-mode",
        choices=("exact", "approx"),
        default=None,
        help="enable the tiered query cascade in this mode (exact mode is "
        "bit-identical to the bare backend; approx prunes to a candidate "
        "budget before exact scoring)",
    )
    parser.add_argument(
        "--cascade-budget",
        type=int,
        default=None,
        help="cascade candidate budget: how many prefilter candidates survive "
        "to exact scoring (default: config value or 32)",
    )
    parser.add_argument(
        "--cascade-margin",
        type=float,
        default=None,
        help="cascade escalation margin: approximate-score gaps below this "
        "escalate the query to the full exact path (default: 0, never)",
    )


def _add_sharding_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="override sharding.num_shards: partition the lake into N shards, "
        "build the shard indexes in parallel and serve by fan-out/merge "
        "(default: config value or 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override sharding.build_workers: worker processes for parallel "
        "shard builds (default: config value or auto)",
    )


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-backend",
        choices=("directory", "sqlite"),
        default=None,
        help="override store.backend: how the index store persists entries "
        "(directory tree or one WAL-mode SQLite file; default: config "
        "value or directory)",
    )


def config_override_parent() -> argparse.ArgumentParser:
    """The one shared config-override flag set of ``search``/``warm``/``serve``.

    Every subcommand that builds a deployment inherits this parent, so the
    identical ``--config``/``--cascade-*``/``--shards``/``--workers``/
    ``--store-backend`` flags mean the identical thing everywhere —
    :func:`_load_config` folds them into the :class:`DiscoveryConfig` in one
    place.
    """
    parent = argparse.ArgumentParser(add_help=False)
    _add_config_option(parent)
    _add_cascade_options(parent)
    _add_sharding_options(parent)
    _add_store_options(parent)
    return parent


def _cascade_overrides(args: argparse.Namespace) -> dict:
    overrides: dict = {}
    if getattr(args, "cascade_mode", None) is not None:
        overrides["mode"] = args.cascade_mode
    if getattr(args, "cascade_budget", None) is not None:
        overrides["candidate_budget"] = args.cascade_budget
    if getattr(args, "cascade_margin", None) is not None:
        overrides["escalation_margin"] = args.cascade_margin
    return overrides


def _sharding_overrides(args: argparse.Namespace) -> dict:
    overrides: dict = {}
    if getattr(args, "shards", None) is not None:
        overrides["num_shards"] = args.shards
    if getattr(args, "workers", None) is not None:
        overrides["build_workers"] = args.workers
    return overrides


def _store_overrides(args: argparse.Namespace) -> dict:
    overrides: dict = {}
    if getattr(args, "store_backend", None) is not None:
        overrides["backend"] = args.store_backend
    return overrides


def _load_config(args: argparse.Namespace) -> DiscoveryConfig:
    if getattr(args, "config", None):
        config = DiscoveryConfig.from_file(args.config)
    else:
        config = DiscoveryConfig()
    cascade = _cascade_overrides(args)
    sharding = _sharding_overrides(args)
    store = _store_overrides(args)
    if cascade or sharding or store:
        payload = config.to_dict()
        if cascade:
            payload["cascade"] = {**(payload.get("cascade") or {}), **cascade}
        if sharding:
            payload["sharding"] = {**(payload.get("sharding") or {}), **sharding}
        if store:
            payload["store"] = {**(payload.get("store") or {}), **store}
        config = DiscoveryConfig.from_dict(payload)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dust",
        description="DUST diverse unionable tuple search (python -m repro).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    # search/warm/serve share one config-override flag set (see
    # config_override_parent); tests assert the three stay identical.
    overrides = config_override_parent()

    info = subparsers.add_parser(
        "info", help="show version, registered components and the active config"
    )
    _add_config_option(info)
    info.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    search = subparsers.add_parser(
        "search",
        parents=[overrides],
        help="run Algorithm 1 end to end on a generated benchmark lake",
    )
    _add_benchmark_options(search)
    search.add_argument("--query", type=int, default=0, help="query table index")
    search.add_argument("--k", type=int, default=None, help="override the config's k")
    search.add_argument(
        "--backend", choices=available_searchers(), default=None,
        help="override the config's search backend",
    )
    search.add_argument(
        "--output", metavar="FILE", default=None, help="write the result JSON here"
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="print exactly the versioned result payload (result schema v1, "
        "byte-identical to the server's /v1/search response body) and "
        "nothing else on stdout",
    )
    search.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing breakdown (prefilter / exact scoring / "
        "diversification / merge) to stderr",
    )

    diversify = subparsers.add_parser(
        "diversify", help="run diversification methods on one benchmark query"
    )
    _add_config_option(diversify)
    _add_benchmark_options(diversify)
    diversify.add_argument("--query", type=int, default=0, help="query table index")
    diversify.add_argument("--k", type=int, default=10)
    diversify.add_argument(
        "--methods", nargs="+", choices=available_diversifiers(), default=["dust", "gmc", "maxmin"],
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="score diversification methods over every benchmark query"
    )
    _add_config_option(evaluate)
    _add_benchmark_options(evaluate)
    evaluate.add_argument("--k", type=int, default=10)
    evaluate.add_argument(
        "--methods", nargs="+", choices=available_diversifiers(), default=["dust", "gmc", "maxmin", "random"],
    )

    warm = subparsers.add_parser(
        "warm",
        parents=[overrides],
        help="pre-build and persist search indexes for a benchmark lake",
    )
    _add_benchmark_options(warm)
    warm.add_argument(
        "--store",
        default=".cache/index-store",
        help="index store root directory (default: %(default)s)",
    )
    warm.add_argument(
        "--backends",
        nargs="+",
        choices=available_searchers(),
        default=["overlap", "d3l", "santos"],
        help="search backends to warm (default: %(default)s)",
    )

    serve = subparsers.add_parser(
        "serve",
        parents=[overrides],
        help="run the resident discovery server over a benchmark lake "
        "(versioned HTTP/JSON API with background maintenance)",
    )
    _add_benchmark_options(serve)
    serve.add_argument(
        "--host", default=None, help="bind address (default: config or 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port, 0 for ephemeral (default: config or 8765)",
    )
    serve.add_argument(
        "--event-log",
        metavar="JSONL_FILE",
        default=None,
        help="append one JSON event per served/rejected query to this file",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission-control bound on concurrent searches "
        "(default: config or 4)",
    )
    serve.add_argument(
        "--no-maintenance",
        action="store_true",
        help="disable the background maintenance thread (re-sync/pre-warm/"
        "evict still available on demand via POST /v1/refresh)",
    )

    scenarios = subparsers.add_parser(
        "scenarios",
        help="run the scenario matrix: registered workload shapes x config "
        "grid through the Discovery facade, reduced to per-scenario Pareto "
        "fronts (exact configs are parity-gated against the flat reference)",
    )
    scenarios.add_argument(
        "--smoke",
        action="store_true",
        help="CI slice: 2 scenarios x 3 configs, parity-gated not timing-gated",
    )
    scenarios.add_argument(
        "--scenarios",
        nargs="+",
        metavar="NAME",
        default=None,
        help="workload generators to run (default: every registered generator)",
    )
    scenarios.add_argument(
        "--configs",
        nargs="+",
        metavar="NAME",
        default=None,
        help="config-grid cells to run (default: the whole grid); the "
        "flat-exact reference is always included",
    )
    scenarios.add_argument("--seed", type=int, default=7)
    scenarios.add_argument("--k", type=int, default=10)
    scenarios.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_scenarios.json",
        help="write the full matrix report here (default: %(default)s)",
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="stream table add/replace/remove events from a JSONL file (or "
        "stdin) into a running discovery server's POST /v1/ingest",
    )
    ingest.add_argument(
        "--url",
        required=True,
        help="base URL of the running server, e.g. http://127.0.0.1:8765",
    )
    ingest.add_argument(
        "--events",
        metavar="JSONL_FILE",
        default="-",
        help="event stream: one JSON event per line "
        '({"op": "add"|"replace"|"remove", "name": ..., "table": {...}}); '
        "'-' reads stdin (default: %(default)s)",
    )
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="events per POST request (default: %(default)s)",
    )
    ingest.add_argument(
        "--no-flush",
        action="store_true",
        help="don't force a flush on the final chunk; leave batching to the "
        "server's micro-batch bounds and maintenance loop",
    )
    ingest.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds (default: %(default)s)",
    )
    return parser


# ---------------------------------------------------------------- subcommands
def _cmd_info(args: argparse.Namespace) -> int:
    from repro import __version__

    config = _load_config(args)
    catalog = registry_catalog()
    serving = config.serving or {}
    store_stats = None
    if serving.get("store_dir"):
        from repro.serving.store import IndexStore

        store_stats = IndexStore.from_config(
            serving["store_dir"], config.store
        ).stats()
    payload = {
        "version": __version__,
        **catalog,
        "config": config.to_dict(),
        "config_fingerprint": config.fingerprint(),
        "store": store_stats,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"DUST reproduction v{__version__}")
    for kind in catalog:
        print(f"  {kind.replace('_', ' '):<16}: {', '.join(payload[kind])}")
    print(f"  config fingerprint: {payload['config_fingerprint'][:16]}")
    if store_stats is not None:
        print(
            f"  index store       : {store_stats['backend']} at "
            f"{store_stats['location']} ({store_stats['entries']} entries, "
            f"{store_stats['payload_bytes']} payload bytes)"
        )
    print(f"  active config     : {json.dumps(payload['config'], sort_keys=True)}")
    return 0


def _query_table(benchmark, index: int):
    queries = benchmark.query_tables
    if not 0 <= index < len(queries):
        raise ReproError(
            f"query index {index} out of range; benchmark has {len(queries)} query tables"
        )
    return queries[index]


def _cmd_search(args: argparse.Namespace) -> int:
    config = _load_config(args)
    benchmark = build_benchmark(args.benchmark, num_queries=args.num_queries, seed=args.seed)
    query = _query_table(benchmark, args.query)
    with Discovery.from_config(config).attach(benchmark.lake) as discovery:
        fluent = discovery.query(query)
        if args.k is not None:
            fluent = fluent.k(args.k)
        if args.backend is not None:
            fluent = fluent.backend(args.backend)
        result = fluent.run()
        # The versioned result payload (repro.api.schema): the same bytes the
        # resident server returns from POST /v1/search for this query.
        text = result.to_json()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            if args.json:
                print(text)
            else:
                print(f"wrote {args.output} ({len(result)} selected tuples)")
        else:
            print(text)
        if args.profile:
            _print_search_profile(discovery, args.backend, result)
    return 0


def _print_search_profile(discovery: Discovery, backend: str | None, result) -> None:
    """Per-stage timing breakdown of one ``search`` run (to stderr).

    The pipeline records search/embedding/alignment/diversification wall
    times; when the backend is a :class:`CascadeSearcher` its ``last_profile``
    splits the search stage further into prefilter / narrow exact scoring /
    merge and reports whether the query escalated to the full exact path.
    """
    from repro.search.cascade import CascadeSearcher

    timings = dict(result.timings)
    stages: list[tuple[str, float | str]] = []
    searcher = discovery.searcher(backend)
    if isinstance(searcher, CascadeSearcher) and searcher.last_profile:
        profile = searcher.last_profile
        stages.append(("prefilter", profile.get("prefilter_seconds", 0.0)))
        stages.append(("exact scoring", profile.get("exact_scoring_seconds", 0.0)))
        stages.append(("merge", profile.get("merge_seconds", 0.0)))
        margin = profile.get("margin")
        stages.append(
            (
                "cascade",
                f"mode={profile.get('mode')} "
                f"candidates={profile.get('num_candidates')} "
                f"margin={'n/a' if margin is None else f'{margin:.4f}'} "
                f"escalated={profile.get('escalated')}",
            )
        )
    else:
        stages.append(("exact scoring", timings.get("search", 0.0)))
    for stage in ("embedding", "alignment", "diversification", "total"):
        if stage in timings:
            stages.append((stage, timings[stage]))
    print("per-stage timing breakdown:", file=sys.stderr)
    for name, value in stages:
        if isinstance(value, str):
            print(f"  {name:<16} {value}", file=sys.stderr)
        else:
            print(f"  {name:<16} {value * 1000.0:>10.2f} ms", file=sys.stderr)


def _prepared_workloads(args: argparse.Namespace, discovery: Discovery, *, single_query: bool):
    from repro.evaluation import prepare_query_workload, prepare_query_workloads

    benchmark = build_benchmark(args.benchmark, num_queries=args.num_queries, seed=args.seed)
    encoder = discovery.tuple_encoder
    if single_query:
        query = _query_table(benchmark, args.query)
        return {query.name: prepare_query_workload(benchmark, query, encoder)}
    return prepare_query_workloads(benchmark, benchmark.query_tables, encoder)


def _method_instances(names: Sequence[str], discovery: Discovery) -> dict:
    # discovery.diversifier() centralises the wiring rules (e.g. "dust"
    # inherits the config's dust section).
    return {name: discovery.diversifier(name) for name in names}


def _cmd_diversify(args: argparse.Namespace) -> int:
    from repro.core.metrics import diversity_scores

    discovery = Discovery.from_config(_load_config(args))
    workloads = _prepared_workloads(args, discovery, single_query=True)
    (query_name, workload), = workloads.items()
    k = min(args.k, workload.num_candidates)
    print(
        f"query {query_name}: {workload.num_candidates} unionable candidate "
        f"tuples, k={k}"
    )
    print(f"{'method':<10} {'avg_div':>8} {'min_div':>8} {'time_s':>8}")
    from repro.diversify.base import DiversificationRequest
    from repro.core.diversifier import DustDiversifier

    for name, method in _method_instances(args.methods, discovery).items():
        request = DiversificationRequest(
            query_embeddings=workload.query_embeddings,
            candidate_embeddings=workload.candidate_embeddings,
            k=k,
            context=workload.distance_context(),
        )
        start = time.perf_counter()
        if isinstance(method, DustDiversifier):
            selection = method.select(request, table_ids=workload.table_ids)
        else:
            selection = method.select(request)
        elapsed = time.perf_counter() - start
        scores = diversity_scores(
            workload.query_embeddings,
            workload.candidate_embeddings[selection],
            context=workload.distance_context(),
            selected_indices=selection,
        )
        print(
            f"{name:<10} {scores['average_diversity']:>8.3f} "
            f"{scores['min_diversity']:>8.3f} {elapsed:>8.3f}"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluation import count_wins, evaluate_diversifiers_on_benchmark

    discovery = Discovery.from_config(_load_config(args))
    workloads = _prepared_workloads(args, discovery, single_query=False)
    methods = _method_instances(args.methods, discovery)
    outcomes = evaluate_diversifiers_on_benchmark(workloads, methods, k=args.k)
    wins = count_wins(outcomes)
    print(
        f"{args.benchmark}: {len(workloads)} queries, k={args.k}, "
        f"methods={sorted(methods)}"
    )
    print(f"{'method':<10} {'avg_wins':>8} {'min_wins':>8} {'mean_s':>8}")
    for name, outcome in outcomes.items():
        method_wins = wins.get(name, {})
        print(
            f"{name:<10} {method_wins.get('average_wins', 0):>8.0f} "
            f"{method_wins.get('min_wins', 0):>8.0f} {outcome.mean_time:>8.3f}"
        )
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    from repro.search.cascade import CascadeSearcher
    from repro.search.sharded import build_sharded
    from repro.serving.store import IndexStore
    from repro.utils.errors import SearchError

    # The shared override parent folds --shards/--workers/--cascade-* into
    # the config, so warm honours a --config file exactly like search/serve.
    config = _load_config(args)
    sharding = config.sharding or {}
    num_shards = sharding.get("num_shards", 1)
    workers = sharding.get("build_workers")
    cascade = dict(config.cascade) if config.cascade is not None else {}
    benchmark = build_benchmark(args.benchmark, num_queries=args.num_queries, seed=args.seed)
    lake = benchmark.lake
    store = IndexStore.from_config(args.store, config.store)
    sharded = num_shards > 1
    print(
        f"warming {len(args.backends)} backend(s) over {args.benchmark!r} "
        f"({lake.num_tables} tables, {lake.num_rows} rows), "
        f"store={store.root} [{store.backend_name}]"
        + (f", shards={num_shards}, workers={workers or 'auto'}" if sharded else "")
        + (f", cascade={cascade['mode']}" if cascade else "")
    )
    for backend in args.backends:
        if backend == "oracle":
            searcher = SEARCHERS.create(backend, ground_truth=benchmark.ground_truth)
        else:
            searcher = SEARCHERS.create(backend)
        persisted = searcher
        if cascade and not sharded:
            # Flat + cascade: the whole cascade entry (backend index +
            # fitted prefilter) round-trips through one store entry.
            persisted = CascadeSearcher(searcher, **cascade)
        cached = store.contains(persisted, lake)
        start = time.perf_counter()
        if sharded:
            build_sharded(
                searcher,
                lake,
                num_shards=num_shards,
                workers=workers,
                store=store,
            )
            if cascade:
                # The base is already live on this lake, so wrapping only
                # fits the prefilter; the cascade entry persists alongside
                # the per-shard and merged whole-lake entries.
                persisted = CascadeSearcher(searcher, **cascade)
                persisted.index(lake)
                try:
                    store.save(persisted, lake)
                except SearchError:
                    pass  # backends without index_state() still warmed
        else:
            store.load_or_build(persisted, lake)
        elapsed = time.perf_counter() - start
        action = "loaded" if cached else "built"
        print(
            f"  {backend:>8}: {action} in {elapsed:.3f}s -> "
            f"{store.describe_entry(persisted, lake)}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import DiscoveryServer, run_server

    config = _load_config(args)
    benchmark = build_benchmark(args.benchmark, num_queries=args.num_queries, seed=args.seed)
    server = DiscoveryServer.from_config(
        config,
        benchmark.lake,
        queries=benchmark.query_tables,
        host=args.host,
        port=args.port,
        event_log=args.event_log,
        max_inflight=args.max_inflight,
        maintenance=False if args.no_maintenance else None,
    )
    return run_server(server)


def _post_ingest(url: str, payload: dict, timeout: float) -> dict:
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url.rstrip("/") + "/v1/ingest",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", errors="replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except (json.JSONDecodeError, AttributeError):
            pass
        raise ReproError(f"ingest POST failed ({exc.code}): {detail}") from exc
    except urllib.error.URLError as exc:
        raise ReproError(f"cannot reach {url}: {exc.reason}") from exc


def _cmd_scenarios(args: argparse.Namespace) -> int:
    # Lazy import: the scenario matrix pulls in the whole serving/ingest
    # stack, which no other subcommand should pay for.
    from repro.scenarios.runner import execute

    return execute(args)


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.ingest.events import events_from_jsonl

    if args.batch_size < 1:
        raise ReproError(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.events == "-":
        events = list(events_from_jsonl(sys.stdin))
    else:
        with open(args.events) as handle:
            events = list(events_from_jsonl(handle))
    if not events:
        print("no events to send")
        return 0
    chunks = [
        events[start : start + args.batch_size]
        for start in range(0, len(events), args.batch_size)
    ]
    sent = accepted = batches_applied = 0
    response: dict = {}
    for index, chunk in enumerate(chunks):
        final = index == len(chunks) - 1
        response = _post_ingest(
            args.url,
            {
                "events": [event.to_payload() for event in chunk],
                "flush": final and not args.no_flush,
            },
            args.timeout,
        )
        sent += len(chunk)
        accepted += response.get("accepted", 0)
        batches_applied += response.get("batches_applied", 0)
    print(
        f"sent {sent} event(s) in {len(chunks)} request(s): "
        f"{accepted} accepted after netting, "
        f"{batches_applied} micro-batch(es) applied, "
        f"{response.get('pending_events', 0)} still pending, "
        f"lake version {response.get('lake_version')}"
    )
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "search": _cmd_search,
    "diversify": _cmd_diversify,
    "evaluate": _cmd_evaluate,
    "warm": _cmd_warm,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "scenarios": _cmd_scenarios,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
