"""Index persistence and parallel multi-query search serving.

``repro.serving`` turns the per-process searchers of ``repro.search`` into a
build-once/serve-many system:

* :class:`~repro.serving.store.IndexStore` — persists each backend's built
  lake index to disk (versioned manifest, checksum-validated payloads) keyed
  by backend configuration and lake content fingerprints.  Delta-aware: when
  a mutated lake misses every entry, ``load_or_build`` updates the closest
  prior snapshot through ``update_index`` instead of rebuilding.
* :class:`~repro.serving.service.QueryService` — executes multi-query
  workloads in parallel with a bounded LRU result cache, returning rankings
  bit-identical to direct in-process search; ``refresh()`` follows in-place
  lake mutation (delta index update + cache invalidation).  Works unchanged
  over a :class:`~repro.search.sharded.ShardedSearcher`, which persists one
  store entry per lake shard and serves queries by fan-out/merge.
* :class:`~repro.serving.server.DiscoveryServer` — the resident server mode
  (``python -m repro serve``): a versioned HTTP/JSON API over a kept-hot
  :class:`~repro.api.facade.Discovery` deployment, with admission control,
  per-query latency events (:class:`~repro.serving.events.EventLog`) and a
  background :class:`~repro.serving.maintenance.MaintenanceLoop` that
  re-syncs, pre-warms and evicts between request bursts.
* ``python -m repro.serving.warm`` — deprecated compatibility shim over
  ``python -m repro warm``.
"""

from repro.serving.store import IndexStore, STORE_FORMAT_VERSION
from repro.serving.service import QueryService
from repro.serving.events import EventLog, latency_summary, read_events
from repro.serving.maintenance import ActivityGate, MaintenanceLoop
from repro.serving.server import DiscoveryServer, run_server

__all__ = [
    "IndexStore",
    "QueryService",
    "STORE_FORMAT_VERSION",
    "EventLog",
    "latency_summary",
    "read_events",
    "ActivityGate",
    "MaintenanceLoop",
    "DiscoveryServer",
    "run_server",
]
