"""Parallel multi-query search serving with a bounded LRU result cache.

:class:`QueryService` wraps one indexed
:class:`~repro.search.base.TableUnionSearcher` and serves multi-query
workloads:

* **Parallelism** — :meth:`search_many` partitions the queries into chunks
  and scores the chunks concurrently.  The default (``parallelism="auto"``)
  uses forked worker *processes* where the platform supports it: table
  scoring is Python-loop-heavy, so threads would serialize on the GIL, while
  forked children inherit the built index for free (no pickling, no rebuild)
  and return only the small ranked-result lists.  Results always come back in
  input order, and each query runs the exact same single-query code path as
  :meth:`TableUnionSearcher.search`, so served rankings are bit-identical to
  direct in-process search.  The executor selection, probe gating and forked
  mapping live in :mod:`repro.utils.parallel`, shared with the sharded index
  builder.
* **Caching** — results are memoised in a bounded LRU keyed by
  ``(backend config fingerprint, lake fingerprint, query fingerprint, k)``.
  The key is pure content, so repeated queries — within a run or across
  :meth:`warm` cycles on the same lake — are served from memory.
* **Persistence** — give the service an
  :class:`~repro.serving.store.IndexStore` and :meth:`warm` restores the
  lake's index from disk instead of rebuilding it (building and persisting on
  first contact, delta-updating the closest prior snapshot when the lake's
  content moved).
* **Mutation** — when the warmed lake mutates in place
  (``add_table``/``remove_table``/``replace_table``), :meth:`refresh` applies
  the delta to the index, re-persists it and drops the now-stale result
  cache; until then queries keep serving the previously indexed content.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.base import SearchResult, TableUnionSearcher
from repro.serving.store import IndexStore
from repro.utils.errors import SearchError, ServingError
from repro.utils.parallel import (
    default_worker_count,
    parallel_map,
    probe_gate,
    resolve_parallelism,
)

#: Cache key: (backend config fingerprint, lake fingerprint, query fingerprint, k).
CacheKey = tuple[str, str, str, int]


class QueryService:
    """Serves top-k searches for one backend with caching and parallelism."""

    def __init__(
        self,
        searcher: TableUnionSearcher,
        *,
        store: IndexStore | None = None,
        max_workers: int | None = None,
        chunk_size: int = 8,
        cache_size: int = 1024,
        parallelism: str = "auto",
        parallel_min_seconds: float = 1.0,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ServingError(f"max_workers must be positive, got {max_workers}")
        if chunk_size <= 0:
            raise ServingError(f"chunk_size must be positive, got {chunk_size}")
        if cache_size < 0:
            raise ServingError(f"cache_size must be non-negative, got {cache_size}")
        if parallel_min_seconds < 0:
            raise ServingError(
                f"parallel_min_seconds must be non-negative, got {parallel_min_seconds}"
            )
        if parallelism not in ("auto", "process", "thread", "serial"):
            raise ServingError(
                f"parallelism must be auto/process/thread/serial, got {parallelism!r}"
            )
        self.searcher = searcher
        self.store = store
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.cache_size = cache_size
        self.parallel_min_seconds = parallel_min_seconds
        self.parallelism = resolve_parallelism(parallelism)
        self._cache: OrderedDict[CacheKey, list[SearchResult]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._lake_fingerprint = (
            searcher.lake.fingerprint() if searcher.is_indexed else None
        )

    # ------------------------------------------------------------------ warm
    def warm(self, lake: DataLake) -> "QueryService":
        """Index ``lake`` (through the store when one is configured).

        With a store, the lake's persisted index is loaded when present and
        built + persisted otherwise; without one the searcher indexes
        in-process.  Searchers that manage their own persistence (a
        :class:`~repro.search.sharded.ShardedSearcher` with per-shard store
        entries) index themselves — wrapping them in one monolithic store
        entry would defeat their per-shard storage.  Warming onto a
        different lake resets the result cache.
        """
        if self.store is not None and not self.searcher.manages_own_persistence:
            self.store.load_or_build(self.searcher, lake)
        else:
            self.searcher.index(lake)
        fingerprint = lake.fingerprint()
        with self._lock:
            if fingerprint != self._lake_fingerprint:
                self._cache.clear()
            self._lake_fingerprint = fingerprint
        return self

    @property
    def is_warm(self) -> bool:
        """Whether the underlying searcher holds a lake index."""
        return self.searcher.is_indexed

    # --------------------------------------------------------------- refresh
    def refresh(self) -> "QueryService":
        """Re-synchronise with the warmed lake after it mutated in place.

        The searcher applies the net content delta incrementally
        (:meth:`~repro.search.base.TableUnionSearcher.refresh` — a rebuild
        only where a backend cannot apply it), the updated index is persisted
        over the store when one is configured, and the result cache is
        dropped: every cached ranking was computed against the previous lake
        content, and serving it against the new fingerprint would be a silent
        staleness bug.  A no-op when the lake content is unchanged, so it is
        safe (and cheap) to call defensively before serving a batch.

        Until ``refresh()`` is called, queries keep being served — and
        cached — against the *previously indexed* content, which is the
        documented consistency model: mutations become visible at refresh
        points, never mid-workload.
        """
        if not self.searcher.is_indexed:
            raise ServingError("QueryService.refresh() called before warm()")
        lake = self.searcher.lake
        fingerprint = lake.fingerprint()
        if fingerprint == self._lake_fingerprint:
            return self
        self.searcher.refresh()
        # Swap the cache/fingerprint *before* persistence: if store.save
        # fails (full disk, permissions), the in-memory service must already
        # be consistent with the updated index — otherwise later searches
        # would key into the stale cache with the old fingerprint and serve
        # mixed-era rankings.
        with self._lock:
            self._cache.clear()
            self._lake_fingerprint = fingerprint
        if self.store is not None and not self.searcher.manages_own_persistence:
            try:
                self.store.save(self.searcher, lake)
            except SearchError:
                pass  # backends without index_state() still serve in-process
        return self

    # ----------------------------------------------------------------- search
    def _key(self, query_table: Table, k: int) -> CacheKey:
        if self._lake_fingerprint is None:
            raise ServingError("QueryService used before warm()/an indexed searcher")
        # The backend fingerprint is read live, not captured at construction:
        # wrappers like CascadeSearcher fold their own configuration (mode,
        # budget, margin) into config_fingerprint(), and two cascade configs
        # over the same backend+lake must never share cached rankings.
        return (
            self.searcher.config_fingerprint(),
            self._lake_fingerprint,
            query_table.content_fingerprint(),
            int(k),
        )

    def _cache_put(self, key: CacheKey, results: list[SearchResult]) -> None:
        """Record a miss and insert into the bounded LRU.  Caller holds the lock."""
        self._misses += 1
        if self.cache_size > 0:
            self._cache[key] = list(results)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def search(self, query_table: Table, k: int) -> list[SearchResult]:
        """Top-k search for one query, served from the LRU cache when possible."""
        key = self._key(query_table, k)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return list(cached)
        results = self.searcher.search(query_table, k)
        with self._lock:
            self._cache_put(key, results)
        return list(results)

    def search_many(
        self, query_tables: Sequence[Table], k: int
    ) -> list[list[SearchResult]]:
        """Top-k search for every query, in parallel, in input order.

        Queries are chunked (``chunk_size`` per task) so small workloads do
        not pay one dispatch per query; results are reassembled in submission
        order, so ``search_many(queries, k)[i]`` always equals
        ``search(queries[i], k)``.  Cached queries are answered up front and
        only the misses are dispatched to workers; every worker result is
        written back to the cache.  One probe query is always served
        in-process first — when the estimated remaining work is below
        ``parallel_min_seconds`` the whole workload stays in-process, so tiny
        workloads never pay worker startup.
        """
        queries = list(query_tables)
        if not queries:
            return []
        workers = default_worker_count(len(queries), max_workers=self.max_workers)

        def finalize(
            answers: list[list[SearchResult] | None],
        ) -> list[list[SearchResult]]:
            assert all(answer is not None for answer in answers)
            return answers  # type: ignore[return-value]

        # Serve cache hits immediately; collect the misses for the workers.
        answers: list[list[SearchResult] | None] = [None] * len(queries)
        pending: list[int] = []
        with self._lock:
            for position, query in enumerate(queries):
                cached = self._cache.get(self._key(query, k))
                if cached is not None:
                    self._cache.move_to_end(self._key(query, k))
                    self._hits += 1
                    answers[position] = list(cached)
                else:
                    pending.append(position)

        if (
            workers <= 1
            or len(pending) <= 1
            or self.parallelism == "serial"
        ):
            for position in pending:
                answers[position] = self.search(queries[position], k)
            return finalize(answers)

        # Probe (shared heuristic: repro.utils.parallel.probe_gate): serve the
        # first misses in-process to estimate the per-query cost, and skip
        # the fan-out entirely when the remaining work would not amortise
        # worker startup (fork + copy-on-write for processes, GIL contention
        # for threads).
        pending, fan_out = probe_gate(
            pending,
            lambda position: answers.__setitem__(
                position, self.search(queries[position], k)
            ),
            min_seconds=self.parallel_min_seconds,
        )
        if not fan_out:
            for position in pending:
                answers[position] = self.search(queries[position], k)
            return finalize(answers)

        # Cap the chunk size so the pending work spreads over all workers
        # even when the configured chunk size is coarse.
        per_worker = -(-len(pending) // workers)  # ceil division
        effective_chunk = max(1, min(self.chunk_size, per_worker))
        chunks = [
            pending[start : start + effective_chunk]
            for start in range(0, len(pending), effective_chunk)
        ]

        def serve_chunk(chunk: list[int]) -> list[list[SearchResult]]:
            # Forked workers inherit the built index through parallel_map's
            # fork payload (no pickling, no rebuild); the thread fallback
            # shares it directly.  Either way each query runs the exact
            # single-query code path, so rankings stay bit-identical.
            return [self.searcher.search(queries[position], k) for position in chunk]

        chunk_results = parallel_map(
            serve_chunk, chunks, mode=self.parallelism, workers=workers
        )

        with self._lock:
            for chunk, results in zip(chunks, chunk_results):
                for position, result in zip(chunk, results):
                    answers[position] = list(result)
                    self._cache_put(self._key(queries[position], k), result)
        return finalize(answers)

    def search_tables(self, query_table: Table, k: int) -> list[Table]:
        """Like :meth:`search` but returning the lake tables themselves."""
        return [
            self.searcher.lake.get(result.table_name)
            for result in self.search(query_table, k)
        ]

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the result cache and detach the store handle.

        Worker pools are created per :meth:`search_many` call and already
        torn down when it returns, so closing is cheap: the LRU is dropped
        (its cached rankings can pin large result lists), the store handle
        is detached, and the service refuses further queries by behaving as
        if it was never warmed.  Double-close is a no-op.
        """
        with self._lock:
            self._cache.clear()
            self._lake_fingerprint = None
        self.store = None

    # ------------------------------------------------------------------ stats
    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters and current cache size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
            }
