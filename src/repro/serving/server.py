"""The resident discovery server: ``python -m repro serve``.

Everything before this module was one-shot — a process builds or loads
indexes, answers a workload, and exits.  :class:`DiscoveryServer` keeps a
:class:`~repro.api.facade.Discovery` deployment resident and serves a
versioned HTTP/JSON API off the standard library's ``ThreadingHTTPServer``
(no new dependencies):

===================  ====================================================
``GET /v1/health``   liveness + uptime
``GET /v1/info``     :meth:`Discovery.info` plus the server's own block
``GET /v1/metrics``  served/rejected/error counters, in-flight gauge,
                     latency p50/p95 over the event tail, result-cache
                     hit rates, maintenance-loop stats
``POST /v1/search``  one Algorithm-1 run; the response body is the
                     :func:`~repro.api.schema.dump_result` serialization
                     of :meth:`ResultSet.to_dict` — byte-identical to the
                     ``search`` CLI output for the same query
``POST /v1/refresh`` run one maintenance cycle now (eager re-sync)
===================  ====================================================

Three mechanisms keep heavy concurrent traffic honest:

* **Admission control** — a bounded semaphore caps in-flight searches;
  a request that cannot acquire a slot within the queue timeout is
  rejected with ``503`` and a ``Retry-After`` header instead of piling
  onto an overloaded deployment.
* **Latency events** — every answered (or rejected) search appends one
  event to an :class:`~repro.serving.events.EventLog`; ``/v1/metrics``
  and the concurrency benchmark summarise percentiles from it, and the
  maintenance loop pre-warms the result cache from its tail.
* **Background maintenance** — a :class:`~repro.serving.maintenance.MaintenanceLoop`
  thread runs between request bursts (the :class:`ActivityGate` pauses it
  around queries), eagerly re-syncing drifted indexes from lake deltas,
  re-warming the LRU, and evicting cold store entries.

The query side of the versioned API accepts three body shapes::

    {"query_index": 0, "k": 5}                  # registered benchmark query
    {"query_name": "lake_table_3"}              # registered query or lake table
    {"query_table": {"name": ..., "columns": [...], "rows": [[...]]}}

``table_from_payload`` rebuilds the inline form, so a wire client can ask
about tables the server has never seen.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.api.schema import RESULT_SCHEMA_VERSION, dump_result
from repro.datalake.io import table_from_payload
from repro.datalake.table import Table
from repro.serving.events import EventLog, latency_summary
from repro.serving.maintenance import ActivityGate, MaintenanceLoop
from repro.utils.errors import ReproError, ServingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> serving)
    from repro.api.config import DiscoveryConfig
    from repro.api.facade import Discovery
    from repro.datalake.lake import DataLake

#: The versioned wire surface; ``/v1/info`` advertises it so clients can
#: discover capabilities instead of hard-coding paths.
ENDPOINTS: dict[str, tuple[str, ...]] = {
    "GET": ("/v1/health", "/v1/info", "/v1/metrics"),
    "POST": ("/v1/search", "/v1/refresh", "/v1/ingest"),
}


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, indent=2, sort_keys=True, default=str).encode("utf-8")


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP layer: routing, body parsing, response framing.

    All endpoint logic lives on :class:`DiscoveryServer` (``self.server``)
    so it can be unit-tested without sockets.
    """

    server: "DiscoveryServer"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a resident server
    # records structured events instead.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(
        self, status: int, body: bytes, headers: Mapping[str, str] | None = None
    ) -> None:
        # One request per connection keeps handler threads from lingering on
        # keep-alive sockets after shutdown.
        self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> str:
        path = self.path.split("?", 1)[0]
        return path.rstrip("/") or "/"

    def _not_found(self, path: str) -> None:
        self._respond(
            404, _json_bytes({"error": f"unknown path {path!r}", "endpoints": ENDPOINTS})
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self._route()
        routes = {
            "/v1/health": self.server.api_health,
            "/v1/info": self.server.api_info,
            "/v1/metrics": self.server.api_metrics,
        }
        handler = routes.get(path)
        if handler is None:
            self._not_found(path)
            return
        try:
            self._respond(200, _json_bytes(handler()))
        except ReproError as exc:
            self.server._bump("errors")
            self._respond(400, _json_bytes({"error": str(exc)}))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self._route()
        if path not in ENDPOINTS["POST"]:
            self._not_found(path)
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            self.server._bump("errors")
            self._respond(400, _json_bytes({"error": "request body is not valid JSON"}))
            return
        if path == "/v1/search":
            status, headers, body = self.server.api_search(payload)
            self._respond(status, body, headers)
            return
        routes = {
            "/v1/refresh": lambda: self.server.api_refresh(),
            "/v1/ingest": lambda: self.server.api_ingest(payload),
        }
        try:
            self._respond(200, _json_bytes(routes[path]()))
        except ReproError as exc:
            self.server._bump("errors")
            self._respond(400, _json_bytes({"error": str(exc)}))


class DiscoveryServer(ThreadingHTTPServer):
    """A resident :class:`~repro.api.facade.Discovery` deployment over HTTP.

    Parameters mirror the config's ``server`` section (see
    :data:`repro.api.config._SERVER_DEFAULTS`); :meth:`from_config` maps the
    section automatically.  ``port=0`` binds an ephemeral port — read the
    bound address back from :attr:`url`.

    ``queries`` registers named query tables (typically a benchmark's) that
    wire clients can reference by ``query_index``/``query_name`` without
    shipping table content, and that the maintenance loop resolves when
    pre-warming from the event tail.

    The server is a context manager::

        with DiscoveryServer(discovery, port=0) as server:
            body = urllib.request.urlopen(server.url + "/v1/health").read()
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        discovery: "Discovery",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 4,
        queue_timeout_seconds: float = 1.0,
        retry_after_seconds: float = 1.0,
        event_log: "EventLog | str | None" = None,
        queries: Sequence[Table] | None = None,
        maintenance: bool = True,
        maintenance_interval_seconds: float = 1.0,
        maintenance_idle_seconds: float = 0.5,
        prewarm_queries: int = 8,
        owns_discovery: bool = False,
    ) -> None:
        if not isinstance(max_inflight, int) or max_inflight < 1:
            raise ServingError(
                f"max_inflight must be a positive integer, got {max_inflight!r}"
            )
        self.discovery = discovery
        self._owns_discovery = owns_discovery
        self.gate = ActivityGate()
        if isinstance(event_log, EventLog):
            self.events = event_log
            self._owns_events = False
        else:
            self.events = EventLog(event_log)
            self._owns_events = True
        queries = list(queries or [])
        self._query_order: list[str] = [table.name for table in queries]
        self._queries: dict[str, Table] = {table.name: table for table in queries}
        self.max_inflight = max_inflight
        self.queue_timeout_seconds = float(queue_timeout_seconds)
        self.retry_after_seconds = float(retry_after_seconds)
        self._admission = threading.BoundedSemaphore(max_inflight)
        self._state_lock = threading.Lock()
        self._counters = {"served": 0, "rejected": 0, "errors": 0}
        self._inflight = 0
        #: Serializes lazy first-builds of alternate backends: the facade's
        #: per-backend construction is not safe under concurrent first
        #: queries, and once built this lock guards a dict lookup only.
        self._ensure_lock = threading.Lock()
        #: The deployment's streaming write path, bound to this server's
        #: gate so applied micro-batches exclude in-flight queries.
        self.ingest = discovery.ingest(gate=self.gate)
        self.maintenance = MaintenanceLoop(
            discovery,
            gate=self.gate,
            interval_seconds=maintenance_interval_seconds,
            idle_seconds=maintenance_idle_seconds,
            event_log=self.events,
            resolve_query=self.resolve_query,
            prewarm_queries=prewarm_queries,
            store=discovery.store,
            ingest=self.ingest,
        )
        self.maintenance_enabled = bool(maintenance)
        self._serve_thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._stopped = False
        super().__init__((host, int(port)), _RequestHandler)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_config(
        cls,
        config: "DiscoveryConfig | Mapping[str, Any] | str | None",
        lake: "DataLake",
        *,
        queries: Sequence[Table] | None = None,
        **overrides: Any,
    ) -> "DiscoveryServer":
        """Build, attach and wrap a deployment per the config's ``server`` section.

        ``overrides`` (CLI flags: ``host``, ``port``, ``event_log``, ...)
        take precedence over the section; ``None`` values are ignored so
        unset flags fall through.  The server owns the facade it builds and
        closes it on :meth:`stop`.
        """
        from repro.api.config import _SERVER_DEFAULTS
        from repro.api.facade import Discovery

        discovery = Discovery.from_config(config).attach(lake)
        section = dict(_SERVER_DEFAULTS)
        if discovery.config.server is not None:
            section.update(discovery.config.server)
        section.update(
            {key: value for key, value in overrides.items() if value is not None}
        )
        return cls(
            discovery,
            host=section["host"],
            port=section["port"],
            max_inflight=section["max_inflight"],
            queue_timeout_seconds=section["queue_timeout_seconds"],
            retry_after_seconds=section["retry_after_seconds"],
            event_log=section["event_log"],
            queries=queries,
            maintenance=section["maintenance"],
            maintenance_interval_seconds=section["maintenance_interval_seconds"],
            maintenance_idle_seconds=section["maintenance_idle_seconds"],
            prewarm_queries=section["prewarm_queries"],
            owns_discovery=True,
        )

    # -------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        """``http://host:port`` of the bound socket (real port for port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DiscoveryServer":
        """Serve in a background thread; start maintenance when enabled."""
        if self._serve_thread is not None:
            raise ServingError("DiscoveryServer is already started")
        if self._stopped:
            raise ServingError("DiscoveryServer is stopped; build a new one")
        self._started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        if self.maintenance_enabled:
            self.maintenance.start()
        return self

    def stop(self) -> None:
        """Stop serving, join threads, release owned resources; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self.maintenance.running:
            self.maintenance.stop()
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.server_close()
        if self._owns_events:
            self.events.close()
        if self._owns_discovery:
            self.discovery.close()

    def __enter__(self) -> "DiscoveryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # ----------------------------------------------------------------- helpers
    def _bump(self, key: str, amount: int = 1) -> None:
        with self._state_lock:
            self._counters[key] += amount

    def resolve_query(self, name: str) -> Table | None:
        """A registered query table or lake table by name; None when unknown."""
        table = self._queries.get(name)
        if table is not None:
            return table
        try:
            return self.discovery.lake.get(name)
        except ReproError:
            return None

    def _parse_search(self, payload: Any) -> tuple[Table, int | None, str | None]:
        if not isinstance(payload, Mapping):
            raise ServingError(
                f"search body must be a JSON object, got {type(payload).__name__}"
            )
        k = payload.get("k")
        if k is not None:
            if not isinstance(k, int) or isinstance(k, bool):
                raise ServingError(f"k must be an integer, got {k!r}")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ServingError(f"backend must be a string, got {backend!r}")
        if "query_table" in payload:
            table = table_from_payload(payload["query_table"])
        elif "query_name" in payload:
            name = str(payload["query_name"])
            resolved = self.resolve_query(name)
            if resolved is None:
                raise ServingError(
                    f"unknown query table {name!r}: not a registered query "
                    "and not in the attached lake"
                )
            table = resolved
        elif "query_index" in payload:
            index = payload["query_index"]
            if not isinstance(index, int) or not 0 <= index < len(self._query_order):
                raise ServingError(
                    f"query_index {index!r} out of range; server has "
                    f"{len(self._query_order)} registered query tables"
                )
            table = self._queries[self._query_order[index]]
        else:
            raise ServingError(
                "search body needs one of query_table, query_name, query_index"
            )
        return table, k, backend

    # --------------------------------------------------------------- endpoints
    def api_health(self) -> dict[str, Any]:
        return {"status": "ok", "uptime_seconds": self.uptime_seconds()}

    def api_info(self) -> dict[str, Any]:
        info = self.discovery.info()
        info["server"] = {
            "url": self.url,
            "result_schema_version": RESULT_SCHEMA_VERSION,
            "endpoints": {method: list(paths) for method, paths in ENDPOINTS.items()},
            "max_inflight": self.max_inflight,
            "queue_timeout_seconds": self.queue_timeout_seconds,
            "maintenance": self.maintenance_enabled,
            "queries": list(self._query_order),
        }
        return info

    def api_metrics(self) -> dict[str, Any]:
        with self._state_lock:
            counters = dict(self._counters)
            inflight = self._inflight
        return {
            "uptime_seconds": self.uptime_seconds(),
            "counters": {**counters, "inflight": inflight},
            "events_logged": len(self.events),
            "latency": latency_summary(self.events.tail()),
            "cache": self.discovery.service_stats(),
            "maintenance": self.maintenance.stats,
            "lake": self.discovery.lake_health(),
            "ingest": self.ingest.stats,
        }

    def api_refresh(self) -> dict[str, Any]:
        """Run one maintenance cycle on demand (eager re-sync after mutation).

        Runs in the calling request thread *without* holding the gate active
        — the cycle itself acquires the gate exclusively around the index
        re-sync, so a refresh issued under live traffic either drains and
        applies the delta or yields (``"yielded": 1``) for a later cycle.
        """
        return {
            "refresh": self.maintenance.run_cycle(),
            "maintenance": self.maintenance.stats,
        }

    def api_ingest(self, payload: Any) -> dict[str, Any]:
        """Accept a batch of mutation events into the streaming write path.

        Body shape::

            {"events": [{"op": "add"|"replace"|"remove", "name": ...,
                         "table": {...}}, ...],
             "flush": false}

        Events are netted into the ingest queue; with ``"flush": true`` all
        pending micro-batches are applied before responding (the CLI sets it
        on its final chunk), otherwise batches land when a bound trips —
        applied by this request if one is already due, else by the
        maintenance loop.  The response reports what happened *now*; pending
        events are durable in the queue either way.
        """
        if not isinstance(payload, Mapping):
            raise ServingError(
                f"ingest body must be a JSON object, got {type(payload).__name__}"
            )
        raw_events = payload.get("events")
        if not isinstance(raw_events, list):
            raise ServingError("ingest body needs an 'events' list")
        flush = payload.get("flush", False)
        if not isinstance(flush, bool):
            raise ServingError(f"ingest 'flush' must be a boolean, got {flush!r}")
        from repro.ingest.events import event_from_payload

        events = [event_from_payload(item) for item in raw_events]
        accepted = self.ingest.submit_many(events)
        reports = self.ingest.flush() if flush else self.ingest.flush_if_due()
        return {
            "received": len(events),
            "accepted": accepted,
            "pending_events": self.ingest.pending_events,
            "pending_bytes": self.ingest.pending_bytes,
            "flushed": bool(reports),
            "batches_applied": len(reports),
            "events_applied": sum(report["events"] for report in reports),
            "lake_version": self.discovery.lake.version,
        }

    def api_search(self, payload: Any) -> tuple[int, dict[str, str], bytes]:
        """Admission-controlled Algorithm-1 run; returns (status, headers, body)."""
        if not self._admission.acquire(timeout=self.queue_timeout_seconds):
            self._bump("rejected")
            self.events.append(kind="search", status="rejected")
            body = _json_bytes(
                {
                    "error": (
                        f"server saturated: {self.max_inflight} queries in "
                        f"flight and none finished within "
                        f"{self.queue_timeout_seconds}s"
                    ),
                    "retry_after_seconds": self.retry_after_seconds,
                }
            )
            return 503, {"Retry-After": f"{self.retry_after_seconds:g}"}, body
        with self._state_lock:
            self._inflight += 1
        try:
            start = time.perf_counter()
            table, k, backend = self._parse_search(payload)
            with self.gate.active():
                with self._ensure_lock:
                    self.discovery.searcher(backend)
                result = self.discovery.run(table, k=k, backend=backend)
            latency = time.perf_counter() - start
            self._bump("served")
            self.events.append(
                kind="search",
                status="ok",
                query=table.name,
                backend=backend,
                k=k,
                latency_seconds=latency,
            )
            return 200, {}, dump_result(result.to_dict()).encode("utf-8")
        except ReproError as exc:
            self._bump("errors")
            self.events.append(kind="search", status="error", error=str(exc))
            return 400, {}, _json_bytes({"error": str(exc)})
        finally:
            with self._state_lock:
                self._inflight -= 1
            self._admission.release()


def run_server(server: DiscoveryServer, *, stream=None) -> int:
    """Serve until SIGTERM/SIGINT; the CLI's blocking entry point.

    Prints a machine-parseable readiness line (``SERVING http://host:port``)
    once the socket is bound — the CI smoke script and the concurrency
    benchmark read it to discover the ephemeral port.  Returns 0 on a clean
    signal-initiated shutdown.
    """
    stream = stream if stream is not None else sys.stdout
    stop = threading.Event()

    def _handle_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, _handle_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    server.start()
    print(f"SERVING {server.url}", file=stream, flush=True)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.stop()
    return 0
