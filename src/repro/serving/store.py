"""Persistent, checksum-validated storage for built search indexes.

Every :class:`~repro.search.base.TableUnionSearcher` can dump its built index
as a JSON metadata dict plus named numpy arrays (``index_state()``) and
restore it without touching the lake's cell values (``load_index_state()``).
:class:`IndexStore` persists those dumps on disk so a data lake is indexed
once and reused across runs *and* processes:

```
<root>/
  <Backend>-<config_fp12>/          one directory per (class, config, format)
    <lake_fp16>/                    one entry per lake content fingerprint
      state.json                    JSON metadata payload
      arrays.npz                    numpy payloads
      manifest.json                 versions, fingerprints, payload checksums
```

The manifest is written last, so a crashed save never produces a loadable
entry; both payload files are checksum-validated on load and any mismatch is
reported as corruption rather than silently served.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.datalake.lake import DataLake
from repro.search.base import TableUnionSearcher
from repro.utils.errors import IndexStoreMiss, SearchError, ServingError

#: Bump when the on-disk layout of store entries changes.
STORE_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_STATE = "state.json"
_ARRAYS = "arrays.npz"


def _file_checksum(path: Path) -> str:
    hasher = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class IndexStore:
    """A directory of persisted search indexes keyed by backend and lake."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- addressing
    def entry_dir(self, searcher: TableUnionSearcher, lake: DataLake) -> Path:
        """Directory holding the persisted index of ``searcher`` over ``lake``."""
        backend = f"{type(searcher).__name__}-{searcher.config_fingerprint()[:12]}"
        return self.root / backend / lake.fingerprint()[:16]

    def contains(self, searcher: TableUnionSearcher, lake: DataLake) -> bool:
        """Whether a completed entry exists (no payload validation)."""
        return (self.entry_dir(searcher, lake) / _MANIFEST).is_file()

    # ------------------------------------------------------------------- save
    def save(
        self, searcher: TableUnionSearcher, lake: DataLake | None = None
    ) -> Path:
        """Persist ``searcher``'s built index; returns the entry directory.

        Payload files are written first and the manifest last, so concurrent
        or crashed writers can never leave a manifest pointing at missing
        payloads.  Saving over an existing entry replaces it.
        """
        lake = lake if lake is not None else searcher.lake
        state, arrays = searcher.index_state()
        entry = self.entry_dir(searcher, lake)
        entry.mkdir(parents=True, exist_ok=True)

        manifest_path = entry / _MANIFEST
        if manifest_path.exists():  # invalidate the old entry while replacing
            manifest_path.unlink()

        state_path, arrays_path = entry / _STATE, entry / _ARRAYS
        state_path.write_text(json.dumps(state, sort_keys=True))
        with arrays_path.open("wb") as handle:
            np.savez(handle, **arrays)

        manifest = {
            "store_format": STORE_FORMAT_VERSION,
            "backend_class": type(searcher).__name__,
            "backend_config": searcher.config_state(),
            "config_fingerprint": searcher.config_fingerprint(),
            "index_format": searcher.INDEX_FORMAT_VERSION,
            "lake_fingerprint": lake.fingerprint(),
            "num_tables": lake.num_tables,
            "checksums": {
                _STATE: _file_checksum(state_path),
                _ARRAYS: _file_checksum(arrays_path),
            },
        }
        tmp_path = entry / f"{_MANIFEST}.tmp"
        tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp_path, manifest_path)
        return entry

    # ------------------------------------------------------------------- load
    def load(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore ``searcher``'s index over ``lake`` from the store.

        Raises :class:`IndexStoreMiss` when no entry exists (or the entry was
        written for a different format/config/lake) and :class:`ServingError`
        when an entry exists but fails checksum validation.
        """
        entry = self.entry_dir(searcher, lake)
        manifest_path = entry / _MANIFEST
        if not manifest_path.is_file():
            raise IndexStoreMiss(
                f"no persisted {type(searcher).__name__} index for lake "
                f"{lake.name!r} under {self.root}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(f"unreadable index manifest {manifest_path}") from exc

        if manifest.get("store_format") != STORE_FORMAT_VERSION:
            raise IndexStoreMiss(
                f"index entry {entry} uses store format "
                f"{manifest.get('store_format')}, expected {STORE_FORMAT_VERSION}"
            )
        if manifest.get("config_fingerprint") != searcher.config_fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built with a different "
                f"{type(searcher).__name__} configuration"
            )
        if manifest.get("lake_fingerprint") != lake.fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built for different lake contents"
            )

        for filename, expected in manifest.get("checksums", {}).items():
            payload = entry / filename
            if not payload.is_file() or _file_checksum(payload) != expected:
                raise ServingError(
                    f"persisted index payload {payload} is missing or corrupt "
                    "(checksum mismatch)"
                )

        state = json.loads((entry / _STATE).read_text())
        with np.load(entry / _ARRAYS) as payload:
            arrays = {key: payload[key] for key in payload.files}
        try:
            searcher.load_index_state(lake, state, arrays)
        except Exception as exc:
            # Checksums passed but the payloads are mutually inconsistent
            # (e.g. a layout change without an INDEX_FORMAT_VERSION bump).
            # Surface it as corruption so load_or_build rebuilds the entry.
            raise ServingError(
                f"persisted index entry {entry} failed to deserialize: {exc}"
            ) from exc
        return searcher

    def load_or_build(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore from the store when possible, otherwise build and persist.

        Misses *and* corrupt entries fall back to a fresh build whose result
        overwrites the bad entry, so a damaged store heals on next use.
        """
        try:
            return self.load(searcher, lake)
        except ServingError:  # miss or corruption
            searcher.index(lake)
            try:
                self.save(searcher, lake)
            except SearchError:
                pass  # a backend without index_state() still serves in-process
            return searcher
