"""Persistent, checksum-validated storage for built search indexes.

Every :class:`~repro.search.base.TableUnionSearcher` can dump its built index
as a JSON metadata dict plus named numpy arrays (``index_state()``) and
restore it without touching the lake's cell values (``load_index_state()``).
:class:`IndexStore` persists those dumps on disk so a data lake is indexed
once and reused across runs *and* processes:

```
<root>/
  <Backend>-<config_fp12>/          one directory per (class, config, format)
    <lake_fp16>/                    one entry per lake content fingerprint
      state.json                    JSON metadata payload
      arrays.npz                    numpy payloads
      manifest.json                 versions, fingerprints, payload checksums
```

The manifest is written last, so a crashed save never produces a loadable
entry; both payload files are checksum-validated on load and any mismatch is
reported as corruption rather than silently served.

Each manifest also records the lake's per-table content fingerprints, which
makes the store **delta-aware**: when a mutated lake misses every entry,
:meth:`IndexStore.load_or_build` finds the prior snapshot with the smallest
table diff, loads it, applies the diff through
:meth:`~repro.search.base.TableUnionSearcher.update_index` and persists the
result as a new entry — bit-identical to a rebuild, at the cost of indexing
only the changed tables.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.datalake.lake import DataLake
from repro.search.base import TableUnionSearcher
from repro.utils.errors import IndexStoreMiss, SearchError, ServingError

#: Bump when the on-disk layout of store entries changes.  (The
#: ``table_fingerprints`` manifest field is additive: entries written without
#: it still load exactly, they just cannot anchor delta updates.)
STORE_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_STATE = "state.json"
_ARRAYS = "arrays.npz"


def _file_checksum(path: Path) -> str:
    hasher = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class IndexStore:
    """A directory of persisted search indexes keyed by backend and lake.

    ``max_delta_fraction`` bounds when :meth:`load_or_build` prefers updating
    a prior snapshot over rebuilding: a delta is applied only when it touches
    at most that fraction of the lake's tables (beyond it, a rebuild tends to
    be as cheap and keeps the store from chaining long delta lineages).

    ``max_entries_per_backend`` bounds disk growth under continuous lake
    mutation: every refresh persists a full entry for the new lake content,
    so without a bound a long-lived deployment would accumulate one snapshot
    per content version forever.  :meth:`save` evicts the oldest superseded
    entries of the same backend beyond the bound (``None`` disables eviction).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_delta_fraction: float = 0.5,
        max_entries_per_backend: int | None = 8,
    ) -> None:
        if not 0.0 <= max_delta_fraction <= 1.0:
            raise ServingError(
                f"max_delta_fraction must be in [0, 1], got {max_delta_fraction}"
            )
        if max_entries_per_backend is not None and max_entries_per_backend < 1:
            raise ServingError(
                f"max_entries_per_backend must be >= 1 or None, "
                f"got {max_entries_per_backend}"
            )
        self.root = Path(root)
        self.max_delta_fraction = max_delta_fraction
        self.max_entries_per_backend = max_entries_per_backend

    # ------------------------------------------------------------- addressing
    def backend_dir(self, searcher: TableUnionSearcher) -> Path:
        """Directory holding every persisted lake entry of one backend config."""
        return self.root / f"{type(searcher).__name__}-{searcher.config_fingerprint()[:12]}"

    def entry_dir(self, searcher: TableUnionSearcher, lake: DataLake) -> Path:
        """Directory holding the persisted index of ``searcher`` over ``lake``."""
        return self.backend_dir(searcher) / lake.fingerprint()[:16]

    def contains(self, searcher: TableUnionSearcher, lake: DataLake) -> bool:
        """Whether a completed entry exists (no payload validation)."""
        return (self.entry_dir(searcher, lake) / _MANIFEST).is_file()

    # ------------------------------------------------------------------- save
    def save(
        self, searcher: TableUnionSearcher, lake: DataLake | None = None
    ) -> Path:
        """Persist ``searcher``'s built index; returns the entry directory.

        Payload files are written first and the manifest last, so concurrent
        or crashed writers can never leave a manifest pointing at missing
        payloads.  Saving over an existing entry replaces it.
        """
        lake = lake if lake is not None else searcher.lake
        state, arrays = searcher.index_state()
        entry = self.entry_dir(searcher, lake)
        entry.mkdir(parents=True, exist_ok=True)

        manifest_path = entry / _MANIFEST
        if manifest_path.exists():  # invalidate the old entry while replacing
            manifest_path.unlink()

        state_path, arrays_path = entry / _STATE, entry / _ARRAYS
        state_path.write_text(json.dumps(state, sort_keys=True))
        with arrays_path.open("wb") as handle:
            np.savez(handle, **arrays)

        manifest = {
            "store_format": STORE_FORMAT_VERSION,
            "backend_class": type(searcher).__name__,
            "backend_config": searcher.config_state(),
            "config_fingerprint": searcher.config_fingerprint(),
            "index_format": searcher.INDEX_FORMAT_VERSION,
            "lake_fingerprint": lake.fingerprint(),
            "table_fingerprints": lake.table_fingerprints(),
            "num_tables": lake.num_tables,
            "checksums": {
                _STATE: _file_checksum(state_path),
                _ARRAYS: _file_checksum(arrays_path),
            },
        }
        tmp_path = entry / f"{_MANIFEST}.tmp"
        tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp_path, manifest_path)
        self._evict_superseded(entry)
        return entry

    def _evict_superseded(self, latest_entry: Path) -> None:
        """Keep the newest ``max_entries_per_backend`` entries of one backend.

        Called after every save so a continuously mutating lake cannot grow
        the store without bound — superseded lake-content snapshots beyond
        the bound are removed oldest-first (by manifest mtime), never the
        entry just written.  Best-effort: eviction failures are ignored so a
        read-only race never breaks a save.
        """
        if self.max_entries_per_backend is None:
            return
        aged: list[tuple[float, Path]] = []
        for manifest_path in latest_entry.parent.glob(f"*/{_MANIFEST}"):
            if manifest_path.parent == latest_entry:
                continue
            try:
                aged.append((manifest_path.stat().st_mtime, manifest_path.parent))
            except OSError:
                continue
        excess = len(aged) + 1 - self.max_entries_per_backend
        for _, stale in sorted(aged)[:excess] if excess > 0 else []:
            shutil.rmtree(stale, ignore_errors=True)

    def evict_cold(self, max_entries: int | None = None) -> int:
        """Trim every backend directory to its newest ``max_entries`` entries.

        The maintenance-loop complement of the per-save eviction: a
        long-lived server accumulates superseded lake-content snapshots
        (every refresh persists a full entry), and this sweeps *all* backend
        directories in one pass — including those whose searchers are no
        longer being saved to at all.  ``max_entries`` defaults to the
        store's ``max_entries_per_backend``; with both unset the sweep is a
        no-op (an unbounded store stays unbounded).  Returns the number of
        entries removed.  Best-effort like :meth:`_evict_superseded`:
        removal failures are skipped, never raised.
        """
        bound = max_entries if max_entries is not None else self.max_entries_per_backend
        if bound is None or bound < 1 or not self.root.is_dir():
            return 0
        removed = 0
        for backend_dir in sorted(self.root.iterdir()):
            if not backend_dir.is_dir():
                continue
            aged: list[tuple[float, Path]] = []
            for manifest_path in backend_dir.glob(f"*/{_MANIFEST}"):
                try:
                    aged.append((manifest_path.stat().st_mtime, manifest_path.parent))
                except OSError:
                    continue
            # Newest entries survive; mtime ties keep every tied entry.
            for _, stale in sorted(aged)[: max(0, len(aged) - bound)]:
                shutil.rmtree(stale, ignore_errors=True)
                removed += 1
        return removed

    # ------------------------------------------------------------------- load
    def load(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore ``searcher``'s index over ``lake`` from the store.

        Raises :class:`IndexStoreMiss` when no entry exists (or the entry was
        written for a different format/config/lake) and :class:`ServingError`
        when an entry exists but fails checksum validation.
        """
        entry = self.entry_dir(searcher, lake)
        manifest_path = entry / _MANIFEST
        if not manifest_path.is_file():
            raise IndexStoreMiss(
                f"no persisted {type(searcher).__name__} index for lake "
                f"{lake.name!r} under {self.root}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(f"unreadable index manifest {manifest_path}") from exc

        if manifest.get("store_format") != STORE_FORMAT_VERSION:
            raise IndexStoreMiss(
                f"index entry {entry} uses store format "
                f"{manifest.get('store_format')}, expected {STORE_FORMAT_VERSION}"
            )
        if manifest.get("config_fingerprint") != searcher.config_fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built with a different "
                f"{type(searcher).__name__} configuration"
            )
        if manifest.get("lake_fingerprint") != lake.fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built for different lake contents"
            )

        state, arrays = self._read_payloads(entry, manifest)
        try:
            searcher.load_index_state(lake, state, arrays)
        except Exception as exc:
            # Checksums passed but the payloads are mutually inconsistent
            # (e.g. a layout change without an INDEX_FORMAT_VERSION bump).
            # Surface it as corruption so load_or_build rebuilds the entry.
            raise ServingError(
                f"persisted index entry {entry} failed to deserialize: {exc}"
            ) from exc
        return searcher

    def _read_payloads(self, entry: Path, manifest: dict) -> tuple[dict, dict]:
        """Checksum-validate and read one entry's state + array payloads."""
        for filename, expected in manifest.get("checksums", {}).items():
            payload = entry / filename
            if not payload.is_file() or _file_checksum(payload) != expected:
                raise ServingError(
                    f"persisted index payload {payload} is missing or corrupt "
                    "(checksum mismatch)"
                )
        try:
            state = json.loads((entry / _STATE).read_text())
            with np.load(entry / _ARRAYS) as payload:
                arrays = {key: payload[key] for key in payload.files}
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            # The entry can vanish between checksum validation and these
            # reads — a concurrent evict_cold/_evict_superseded rmtree.
            # Surface it as corruption so load_or_build heals with a build.
            raise ServingError(
                f"persisted index entry {entry} became unreadable mid-load "
                f"(concurrent eviction?): {exc}"
            ) from exc
        return state, arrays

    # ------------------------------------------------------------ delta update
    def _update_from_prior(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher | None:
        """Serve a store miss by delta-updating the closest prior snapshot.

        Scans the backend's persisted entries for the manifest whose recorded
        per-table fingerprints differ least from ``lake``, loads that
        snapshot and applies the difference through
        :meth:`~repro.search.base.TableUnionSearcher.update_index` (which
        itself falls back to rebuilding when the backend cannot apply it
        incrementally).  The updated index is persisted as a regular full
        entry for ``lake``, so delta chains never accumulate on disk.
        Returns ``None`` when no prior snapshot qualifies — the caller then
        builds from scratch.
        """
        current = lake.table_fingerprints()
        config_fingerprint = searcher.config_fingerprint()
        best: tuple[int, Path, dict, list[str], list[str]] | None = None
        for manifest_path in self.backend_dir(searcher).glob(f"*/{_MANIFEST}"):
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if manifest.get("store_format") != STORE_FORMAT_VERSION:
                continue
            if manifest.get("config_fingerprint") != config_fingerprint:
                continue
            base = manifest.get("table_fingerprints")
            if not isinstance(base, dict):
                continue  # entry predates delta-aware manifests
            added = [name for name, fp in current.items() if base.get(name) != fp]
            removed = [name for name, fp in base.items() if current.get(name) != fp]
            changes = len(added) + len(removed)
            if changes == 0:
                continue  # identical content would have been an exact hit
            if best is None or changes < best[0]:
                best = (changes, manifest_path.parent, manifest, added, removed)
        if best is None:
            return None
        changes, entry, manifest, added, removed = best
        if changes > self.max_delta_fraction * max(lake.num_tables, 1):
            return None
        try:
            state, arrays = self._read_payloads(entry, manifest)
            searcher.load_index_state(lake, state, arrays)
            searcher.update_index(
                added=[lake.get(name) for name in added], removed=removed
            )
        except Exception:
            # Anything can go wrong with a snapshot we merely hope is usable:
            # checksum/corruption failures, a concurrent save evicting the
            # entry mid-read (FileNotFoundError), or layout drift surfacing
            # from load_index_state.  A fresh build always heals, so this
            # fallback mirrors load()'s treat-as-corruption philosophy.
            return None
        try:
            self.save(searcher, lake)
        except SearchError:
            pass
        return searcher

    def load_or_build(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore from the store when possible, otherwise update or build.

        Resolution order: exact entry for the lake's content → delta update
        of the closest prior snapshot (bit-identical, persisted as a new
        entry) → fresh build.  Misses *and* corrupt entries end in a build
        whose result overwrites the bad entry, so a damaged store heals on
        next use.
        """
        try:
            return self.load(searcher, lake)
        except IndexStoreMiss:
            updated = self._update_from_prior(searcher, lake)
            if updated is not None:
                return updated
        except ServingError:
            pass  # corruption: heal with a fresh build below
        searcher.index(lake)
        try:
            self.save(searcher, lake)
        except SearchError:
            pass  # a backend without index_state() still serves in-process
        return searcher
