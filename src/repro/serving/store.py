"""Persistent, checksum-validated storage for built search indexes.

Every :class:`~repro.search.base.TableUnionSearcher` can dump its built index
as a JSON metadata dict plus named numpy arrays (``index_state()``) and
restore it without touching the lake's cell values (``load_index_state()``).
:class:`IndexStore` persists those dumps so a data lake is indexed once and
reused across runs *and* processes.

The store owns the logical semantics — content keying, the manifest schema,
miss-vs-corruption error taxonomy, delta anchoring, eviction policy — and
delegates physical persistence to a pluggable
:class:`~repro.serving.backends.base.StoreBackend` selected by name:

* ``directory`` (default) — the original one-directory-per-entry layout::

      <root>/
        <Backend>-<config_fp12>/      one namespace per (class, config, format)
          <lake_fp16>/                one entry per lake content fingerprint
            state.json                JSON metadata payload
            arrays.npz                numpy payloads
            manifest.json             versions, fingerprints, payload checksums

* ``sqlite`` — the same entries as rows of one WAL-mode database file, for
  shared storage and concurrent multi-process readers.

Every backend commits the manifest last (directory: atomic rename; sqlite:
one transaction), so a crashed save never produces a loadable entry; both
payloads are checksum-validated on load and any mismatch is reported as
corruption rather than silently served.  On the read path arrays come back
as *lazy* views (memory-mapped npz members on the directory backend), so
restoring an index only faults in the bytes its ``load_index_state``
actually decodes.

Each manifest also records the lake's per-table content fingerprints, which
makes the store **delta-aware**: when a mutated lake misses every entry,
:meth:`IndexStore.load_or_build` finds the prior snapshot with the smallest
table diff, loads it, applies the diff through
:meth:`~repro.search.base.TableUnionSearcher.update_index` and persists the
result as a new entry — bit-identical to a rebuild, at the cost of indexing
only the changed tables.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path

from repro.datalake.lake import DataLake
from repro.search.base import TableUnionSearcher
from repro.utils.errors import IndexStoreMiss, SearchError, ServingError

#: Bump when the on-disk layout of store entries changes.  (The
#: ``table_fingerprints`` and ``last_access`` manifest fields are additive:
#: entries written without them still load exactly, they just cannot anchor
#: delta updates / recency-ordered eviction.)
STORE_FORMAT_VERSION = 1


def _file_checksum(path: Path) -> str:
    """Streaming sha256 of one payload file, in fixed 1 MiB chunks.

    The canonical checksum helper for file-based backends: large npz
    payloads hash at constant memory instead of being read whole.
    """
    hasher = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class IndexStore:
    """Persisted search indexes keyed by backend config and lake content.

    ``backend`` names the physical storage implementation from the
    :data:`~repro.api.registry.STORE_BACKENDS` registry (``"directory"`` or
    ``"sqlite"``); ``path``, ``pool_size`` and ``mmap`` are forwarded to its
    constructor.  ``lazy_shards`` is advisory state read by
    :class:`~repro.search.sharded.ShardedSearcher`: when set (the default),
    a fully warm store lets sharded restoration defer per-shard loading
    until a shard is first touched.

    ``max_delta_fraction`` bounds when :meth:`load_or_build` prefers updating
    a prior snapshot over rebuilding: a delta is applied only when it touches
    at most that fraction of the lake's tables (beyond it, a rebuild tends to
    be as cheap and keeps the store from chaining long delta lineages).

    ``max_entries_per_backend`` bounds disk growth under continuous lake
    mutation: every refresh persists a full entry for the new lake content,
    so without a bound a long-lived deployment would accumulate one snapshot
    per content version forever.  :meth:`save` evicts the
    least-recently-accessed superseded entries of the same backend beyond
    the bound (``None`` disables eviction).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        backend: str = "directory",
        path: str | Path | None = None,
        pool_size: int = 4,
        mmap: bool = True,
        lazy_shards: bool = True,
        max_delta_fraction: float = 0.5,
        max_entries_per_backend: int | None = 8,
    ) -> None:
        if not 0.0 <= max_delta_fraction <= 1.0:
            raise ServingError(
                f"max_delta_fraction must be in [0, 1], got {max_delta_fraction}"
            )
        if max_entries_per_backend is not None and max_entries_per_backend < 1:
            raise ServingError(
                f"max_entries_per_backend must be >= 1 or None, "
                f"got {max_entries_per_backend}"
            )
        self.root = Path(root)
        self.max_delta_fraction = max_delta_fraction
        self.max_entries_per_backend = max_entries_per_backend
        self.lazy_shards = bool(lazy_shards)
        # Imported lazily: repro.api's package __init__ pulls in modules that
        # import this one, so a module-level registry import could observe a
        # partially initialized repro.serving.store.
        from repro.api.registry import STORE_BACKENDS

        self._backend = STORE_BACKENDS.create(
            backend, root=self.root, path=path, pool_size=pool_size, mmap=mmap
        )

    @classmethod
    def from_config(
        cls, root: str | Path, section: dict | None = None, **overrides
    ) -> IndexStore:
        """Build a store from a validated ``store`` config section.

        ``section`` is the (already defaulted) ``DiscoveryConfig.store``
        dict; ``None`` means all defaults.  Shared by the facade and the
        ``warm`` CLI so both construct identically-behaving stores.
        """
        section = dict(section or {})
        return cls(
            root,
            backend=section.get("backend", "directory"),
            path=section.get("path"),
            pool_size=section.get("pool_size", 4),
            mmap=section.get("mmap", True),
            lazy_shards=section.get("lazy_shards", True),
            **overrides,
        )

    # ------------------------------------------------------------- addressing
    @property
    def backend_name(self) -> str:
        """Registry name of the active physical backend."""
        return self._backend.name

    def _backend_key(self, searcher: TableUnionSearcher) -> str:
        return f"{type(searcher).__name__}-{searcher.config_fingerprint()[:12]}"

    def _entry_key(self, lake: DataLake) -> str:
        return lake.fingerprint()[:16]

    def backend_dir(self, searcher: TableUnionSearcher) -> Path:
        """Logical directory holding every persisted lake entry of one config.

        A real directory only on the ``directory`` backend; other backends
        use the same path as a virtual namespace.
        """
        return self.root / self._backend_key(searcher)

    def entry_dir(self, searcher: TableUnionSearcher, lake: DataLake) -> Path:
        """Logical directory of the persisted index of ``searcher`` over ``lake``."""
        return self.backend_dir(searcher) / self._entry_key(lake)

    def describe_entry(self, searcher: TableUnionSearcher, lake: DataLake) -> str:
        """The entry's physical address, as the active backend renders it."""
        return self._backend.entry_location(
            self._backend_key(searcher), self._entry_key(lake)
        )

    def contains(self, searcher: TableUnionSearcher, lake: DataLake) -> bool:
        """Whether a completed entry exists (no payload validation)."""
        return self._backend.has_entry(
            self._backend_key(searcher), self._entry_key(lake)
        )

    def stats(self) -> dict:
        """Occupancy of the physical backend, for ``info`` surfaces.

        Keys: ``backend`` (registry name), ``location``, ``backends``
        (config namespaces), ``entries`` and ``payload_bytes`` — what a cold
        start would have to touch if it loaded everything eagerly.
        """
        return self._backend.stats()

    # ------------------------------------------------------------------- save
    def save(
        self, searcher: TableUnionSearcher, lake: DataLake | None = None
    ) -> Path:
        """Persist ``searcher``'s built index; returns the logical entry dir.

        Payloads are committed before the manifest becomes visible, so
        concurrent or crashed writers can never leave a manifest pointing at
        missing payloads.  Saving over an existing entry replaces it.
        """
        lake = lake if lake is not None else searcher.lake
        state, arrays = searcher.index_state()
        manifest = {
            "store_format": STORE_FORMAT_VERSION,
            "backend_class": type(searcher).__name__,
            "backend_config": searcher.config_state(),
            "config_fingerprint": searcher.config_fingerprint(),
            "index_format": searcher.INDEX_FORMAT_VERSION,
            "lake_fingerprint": lake.fingerprint(),
            "table_fingerprints": lake.table_fingerprints(),
            "num_tables": lake.num_tables,
            "last_access": time.time(),
        }
        self._backend.write_entry(
            self._backend_key(searcher),
            self._entry_key(lake),
            state=state,
            arrays=arrays,
            manifest=manifest,
        )
        self._evict_superseded(searcher, lake)
        return self.entry_dir(searcher, lake)

    def _evict_superseded(self, searcher: TableUnionSearcher, lake: DataLake) -> None:
        """Keep the freshest ``max_entries_per_backend`` entries of one backend.

        Called after every save so a continuously mutating lake cannot grow
        the store without bound — superseded lake-content snapshots beyond
        the bound are removed least-recently-accessed first, never the entry
        just written.  Best-effort: eviction failures are ignored so a
        read-only race never breaks a save.
        """
        if self.max_entries_per_backend is None:
            return
        backend_key = self._backend_key(searcher)
        keep = self._entry_key(lake)
        aged = [
            stamped
            for stamped in self._backend.list_entries(backend_key)
            if stamped[1] != keep
        ]
        excess = len(aged) + 1 - self.max_entries_per_backend
        for _, stale in sorted(aged)[:excess] if excess > 0 else []:
            self._backend.delete_entry(backend_key, stale)

    def evict_cold(self, max_entries: int | None = None) -> int:
        """Trim every backend namespace to its freshest ``max_entries`` entries.

        The maintenance-loop complement of the per-save eviction: a
        long-lived server accumulates superseded lake-content snapshots
        (every refresh persists a full entry), and this sweeps *all* backend
        namespaces in one pass — including those whose searchers are no
        longer being saved to at all.  Ordering uses the manifest-recorded
        ``last_access`` stamp where present (loads refresh it even when the
        payload bytes are only ever memory-mapped), falling back to the
        physical mtime for pre-stamp entries.  ``max_entries`` defaults to
        the store's ``max_entries_per_backend``; with both unset the sweep
        is a no-op (an unbounded store stays unbounded).  Returns the number
        of entries removed.  Best-effort like :meth:`_evict_superseded`:
        removal failures are skipped, never raised.
        """
        bound = max_entries if max_entries is not None else self.max_entries_per_backend
        if bound is None or bound < 1:
            return 0
        removed = 0
        for backend_key in self._backend.list_backend_keys():
            aged = self._backend.list_entries(backend_key)
            # Freshest entries survive; stamp ties keep every tied entry.
            for _, stale in sorted(aged)[: max(0, len(aged) - bound)]:
                if self._backend.delete_entry(backend_key, stale):
                    removed += 1
        return removed

    # ------------------------------------------------------------------- load
    def load(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore ``searcher``'s index over ``lake`` from the store.

        Raises :class:`IndexStoreMiss` when no entry exists (or the entry was
        written for a different format/config/lake) and :class:`ServingError`
        when an entry exists but fails checksum validation.
        """
        backend_key = self._backend_key(searcher)
        entry_key = self._entry_key(lake)
        entry = self.entry_dir(searcher, lake)
        manifest = self._backend.read_manifest(backend_key, entry_key)
        if manifest is None:
            raise IndexStoreMiss(
                f"no persisted {type(searcher).__name__} index for lake "
                f"{lake.name!r} under {self.root}"
            )

        if manifest.get("store_format") != STORE_FORMAT_VERSION:
            raise IndexStoreMiss(
                f"index entry {entry} uses store format "
                f"{manifest.get('store_format')}, expected {STORE_FORMAT_VERSION}"
            )
        if manifest.get("config_fingerprint") != searcher.config_fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built with a different "
                f"{type(searcher).__name__} configuration"
            )
        if manifest.get("lake_fingerprint") != lake.fingerprint():
            raise IndexStoreMiss(
                f"index entry {entry} was built for different lake contents"
            )

        state, arrays = self._backend.read_payloads(backend_key, entry_key, manifest)
        try:
            searcher.load_index_state(lake, state, arrays)
        except Exception as exc:
            # Checksums passed but the payloads are mutually inconsistent
            # (e.g. a layout change without an INDEX_FORMAT_VERSION bump).
            # Surface it as corruption so load_or_build rebuilds the entry.
            raise ServingError(
                f"persisted index entry {entry} failed to deserialize: {exc}"
            ) from exc
        self._backend.touch(backend_key, entry_key)
        return searcher

    # ------------------------------------------------------------ delta update
    def _update_from_prior(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher | None:
        """Serve a store miss by delta-updating the closest prior snapshot.

        Scans the backend's persisted entries for the manifest whose recorded
        per-table fingerprints differ least from ``lake``, loads that
        snapshot and applies the difference through
        :meth:`~repro.search.base.TableUnionSearcher.update_index` (which
        itself falls back to rebuilding when the backend cannot apply it
        incrementally).  The updated index is persisted as a regular full
        entry for ``lake``, so delta chains never accumulate on disk.
        Returns ``None`` when no prior snapshot qualifies — the caller then
        builds from scratch.
        """
        current = lake.table_fingerprints()
        config_fingerprint = searcher.config_fingerprint()
        backend_key = self._backend_key(searcher)
        best: tuple[int, str, dict, list[str], list[str]] | None = None
        for entry_key, manifest in self._backend.iter_manifests(backend_key):
            if manifest.get("store_format") != STORE_FORMAT_VERSION:
                continue
            if manifest.get("config_fingerprint") != config_fingerprint:
                continue
            base = manifest.get("table_fingerprints")
            if not isinstance(base, dict):
                continue  # entry predates delta-aware manifests
            added = [name for name, fp in current.items() if base.get(name) != fp]
            removed = [name for name, fp in base.items() if current.get(name) != fp]
            changes = len(added) + len(removed)
            if changes == 0:
                continue  # identical content would have been an exact hit
            if best is None or changes < best[0]:
                best = (changes, entry_key, manifest, added, removed)
        if best is None:
            return None
        changes, entry_key, manifest, added, removed = best
        if changes > self.max_delta_fraction * max(lake.num_tables, 1):
            return None
        try:
            state, arrays = self._backend.read_payloads(backend_key, entry_key, manifest)
            searcher.load_index_state(lake, state, arrays)
            searcher.update_index(
                added=[lake.get(name) for name in added], removed=removed
            )
        except Exception:
            # Anything can go wrong with a snapshot we merely hope is usable:
            # checksum/corruption failures, a concurrent save evicting the
            # entry mid-read (FileNotFoundError), or layout drift surfacing
            # from load_index_state.  A fresh build always heals, so this
            # fallback mirrors load()'s treat-as-corruption philosophy.
            return None
        try:
            self.save(searcher, lake)
        except SearchError:
            pass
        return searcher

    def load_or_build(
        self, searcher: TableUnionSearcher, lake: DataLake
    ) -> TableUnionSearcher:
        """Restore from the store when possible, otherwise update or build.

        Resolution order: exact entry for the lake's content → delta update
        of the closest prior snapshot (bit-identical, persisted as a new
        entry) → fresh build.  Misses *and* corrupt entries end in a build
        whose result overwrites the bad entry, so a damaged store heals on
        next use.
        """
        try:
            return self.load(searcher, lake)
        except IndexStoreMiss:
            updated = self._update_from_prior(searcher, lake)
            if updated is not None:
                return updated
        except ServingError:
            pass  # corruption: heal with a fresh build below
        searcher.index(lake)
        try:
            self.save(searcher, lake)
        except SearchError:
            pass  # a backend without index_state() still serves in-process
        return searcher
