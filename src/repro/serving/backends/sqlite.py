"""Single-file SQLite store backend: shared storage for multi-process serving.

One ``index-store.sqlite3`` file replaces the directory tree, which gives
resident servers a storage story the filesystem layout cannot: a single
artifact to ship/mount, WAL journaling so many reader processes load entries
while a writer persists a refresh, and transactional saves (payloads and
manifest commit together, the exact analogue of the directory backend's
manifest-written-last rule).

Payload bytes are identical to the directory backend — the same
``state.json`` text and the same uncompressed ``arrays.npz`` serialization,
checksummed with the same sha256 — so a lake warmed through either backend
produces entries with identical manifests and the parity gates in
``benchmarks/bench_cold_start.py`` can compare them bit for bit.

Reliability mirrors ``load_or_build``'s self-healing philosophy:

* every ``sqlite3.DatabaseError`` on the read path surfaces as
  :class:`ServingError`, which callers heal with a rebuild;
* a database file that no longer opens (truncated, overwritten, wrong
  format) is quarantined aside as ``<name>.corrupt`` and a fresh schema is
  initialized, so the healing rebuild's save succeeds instead of failing
  forever;
* the schema carries its version in a ``schema_version`` table and is
  migrated forward on open (v1 → v2 adds the ``last_access`` column backing
  recency-ordered eviction), so old store files keep working.

Connections are pooled per process (``pool_size``) and invalidated on
``fork``, since SQLite connections must never cross process boundaries.
"""

from __future__ import annotations

import io
import json
import os
import sqlite3
import threading
import time
from collections.abc import Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.api.registry import register_store_backend
from repro.serving.backends.base import (
    ARRAYS_PAYLOAD,
    STATE_PAYLOAD,
    StoreBackend,
    checksum_bytes,
    serialize_arrays,
)
from repro.utils.errors import ServingError

#: Current schema version; bump alongside a migration step in ``_migrate``.
SCHEMA_VERSION = 2

#: Version 1 never shipped a ``last_access`` column; kept as executable
#: documentation and as the fixture for the forward-migration test.
SCHEMA_V1_STATEMENTS = (
    "CREATE TABLE schema_version (version INTEGER NOT NULL)",
    """CREATE TABLE entries (
        backend_key TEXT NOT NULL,
        entry_key TEXT NOT NULL,
        manifest TEXT NOT NULL,
        created REAL NOT NULL,
        PRIMARY KEY (backend_key, entry_key))""",
    """CREATE TABLE payloads (
        backend_key TEXT NOT NULL,
        entry_key TEXT NOT NULL,
        name TEXT NOT NULL,
        data BLOB NOT NULL,
        PRIMARY KEY (backend_key, entry_key, name))""",
    "INSERT INTO schema_version (version) VALUES (1)",
)


@register_store_backend("sqlite")
class SQLiteStoreBackend(StoreBackend):
    """Entries as rows in one WAL-mode SQLite database."""

    name = "sqlite"

    def __init__(
        self,
        root: str | Path,
        *,
        path: str | Path | None = None,
        pool_size: int = 4,
        mmap: bool = True,
    ) -> None:
        # ``mmap`` is accepted for constructor uniformity: blob payloads are
        # decoded through a lazy NpzFile either way (SQLite's own page cache
        # plays the role the OS page cache plays for directory entries).
        self.root = Path(root)
        self.path = Path(path) if path is not None else self.root / "index-store.sqlite3"
        self.pool_size = max(1, int(pool_size))
        self._pool: list[sqlite3.Connection] = []
        self._pool_pid: int | None = None
        self._lock = threading.Lock()
        self._connections_opened = 0  # observability for pooling tests/stats

    # ------------------------------------------------------------ connections
    def _new_connection(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._connections_opened += 1
        try:
            self._initialize(connection)
        except sqlite3.DatabaseError:
            connection.close()
            self._quarantine()
            connection = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            self._connections_opened += 1
            self._initialize(connection)
        return connection

    def _quarantine(self) -> None:
        """Move an unopenable database aside so a fresh schema can heal it."""
        try:
            os.replace(self.path, self.path.with_name(self.path.name + ".corrupt"))
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass

    def _initialize(self, connection: sqlite3.Connection) -> None:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        row = connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='schema_version'"
        ).fetchone()
        with connection:  # one transaction for create-or-migrate
            if row is None:
                self._create_schema(connection)
            else:
                self._migrate(connection)

    def _create_schema(self, connection: sqlite3.Connection) -> None:
        connection.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
        connection.execute(
            """CREATE TABLE entries (
                backend_key TEXT NOT NULL,
                entry_key TEXT NOT NULL,
                manifest TEXT NOT NULL,
                created REAL NOT NULL,
                last_access REAL NOT NULL,
                PRIMARY KEY (backend_key, entry_key))"""
        )
        connection.execute(
            """CREATE TABLE payloads (
                backend_key TEXT NOT NULL,
                entry_key TEXT NOT NULL,
                name TEXT NOT NULL,
                data BLOB NOT NULL,
                PRIMARY KEY (backend_key, entry_key, name))"""
        )
        connection.execute(
            "INSERT INTO schema_version (version) VALUES (?)", (SCHEMA_VERSION,)
        )

    def _migrate(self, connection: sqlite3.Connection) -> None:
        row = connection.execute("SELECT MAX(version) FROM schema_version").fetchone()
        version = int(row[0]) if row and row[0] is not None else 0
        if version > SCHEMA_VERSION:
            raise ServingError(
                f"store database {self.path} uses schema version {version}, "
                f"newer than this build's {SCHEMA_VERSION}"
            )
        if version == SCHEMA_VERSION:
            return
        if version <= 1:
            # v1 -> v2: recency-ordered eviction needs a last-access stamp.
            connection.execute(
                "ALTER TABLE entries ADD COLUMN last_access REAL NOT NULL DEFAULT 0"
            )
            connection.execute("UPDATE entries SET last_access = created")
        connection.execute("DELETE FROM schema_version")
        connection.execute(
            "INSERT INTO schema_version (version) VALUES (?)", (SCHEMA_VERSION,)
        )

    @contextmanager
    def _connection(self) -> Iterator[sqlite3.Connection]:
        """Borrow a pooled connection; forked children never inherit one."""
        with self._lock:
            if self._pool_pid != os.getpid():
                # Post-fork: inherited connections share file descriptors
                # with the parent and must not be used *or* closed here.
                self._pool = []
                self._pool_pid = os.getpid()
            connection = self._pool.pop() if self._pool else None
        if connection is None:
            connection = self._new_connection()
        try:
            yield connection
        except sqlite3.DatabaseError:
            connection.close()  # do not return a possibly-wedged connection
            raise
        else:
            with self._lock:
                if self._pool_pid == os.getpid() and len(self._pool) < self.pool_size:
                    self._pool.append(connection)
                    connection = None
            if connection is not None:
                connection.close()

    def close(self) -> None:
        """Close pooled connections (tests and orderly shutdown)."""
        with self._lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def _location(self) -> str:
        return str(self.path)

    # ------------------------------------------------------------------ write
    def write_entry(
        self,
        backend_key: str,
        entry_key: str,
        *,
        state: dict,
        arrays: Mapping[str, np.ndarray],
        manifest: dict,
    ) -> None:
        state_bytes = json.dumps(state, sort_keys=True).encode("utf-8")
        arrays_bytes = serialize_arrays(arrays)
        manifest = dict(manifest)
        manifest["checksums"] = {
            STATE_PAYLOAD: checksum_bytes(state_bytes),
            ARRAYS_PAYLOAD: checksum_bytes(arrays_bytes),
        }
        now = time.time()
        try:
            with self._connection() as connection:
                with connection:  # payloads + manifest commit atomically
                    connection.execute(
                        "DELETE FROM payloads WHERE backend_key = ? AND entry_key = ?",
                        (backend_key, entry_key),
                    )
                    connection.executemany(
                        "INSERT INTO payloads (backend_key, entry_key, name, data) "
                        "VALUES (?, ?, ?, ?)",
                        [
                            (backend_key, entry_key, STATE_PAYLOAD, state_bytes),
                            (backend_key, entry_key, ARRAYS_PAYLOAD, arrays_bytes),
                        ],
                    )
                    connection.execute(
                        "INSERT OR REPLACE INTO entries "
                        "(backend_key, entry_key, manifest, created, last_access) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (backend_key, entry_key, json.dumps(manifest, sort_keys=True), now, now),
                    )
        except sqlite3.DatabaseError as exc:
            raise ServingError(
                f"failed to persist index entry {backend_key}/{entry_key} "
                f"into store database {self.path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------- read
    def read_manifest(self, backend_key: str, entry_key: str) -> dict | None:
        if not self.path.is_file():
            return None
        try:
            with self._connection() as connection:
                row = connection.execute(
                    "SELECT manifest FROM entries WHERE backend_key = ? AND entry_key = ?",
                    (backend_key, entry_key),
                ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise ServingError(
                f"unreadable index manifest for {backend_key}/{entry_key} "
                f"in store database {self.path}: {exc}"
            ) from exc
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise ServingError(
                f"unreadable index manifest for {backend_key}/{entry_key} "
                f"in store database {self.path}"
            ) from exc

    def read_payloads(
        self, backend_key: str, entry_key: str, manifest: dict
    ) -> tuple[dict, Mapping]:
        location = f"{self.path}::{backend_key}/{entry_key}"
        try:
            with self._connection() as connection:
                rows = connection.execute(
                    "SELECT name, data FROM payloads "
                    "WHERE backend_key = ? AND entry_key = ?",
                    (backend_key, entry_key),
                ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise ServingError(
                f"persisted index entry {location} became unreadable mid-load "
                f"(concurrent eviction?): {exc}"
            ) from exc
        payloads = {name: bytes(data) for name, data in rows}
        for name, expected in manifest.get("checksums", {}).items():
            data = payloads.get(name)
            if data is None or checksum_bytes(data) != expected:
                raise ServingError(
                    f"persisted index payload {location}/{name} is missing or "
                    "corrupt (checksum mismatch)"
                )
        try:
            state = json.loads(payloads[STATE_PAYLOAD].decode("utf-8"))
            # NpzFile over the blob decodes members lazily on first access.
            arrays = np.load(io.BytesIO(payloads[ARRAYS_PAYLOAD]))
        except (KeyError, ValueError, OSError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"persisted index entry {location} became unreadable mid-load "
                f"(concurrent eviction?): {exc}"
            ) from exc
        return state, arrays

    def has_entry(self, backend_key: str, entry_key: str) -> bool:
        if not self.path.is_file():
            return False
        try:
            with self._connection() as connection:
                row = connection.execute(
                    "SELECT 1 FROM entries WHERE backend_key = ? AND entry_key = ?",
                    (backend_key, entry_key),
                ).fetchone()
        except sqlite3.DatabaseError:
            return False
        return row is not None

    # -------------------------------------------------------------- inventory
    def iter_manifests(self, backend_key: str) -> Iterator[tuple[str, dict]]:
        if not self.path.is_file():
            return
        try:
            with self._connection() as connection:
                rows = connection.execute(
                    "SELECT entry_key, manifest FROM entries WHERE backend_key = ?",
                    (backend_key,),
                ).fetchall()
        except sqlite3.DatabaseError:
            return
        for entry_key, manifest_text in rows:
            try:
                yield entry_key, json.loads(manifest_text)
            except json.JSONDecodeError:
                continue

    def list_entries(self, backend_key: str) -> list[tuple[float, str]]:
        if not self.path.is_file():
            return []
        try:
            with self._connection() as connection:
                rows = connection.execute(
                    "SELECT last_access, entry_key FROM entries WHERE backend_key = ?",
                    (backend_key,),
                ).fetchall()
        except sqlite3.DatabaseError:
            return []
        return [(float(stamp), entry_key) for stamp, entry_key in rows]

    def list_backend_keys(self) -> list[str]:
        if not self.path.is_file():
            return []
        try:
            with self._connection() as connection:
                rows = connection.execute(
                    "SELECT DISTINCT backend_key FROM entries ORDER BY backend_key"
                ).fetchall()
        except sqlite3.DatabaseError:
            return []
        return [row[0] for row in rows]

    # ------------------------------------------------------------ maintenance
    def delete_entry(self, backend_key: str, entry_key: str) -> bool:
        if not self.path.is_file():
            return False
        try:
            with self._connection() as connection:
                with connection:
                    removed = connection.execute(
                        "DELETE FROM entries WHERE backend_key = ? AND entry_key = ?",
                        (backend_key, entry_key),
                    ).rowcount
                    connection.execute(
                        "DELETE FROM payloads WHERE backend_key = ? AND entry_key = ?",
                        (backend_key, entry_key),
                    )
        except sqlite3.DatabaseError:
            return False
        return removed > 0

    def touch(self, backend_key: str, entry_key: str) -> None:
        if not self.path.is_file():
            return
        try:
            with self._connection() as connection:
                with connection:
                    connection.execute(
                        "UPDATE entries SET last_access = ? "
                        "WHERE backend_key = ? AND entry_key = ?",
                        (time.time(), backend_key, entry_key),
                    )
        except sqlite3.DatabaseError:
            pass

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        backends = entries = payload_bytes = 0
        if self.path.is_file():
            try:
                with self._connection() as connection:
                    backends = connection.execute(
                        "SELECT COUNT(DISTINCT backend_key) FROM entries"
                    ).fetchone()[0]
                    entries = connection.execute(
                        "SELECT COUNT(*) FROM entries"
                    ).fetchone()[0]
                    payload_bytes = connection.execute(
                        "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM payloads"
                    ).fetchone()[0]
            except sqlite3.DatabaseError:
                pass
        return {
            "backend": self.name,
            "location": self._location(),
            "backends": int(backends),
            "entries": int(entries),
            "payload_bytes": int(payload_bytes),
        }

    def entry_location(self, backend_key: str, entry_key: str) -> str:
        return f"{self._location()}::{backend_key}/{entry_key}"
