"""Pluggable physical storage backends for :class:`~repro.serving.store.IndexStore`.

Importing this package runs the ``@register_store_backend`` decorators, so
the :data:`~repro.api.registry.STORE_BACKENDS` registry lists every
implementation after its lazy module import.
"""

from repro.serving.backends.base import (
    ARRAYS_PAYLOAD,
    STATE_PAYLOAD,
    MappedArrayPayload,
    StoreBackend,
)
from repro.serving.backends.directory import DirectoryStoreBackend
from repro.serving.backends.sqlite import SQLiteStoreBackend

__all__ = [
    "ARRAYS_PAYLOAD",
    "STATE_PAYLOAD",
    "MappedArrayPayload",
    "StoreBackend",
    "DirectoryStoreBackend",
    "SQLiteStoreBackend",
]
