"""The original one-directory-per-entry store backend.

Behavior-preserving extraction of the filesystem layout :class:`IndexStore`
has written since it existed::

    <root>/<backend_key>/<entry_key>/{state.json, arrays.npz, manifest.json}

Payloads are written first and the manifest last via an atomic rename, so a
crashed save never leaves a loadable entry; checksums and content keys are
unchanged, so entries written by older versions load bit-identically.  The
one read-path difference is *how* arrays come back: with ``mmap=True`` (the
default) ``arrays.npz`` is served as a :class:`MappedArrayPayload` of lazy
``np.memmap`` views instead of an eager ``np.load`` copy of every member.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zipfile
from collections.abc import Mapping
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.api.registry import register_store_backend
from repro.serving.backends.base import (
    ARRAYS_PAYLOAD,
    STATE_PAYLOAD,
    MappedArrayPayload,
    StoreBackend,
)
from repro.utils.errors import ServingError

_MANIFEST = "manifest.json"


def _checksum(path: Path) -> str:
    # Late-bound so tests (and operators) can intercept the store module's
    # canonical streaming checksum in one place for both save and load.
    from repro.serving import store

    return store._file_checksum(path)


@register_store_backend("directory")
class DirectoryStoreBackend(StoreBackend):
    """Entries as plain directories under the store root."""

    name = "directory"

    def __init__(
        self,
        root: str | Path,
        *,
        path: str | Path | None = None,
        pool_size: int | None = None,
        mmap: bool = True,
    ) -> None:
        # ``path`` and ``pool_size`` are accepted for constructor uniformity
        # across backends; the directory layout has no use for either.
        self.root = Path(root)
        self.mmap = bool(mmap)

    def _entry_path(self, backend_key: str, entry_key: str) -> Path:
        return self.root / backend_key / entry_key

    # ------------------------------------------------------------------ write
    def write_entry(
        self,
        backend_key: str,
        entry_key: str,
        *,
        state: dict,
        arrays: Mapping[str, np.ndarray],
        manifest: dict,
    ) -> None:
        entry = self._entry_path(backend_key, entry_key)
        entry.mkdir(parents=True, exist_ok=True)

        manifest_path = entry / _MANIFEST
        if manifest_path.exists():  # invalidate the old entry while replacing
            manifest_path.unlink()

        state_path, arrays_path = entry / STATE_PAYLOAD, entry / ARRAYS_PAYLOAD
        state_path.write_text(json.dumps(state, sort_keys=True))
        with arrays_path.open("wb") as handle:
            np.savez(handle, **arrays)

        manifest = dict(manifest)
        manifest["checksums"] = {
            STATE_PAYLOAD: _checksum(state_path),
            ARRAYS_PAYLOAD: _checksum(arrays_path),
        }
        tmp_path = entry / f"{_MANIFEST}.tmp"
        tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp_path, manifest_path)

    # ------------------------------------------------------------------- read
    def read_manifest(self, backend_key: str, entry_key: str) -> dict | None:
        manifest_path = self._entry_path(backend_key, entry_key) / _MANIFEST
        if not manifest_path.is_file():
            return None
        try:
            return json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(f"unreadable index manifest {manifest_path}") from exc

    def read_payloads(
        self, backend_key: str, entry_key: str, manifest: dict
    ) -> tuple[dict, Mapping]:
        entry = self._entry_path(backend_key, entry_key)
        for filename, expected in manifest.get("checksums", {}).items():
            payload = entry / filename
            if not payload.is_file() or _checksum(payload) != expected:
                raise ServingError(
                    f"persisted index payload {payload} is missing or corrupt "
                    "(checksum mismatch)"
                )
        try:
            state = json.loads((entry / STATE_PAYLOAD).read_text())
            arrays = self._read_arrays(entry / ARRAYS_PAYLOAD)
        except (OSError, json.JSONDecodeError, ValueError, zipfile.BadZipFile) as exc:
            # The entry can vanish between checksum validation and these
            # reads — a concurrent evict_cold/_evict_superseded rmtree.
            # Surface it as corruption so load_or_build heals with a build.
            raise ServingError(
                f"persisted index entry {entry} became unreadable mid-load "
                f"(concurrent eviction?): {exc}"
            ) from exc
        return state, arrays

    def _read_arrays(self, path: Path) -> Mapping:
        if self.mmap:
            return MappedArrayPayload(path)
        with np.load(path) as payload:
            return {key: payload[key] for key in payload.files}

    def has_entry(self, backend_key: str, entry_key: str) -> bool:
        return (self._entry_path(backend_key, entry_key) / _MANIFEST).is_file()

    # -------------------------------------------------------------- inventory
    def iter_manifests(self, backend_key: str) -> Iterator[tuple[str, dict]]:
        for manifest_path in (self.root / backend_key).glob(f"*/{_MANIFEST}"):
            try:
                yield manifest_path.parent.name, json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue

    def list_entries(self, backend_key: str) -> list[tuple[float, str]]:
        stamped: list[tuple[float, str]] = []
        for manifest_path in (self.root / backend_key).glob(f"*/{_MANIFEST}"):
            try:
                stamp = manifest_path.stat().st_mtime
                recorded = json.loads(manifest_path.read_text()).get("last_access")
                if isinstance(recorded, (int, float)):
                    stamp = float(recorded)
            except (OSError, json.JSONDecodeError):
                continue
            stamped.append((stamp, manifest_path.parent.name))
        return stamped

    def list_backend_keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(child.name for child in self.root.iterdir() if child.is_dir())

    # ------------------------------------------------------------ maintenance
    def delete_entry(self, backend_key: str, entry_key: str) -> bool:
        entry = self._entry_path(backend_key, entry_key)
        existed = (entry / _MANIFEST).is_file()
        shutil.rmtree(entry, ignore_errors=True)
        return existed

    def touch(self, backend_key: str, entry_key: str) -> None:
        """Record last access by atomically rewriting the manifest.

        Best-effort: a concurrent eviction racing the rewrite loses nothing
        but the access stamp, so every failure is swallowed.
        """
        entry = self._entry_path(backend_key, entry_key)
        manifest_path = entry / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
            manifest["last_access"] = time.time()
            tmp_path = entry / f"{_MANIFEST}.touch.tmp"
            tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
            os.replace(tmp_path, manifest_path)
        except (OSError, json.JSONDecodeError):
            pass

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        entries = 0
        payload_bytes = 0
        backend_keys = self.list_backend_keys()
        for backend_key in backend_keys:
            for manifest_path in (self.root / backend_key).glob(f"*/{_MANIFEST}"):
                entries += 1
                for name in (STATE_PAYLOAD, ARRAYS_PAYLOAD):
                    try:
                        payload_bytes += (manifest_path.parent / name).stat().st_size
                    except OSError:
                        continue
        return {
            "backend": self.name,
            "location": str(self.root),
            "backends": len(backend_keys),
            "entries": entries,
            "payload_bytes": payload_bytes,
        }

    def entry_location(self, backend_key: str, entry_key: str) -> str:
        return str(self._entry_path(backend_key, entry_key))
