"""The :class:`StoreBackend` protocol behind :class:`~repro.serving.store.IndexStore`.

The store's public semantics — content-keyed entries, checksummed payloads,
manifest-written-last atomicity, miss-vs-corruption error taxonomy, delta
anchoring and cold eviction — are backend-independent.  A backend only
answers the physical questions: where does an entry live, how are its three
payloads (``state.json`` text, ``arrays.npz`` bytes, ``manifest.json``)
persisted atomically, and how are they streamed back.

Backends register under a short name through the same decorator registry as
every other pluggable component family::

    @register_store_backend("directory")
    class DirectoryStoreBackend(StoreBackend): ...

and are selected by the fingerprint-neutral ``store`` config section
(``{"store": {"backend": "sqlite"}}``) or ``--store-backend`` on the CLI.

Addressing is a pair of opaque keys chosen by the store:

* ``backend_key`` — ``<SearcherClass>-<config_fp12>``, one namespace per
  (class, config, index-format) triple;
* ``entry_key`` — ``<lake_fp16>``, one entry per lake content fingerprint.

This module also hosts :class:`MappedArrayPayload`, the lazy memory-mapped
view over an uncompressed ``.npz`` payload that both backends hand to
``load_index_state`` instead of an eagerly ``np.load``-ed dict: members are
located once by parsing the zip directory, then materialized as
``np.memmap`` views only when first accessed, so restoring an index touches
the bytes it actually decodes.
"""

from __future__ import annotations

import abc
import hashlib
import io
import zipfile
from collections.abc import Mapping
from typing import Iterator

import numpy as np

#: Payload names shared by every backend; manifests checksum exactly these.
STATE_PAYLOAD = "state.json"
ARRAYS_PAYLOAD = "arrays.npz"

#: Size of one zip *local* file header (the central directory's extra field
#: can differ from the local one, so member data offsets must be derived from
#: the local header, never from the central record alone).
_ZIP_LOCAL_HEADER_SIZE = 30


def checksum_bytes(data: bytes) -> str:
    """sha256 hex digest of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


def serialize_arrays(arrays: Mapping[str, np.ndarray]) -> bytes:
    """The canonical ``arrays.npz`` byte serialization shared by all backends.

    Uncompressed (``np.savez``), so directory entries stay memory-mappable
    and every backend produces byte-identical payloads — and therefore
    identical manifest checksums — for the same index state.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


class MappedArrayPayload(Mapping):
    """A lazy, memory-mapped ``Mapping[str, np.ndarray]`` over one npz file.

    Construction parses the zip member table and each member's npy header —
    a few hundred bytes per array — but maps no payload data.  Accessing a
    key returns a read-only ``np.memmap`` view built from the member's data
    offset inside the (uncompressed) archive; the OS pages array bytes in on
    first touch.  Members that cannot be mapped — compressed, object-dtyped,
    zero-sized or an unknown npy format version — fall back to an eager
    in-memory decode, so the view is always complete, just not always lazy.

    The file handle passed at construction stays open for the lifetime of
    the payload: on POSIX a concurrently evicted entry keeps its inode alive
    through the open handle, so views handed to a searcher never go dark
    mid-decode.
    """

    def __init__(self, path) -> None:
        self._handle = open(path, "rb")
        try:
            self._members: dict[str, tuple[int, np.dtype, tuple, bool] | None] = {}
            self._cache: dict[str, np.ndarray] = {}
            with zipfile.ZipFile(self._handle) as archive:
                for info in archive.infolist():
                    name = info.filename
                    key = name[:-4] if name.endswith(".npy") else name
                    self._members[key] = self._locate(info)
        except BaseException:
            self._handle.close()
            raise

    def _locate(self, info: zipfile.ZipInfo) -> tuple[int, np.dtype, tuple, bool] | None:
        """Resolve one member to ``(data_offset, dtype, shape, fortran)``.

        Returns ``None`` when the member cannot be memory-mapped; the
        accessor then decodes it eagerly through :mod:`zipfile`.
        """
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        handle = self._handle
        handle.seek(info.header_offset)
        local = handle.read(_ZIP_LOCAL_HEADER_SIZE)
        if len(local) != _ZIP_LOCAL_HEADER_SIZE or local[:4] != b"PK\x03\x04":
            raise ValueError(
                f"malformed zip local header for npz member {info.filename!r}"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            return None
        if dtype.hasobject or not shape or int(np.prod(shape, dtype=np.int64)) == 0:
            return None  # pickled, scalar or empty members cannot be mapped
        return handle.tell(), dtype, shape, fortran

    def _decode_eager(self, key: str) -> np.ndarray:
        with zipfile.ZipFile(self._handle) as archive:
            with archive.open(f"{key}.npy") as member:
                return np.lib.format.read_array(member, allow_pickle=False)

    def __getitem__(self, key: str) -> np.ndarray:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        spec = self._members[key]
        if spec is None:
            array = self._decode_eager(key)
        else:
            offset, dtype, shape, fortran = spec
            array = np.memmap(
                self._handle,
                dtype=dtype,
                mode="r",
                offset=offset,
                shape=shape,
                order="F" if fortran else "C",
            )
        self._cache[key] = array
        return array

    def __iter__(self) -> Iterator[str]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def mapped_keys(self) -> list[str]:
        """Members served as ``np.memmap`` views (the rest decode eagerly)."""
        return [key for key, spec in self._members.items() if spec is not None]


class StoreBackend(abc.ABC):
    """Physical persistence for :class:`~repro.serving.store.IndexStore` entries.

    Every method takes the store's opaque ``(backend_key, entry_key)``
    address.  Read-side methods must never create storage; corruption is
    reported as :class:`~repro.utils.errors.ServingError` (the store's
    ``load_or_build`` then heals with a rebuild), absence as ``None`` /
    ``False`` / empty (the store raises :class:`IndexStoreMiss`).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    @abc.abstractmethod
    def write_entry(
        self,
        backend_key: str,
        entry_key: str,
        *,
        state: dict,
        arrays: Mapping[str, np.ndarray],
        manifest: dict,
    ) -> None:
        """Persist one entry atomically.

        The backend serializes ``state``/``arrays``, completes
        ``manifest["checksums"]`` over the serialized payloads, and commits
        so that a crash mid-write never leaves a readable manifest pointing
        at missing or stale payloads.  Overwrites any existing entry.
        """

    @abc.abstractmethod
    def read_manifest(self, backend_key: str, entry_key: str) -> dict | None:
        """The entry's manifest, ``None`` when absent, ServingError when unreadable."""

    @abc.abstractmethod
    def read_payloads(
        self, backend_key: str, entry_key: str, manifest: dict
    ) -> tuple[dict, Mapping]:
        """Checksum-validate and return ``(state, arrays)`` for one entry.

        ``arrays`` is a lazy mapping where the backend supports it.  Raises
        ServingError on checksum mismatch or an entry vanishing mid-read.
        """

    @abc.abstractmethod
    def has_entry(self, backend_key: str, entry_key: str) -> bool:
        """Whether a committed entry exists (no payload validation)."""

    @abc.abstractmethod
    def iter_manifests(self, backend_key: str) -> Iterator[tuple[str, dict]]:
        """Yield ``(entry_key, manifest)`` per readable entry; skip corrupt ones."""

    @abc.abstractmethod
    def list_entries(self, backend_key: str) -> list[tuple[float, str]]:
        """``(last_access_stamp, entry_key)`` per entry, for eviction ordering.

        The stamp is the manifest-recorded ``last_access`` where available,
        falling back to the backend's physical timestamp for entries written
        before the field existed.
        """

    @abc.abstractmethod
    def list_backend_keys(self) -> list[str]:
        """Every backend namespace currently holding at least one entry."""

    @abc.abstractmethod
    def delete_entry(self, backend_key: str, entry_key: str) -> bool:
        """Best-effort removal; ``True`` when a committed entry was removed."""

    @abc.abstractmethod
    def touch(self, backend_key: str, entry_key: str) -> None:
        """Best-effort bump of the entry's recorded last-access stamp."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """Occupancy summary: entry/backend counts, payload bytes, location."""

    @abc.abstractmethod
    def entry_location(self, backend_key: str, entry_key: str) -> str:
        """Human-readable physical address of one entry (for CLI/ops output)."""
