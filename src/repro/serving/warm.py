"""Pre-build and persist search indexes for a benchmark lake.

Run as a module::

    PYTHONPATH=src python -m repro.serving.warm \
        --store .cache/index-store --benchmark ugen --seed 3 \
        --backends overlap d3l

Every requested backend is warmed through
:meth:`~repro.serving.store.IndexStore.load_or_build`: an existing valid
entry is a fast no-op, anything else is built once and persisted.  The CI
``bench-smoke`` job uses this to exercise the whole save/load path (and a
second invocation to prove the warm path) on a tiny lake.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro.benchgen import (
    generate_santos_benchmark,
    generate_tus_benchmark,
    generate_ugen_benchmark,
)
from repro.benchgen.types import Benchmark
from repro.search import (
    D3LSearcher,
    OracleSearcher,
    SantosSearcher,
    StarmieSearcher,
    TableUnionSearcher,
    ValueOverlapSearcher,
)
from repro.serving.store import IndexStore

#: Factories take the benchmark so the oracle can receive its ground truth.
BACKEND_FACTORIES: dict[str, Callable[[Benchmark], TableUnionSearcher]] = {
    "overlap": lambda benchmark: ValueOverlapSearcher(),
    "starmie": lambda benchmark: StarmieSearcher(),
    "d3l": lambda benchmark: D3LSearcher(),
    "santos": lambda benchmark: SantosSearcher(),
    "oracle": lambda benchmark: OracleSearcher(benchmark.ground_truth),
}


def _build_benchmark(name: str, *, num_queries: int, seed: int) -> Benchmark:
    if name == "ugen":
        return generate_ugen_benchmark(num_queries=num_queries, seed=seed)
    if name == "tus":
        return generate_tus_benchmark(
            num_base_tables=6,
            base_rows=60,
            lake_tables_per_base=6,
            num_queries=num_queries,
            seed=seed,
        )
    if name == "santos":
        return generate_santos_benchmark(
            num_base_tables=6,
            base_rows=60,
            lake_tables_per_base=6,
            num_queries=num_queries,
            seed=seed,
        )
    raise ValueError(f"unknown benchmark {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.warm", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--store",
        default=".cache/index-store",
        help="index store root directory (default: %(default)s)",
    )
    parser.add_argument(
        "--benchmark",
        choices=("ugen", "tus", "santos"),
        default="ugen",
        help="benchmark lake to index (default: %(default)s)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        choices=sorted(BACKEND_FACTORIES),
        default=["overlap", "d3l", "santos"],
        help="search backends to warm (default: %(default)s)",
    )
    parser.add_argument("--num-queries", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    benchmark = _build_benchmark(
        args.benchmark, num_queries=args.num_queries, seed=args.seed
    )
    lake = benchmark.lake
    store = IndexStore(args.store)
    print(
        f"warming {len(args.backends)} backend(s) over {args.benchmark!r} "
        f"({lake.num_tables} tables, {lake.num_rows} rows), "
        f"store={store.root}"
    )
    for backend in args.backends:
        searcher = BACKEND_FACTORIES[backend](benchmark)
        cached = store.contains(searcher, lake)
        start = time.perf_counter()
        store.load_or_build(searcher, lake)
        elapsed = time.perf_counter() - start
        action = "loaded" if cached else "built"
        print(
            f"  {backend:>8}: {action} in {elapsed:.3f}s -> "
            f"{store.entry_dir(searcher, lake)}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
