"""Pre-build and persist search indexes for a benchmark lake.

Run as a module::

    PYTHONPATH=src python -m repro.serving.warm \
        --store .cache/index-store --benchmark ugen --seed 3 \
        --backends overlap d3l

This entry point is a **deprecated** compatibility shim: the implementation
moved to the unified CLI (``python -m repro warm`` / ``dust warm``), which
resolves backends and benchmarks through the :mod:`repro.api.registry`
registries.  Invoking it emits a :class:`DeprecationWarning` and forwards
the arguments unchanged.
Every requested backend is warmed through
:meth:`~repro.serving.store.IndexStore.load_or_build`: an existing valid
entry is a fast no-op, a lake whose content drifted from a persisted snapshot
is served by delta-updating that snapshot, and anything else is built once
and persisted.
"""

from __future__ import annotations

import sys
import warnings
from typing import Sequence


def main(argv: Sequence[str] | None = None) -> int:
    from repro.api.cli import main as cli_main

    warnings.warn(
        "python -m repro.serving.warm is deprecated; use `python -m repro warm` "
        "(the arguments are identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    return cli_main(["warm", *argv])


if __name__ == "__main__":
    sys.exit(main())
