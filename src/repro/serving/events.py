"""Per-query latency events: a thread-safe JSONL log with an in-memory tail.

Every query the resident server answers (or rejects) appends one event —
``{"ts", "kind", "query", "backend", "k", "latency_seconds", "status", ...}``
— to an :class:`EventLog`.  Two consumers read them back:

* the **maintenance loop**, which pre-warms the result cache from the most
  recent distinct queries in the in-memory tail, and
* **offline analysis** (the concurrency benchmark, ``/v1/metrics``), which
  summarises latency percentiles with :func:`latency_summary` /
  :func:`read_events`.

Events are plain dicts so the log stays schema-agnostic; the server layers
its own field conventions on top.  With a ``path`` the log is durable JSONL
(one JSON object per line, appended under a lock, flushed per event so a
crashed server loses at most the event in flight); without one it is
memory-only, which is what the unit tests and in-process benchmarks use.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.utils.errors import ServingError


class EventLog:
    """Append-only event sink: optional JSONL file plus a bounded tail.

    ``tail_size`` bounds the in-memory window (the file, when configured,
    keeps everything).  Appends are cheap and thread-safe; readers get
    snapshots, never live references.
    """

    def __init__(self, path: str | Path | None = None, *, tail_size: int = 512) -> None:
        if tail_size < 1:
            raise ServingError(f"tail_size must be positive, got {tail_size}")
        self.path = Path(path) if path is not None else None
        self._tail: deque[dict[str, Any]] = deque(maxlen=tail_size)
        self._lock = threading.Lock()
        self._count = 0
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ write
    def append(self, **fields: Any) -> dict[str, Any]:
        """Record one event; stamps ``ts`` (epoch seconds) unless provided."""
        event = {"ts": time.time(), **fields}
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._tail.append(event)
            self._count += 1
            if self._handle is not None:
                self._handle.write(line + "\n")
                self._handle.flush()
        return event

    # ------------------------------------------------------------------- read
    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent events (all retained ones when ``n`` is None)."""
        with self._lock:
            events = list(self._tail)
        return events if n is None else events[-n:]

    def __len__(self) -> int:
        """Total events appended over the log's lifetime (not the tail size)."""
        with self._lock:
            return self._count

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Flush and close the JSONL file handle; double-close is a no-op."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL event file back into event dicts.

    A truncated final line (the event in flight when a server died) is
    skipped rather than failing the whole read.
    """
    events: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1])."""
    if not values:
        raise ServingError("percentile of an empty sequence is undefined")
    if not 0.0 <= fraction <= 1.0:
        raise ServingError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


def latency_summary(
    events: Iterable[Mapping[str, Any]], *, field: str = "latency_seconds"
) -> dict[str, float | int]:
    """p50/p95/mean/max summary over the events carrying ``field``.

    Events without the field (rejections carry no latency) are skipped;
    an all-skipped input yields a zeroed summary rather than an error so
    metrics endpoints stay total.
    """
    values = [float(event[field]) for event in events if field in event]
    if not values:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "mean": sum(values) / len(values),
        "max": max(values),
    }
