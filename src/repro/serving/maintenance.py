"""Background maintenance between request bursts: re-sync, pre-warm, evict.

The resident server (:mod:`repro.serving.server`) answers queries in request
threads and runs a single :class:`MaintenanceLoop` thread between bursts.
The loop never competes with live traffic: an :class:`ActivityGate` tracks
in-flight queries, the loop waits until the deployment has been idle for a
configured window before starting a cycle, and it checks the gate again
between tasks so a query arriving mid-cycle makes it yield immediately —
maintenance *pauses around queries and resumes when idle*.

One cycle runs three tasks, each a wiring of machinery earlier PRs built:

1. **Re-sync** — :meth:`~repro.api.facade.Discovery.resync` detects lake
   content drift by fingerprint and applies the net delta to every built
   backend through the PR-4/5 refresh protocol (per-shard delta updates on a
   ``ShardedSearcher``, prefilter refits on a ``CascadeSearcher``, store
   re-persistence, result-cache invalidation).  Queries served before the
   cycle see the previously indexed content; queries after it see the
   mutated lake — no restart.
2. **Pre-warm** — the re-sync just emptied the result caches, so the loop
   replays the most recent distinct queries from the event-log tail through
   the facade, refilling the LRU before the next burst arrives.
3. **Evict** — :meth:`~repro.serving.store.IndexStore.evict_cold` trims
   superseded index snapshots the mutation history accumulated on disk.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.datalake.table import Table
from repro.serving.events import EventLog
from repro.utils.errors import ReproError, ServingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> serving)
    from repro.api.facade import Discovery
    from repro.ingest.controller import IngestController
    from repro.serving.store import IndexStore


class ActivityGate:
    """Tracks in-flight queries so maintenance can yield to live traffic.

    Request handlers wrap query execution in :meth:`enter`/:meth:`leave`
    (or the :meth:`active` context manager).  The maintenance loop calls
    :meth:`wait_idle` before a cycle and reads :attr:`busy` between tasks.

    The gate also hands maintenance an **exclusive** mode for the one task
    that must never race live queries — applying an index delta.  While
    exclusive is held, new queries block in :meth:`enter` (they resume, in
    order, the moment it is released); exclusive acquisition itself waits for
    all in-flight queries to drain, with a timeout so constant traffic makes
    maintenance yield instead of stalling requests indefinitely.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._active = 0
        self._exclusive = False
        self._last_activity = time.monotonic()

    def enter(self) -> None:
        with self._condition:
            while self._exclusive:
                self._condition.wait()
            self._active += 1
            self._last_activity = time.monotonic()

    def leave(self) -> None:
        with self._condition:
            if self._active <= 0:
                raise ServingError("ActivityGate.leave() without a matching enter()")
            self._active -= 1
            self._last_activity = time.monotonic()
            self._condition.notify_all()

    def acquire_exclusive(self, timeout: float | None = None) -> bool:
        """Pause the request path: wait for in-flight queries, block new ones.

        Returns False (acquiring nothing) when the deployment did not drain
        within ``timeout`` seconds — the caller should yield and retry on a
        later cycle.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._exclusive or self._active > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
            self._exclusive = True
            return True

    def release_exclusive(self) -> None:
        """Resume the request path; blocked queries proceed immediately."""
        with self._condition:
            if not self._exclusive:
                raise ServingError(
                    "ActivityGate.release_exclusive() without acquire_exclusive()"
                )
            self._exclusive = False
            self._last_activity = time.monotonic()
            self._condition.notify_all()

    class _Active:
        def __init__(self, gate: "ActivityGate") -> None:
            self._gate = gate

        def __enter__(self) -> None:
            self._gate.enter()

        def __exit__(self, exc_type, exc, tb) -> None:
            self._gate.leave()

    def active(self) -> "ActivityGate._Active":
        """Context manager marking one query in flight."""
        return ActivityGate._Active(self)

    @property
    def busy(self) -> bool:
        """Whether any query is in flight right now."""
        with self._lock:
            return self._active > 0

    def idle_for(self) -> float:
        """Seconds since the last query started or finished (inf if never busy)."""
        with self._lock:
            if self._active > 0:
                return 0.0
            return time.monotonic() - self._last_activity

    def wait_idle(self, idle_seconds: float, stop: threading.Event) -> bool:
        """Block until idle for ``idle_seconds`` or ``stop`` is set.

        Returns True when the idle window was reached, False when stopped.
        """
        while not stop.is_set():
            remaining = idle_seconds - self.idle_for()
            if remaining <= 0:
                return True
            # Sleep on the stop event (so shutdown is immediate) for the
            # shorter of the remaining idle window and a polling bound that
            # keeps a busy server from pinning this thread on the condition.
            stop.wait(min(max(remaining, 0.01), 0.25))
        return False


class MaintenanceLoop:
    """The resident server's background maintenance thread.

    Parameters
    ----------
    discovery:
        The served :class:`~repro.api.facade.Discovery` deployment.
    gate:
        The :class:`ActivityGate` the request path reports through.
    interval_seconds:
        Minimum delay between the *end* of one cycle and the start of the
        next, so an idle server does not spin.
    idle_seconds:
        How long the deployment must be quiet before a cycle may start.
    event_log:
        Optional :class:`~repro.serving.events.EventLog` whose tail drives
        cache pre-warming.
    resolve_query:
        Maps an event's recorded query-table name back to a
        :class:`~repro.datalake.table.Table` (the server resolves against
        its registered query tables and the lake).  Unresolvable names are
        skipped — the tail may reference inline wire tables the server no
        longer holds.
    prewarm_queries:
        Upper bound of distinct recent queries replayed per cycle (0
        disables pre-warming).
    store:
        Optional :class:`~repro.serving.store.IndexStore` to trim with
        ``evict_cold`` each cycle.
    """

    def __init__(
        self,
        discovery: "Discovery",
        *,
        gate: ActivityGate | None = None,
        interval_seconds: float = 1.0,
        idle_seconds: float = 0.5,
        event_log: EventLog | None = None,
        resolve_query: Callable[[str], Table | None] | None = None,
        prewarm_queries: int = 8,
        store: "IndexStore | None" = None,
        exclusive_timeout: float = 1.0,
        ingest: "IngestController | None" = None,
    ) -> None:
        if interval_seconds < 0 or idle_seconds < 0:
            raise ServingError(
                "maintenance interval/idle seconds must be non-negative, got "
                f"{interval_seconds}/{idle_seconds}"
            )
        if prewarm_queries < 0:
            raise ServingError(
                f"prewarm_queries must be non-negative, got {prewarm_queries}"
            )
        self.discovery = discovery
        self.gate = gate if gate is not None else ActivityGate()
        self.interval_seconds = interval_seconds
        self.idle_seconds = idle_seconds
        self.event_log = event_log
        self.resolve_query = resolve_query
        self.prewarm_queries = prewarm_queries
        self.store = store
        self.exclusive_timeout = exclusive_timeout
        #: Optional streaming-ingest controller; when present each cycle
        #: flushes due micro-batches first (the freshest possible index for
        #: the re-sync/pre-warm that follows) and checks shard rebalancing
        #: last (the most expensive, least urgent task).
        self.ingest = ingest
        #: Serializes cycles: the background thread and an on-demand
        #: ``/v1/refresh`` may ask for one concurrently.
        self._cycle_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._stats = {
            "cycles": 0,
            "resyncs": 0,
            "backends_resynced": 0,
            "prewarmed": 0,
            "evicted_entries": 0,
            "batches_applied": 0,
            "events_applied": 0,
            "rebalances": 0,
            "yields": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------ stats
    @property
    def stats(self) -> dict[str, int]:
        """Counters over the loop's lifetime (snapshot)."""
        with self._lock:
            return dict(self._stats)

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[key] += amount

    # ------------------------------------------------------------------ cycle
    def run_cycle(self) -> dict[str, int]:
        """Run one maintenance cycle now; returns what it did.

        Public so tests and benchmarks can drive maintenance
        deterministically instead of sleeping through the idle window.  A
        cycle yields (returns early) as soon as a query shows up between
        tasks.
        """
        with self._cycle_lock:
            return self._run_cycle_locked()

    def _run_cycle_locked(self) -> dict[str, int]:
        done = {
            "resynced_backends": 0,
            "prewarmed": 0,
            "evicted": 0,
            "batches_applied": 0,
            "rebalanced": 0,
            "yielded": 0,
        }
        self._bump("cycles")
        # Streaming ingest flushes first: the micro-batcher takes the gate
        # exclusively itself (per batch), and the re-sync below then sees a
        # lake whose pending writes already landed.
        if self.ingest is not None:
            try:
                reports = self.ingest.flush_if_due()
            except ReproError:
                # Gate drain timeout — events stay queued for a later cycle.
                self._bump("yields")
                done["yielded"] = 1
                reports = []
            if reports:
                done["batches_applied"] = len(reports)
                self._bump("batches_applied", len(reports))
                self._bump(
                    "events_applied", sum(r.get("events", 0) for r in reports)
                )
        # Re-sync mutates live indexes, so it runs with the gate held
        # exclusively: in-flight queries drain first, arriving queries wait
        # at enter() until the delta is applied.  Under constant traffic the
        # drain times out and the cycle yields rather than stalling requests.
        if not self.gate.acquire_exclusive(timeout=self.exclusive_timeout):
            self._bump("yields")
            done["yielded"] = 1
            return done
        try:
            moved = self.discovery.resync()
        except ReproError:
            self._bump("errors")
            return done
        finally:
            self.gate.release_exclusive()
        if moved:
            self._bump("resyncs")
            self._bump("backends_resynced", len(moved))
            done["resynced_backends"] = len(moved)
        if self.gate.busy:
            self._bump("yields")
            done["yielded"] = 1
            return done
        done["prewarmed"] = self._prewarm()
        if self.gate.busy:
            self._bump("yields")
            done["yielded"] = 1
            return done
        if self.store is not None:
            evicted = self.store.evict_cold()
            self._bump("evicted_entries", evicted)
            done["evicted"] = evicted
        if self.gate.busy:
            self._bump("yields")
            done["yielded"] = 1
            return done
        # Rebalancing runs last: it is the most expensive task and only
        # matters once size skew has drifted, which takes many batches.
        if self.ingest is not None:
            try:
                rebalanced = [
                    report
                    for report in self.ingest.maybe_rebalance()
                    if report.get("rebalanced")
                ]
            except ReproError:
                self._bump("errors")
                rebalanced = []
            if rebalanced:
                done["rebalanced"] = len(rebalanced)
                self._bump("rebalances", len(rebalanced))
        return done

    def _prewarm(self) -> int:
        """Replay recent distinct queries so the LRU is hot after a re-sync."""
        if (
            self.prewarm_queries == 0
            or self.event_log is None
            or self.resolve_query is None
        ):
            return 0
        replayed = 0
        seen: set[tuple[str, str | None, int | None]] = set()
        for event in reversed(self.event_log.tail()):
            if replayed >= self.prewarm_queries or self.gate.busy:
                break
            if event.get("status") != "ok" or event.get("kind") != "search":
                continue
            key = (str(event.get("query")), event.get("backend"), event.get("k"))
            if key in seen:
                continue
            seen.add(key)
            table = self.resolve_query(key[0])
            if table is None:
                continue
            try:
                k = int(event["k"]) if event.get("k") is not None else None
                self.discovery.search(table, k, backend=event.get("backend"))
                replayed += 1
            except ReproError:
                self._bump("errors")
        if replayed:
            self._bump("prewarmed", replayed)
        return replayed

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "MaintenanceLoop":
        """Start the background thread; starting twice is an error."""
        if self._thread is not None:
            raise ServingError("MaintenanceLoop is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self.gate.wait_idle(self.idle_seconds, self._stop):
                break  # stopped while waiting
            try:
                self.run_cycle()
            except Exception:
                # The loop must outlive any single bad cycle: a failed
                # maintenance pass degrades freshness, never availability.
                self._bump("errors")
            self._stop.wait(self.interval_seconds)

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it; double-stop is a no-op."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
