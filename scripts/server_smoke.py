"""CI smoke for the resident discovery server (``python -m repro serve``).

Starts the server as a real subprocess on an ephemeral port, discovers the
bound address from the ``SERVING http://host:port`` readiness line, and then:

1. checks ``/v1/health``,
2. issues an HTTP search and asserts parity with ``python -m repro search
   --json`` for the same benchmark query (canonical serializations —
   volatile ``timings`` stripped — must be bit-identical),
3. reads ``/v1/metrics`` and checks the served counter,
4. round-trips streaming ingestion: ``python -m repro ingest`` pipes a
   JSONL add through ``POST /v1/ingest``, a follow-up query finds the
   ingested table, and ``/v1/metrics`` reports the applied batch in its
   ``lake``/``ingest`` blocks,
5. sends SIGTERM and requires a clean exit code 0.

Run from the repo root::

    python scripts/server_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api.schema import canonical_result_payload, dump_result  # noqa: E402
from repro.benchgen import generate_ugen_benchmark  # noqa: E402

#: CLI arguments that pin both processes to the same deterministic lake.
BENCH_ARGS = ["--benchmark", "ugen", "--num-queries", "2", "--seed", "3"]
K = 4


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def _wait_for_ready(proc: subprocess.Popen) -> str | None:
    """Read the subprocess's stdout until the readiness line appears."""
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            return None  # the server died before binding
        print(f"serve: {line.rstrip()}")
        if line.startswith("SERVING "):
            return line.split(None, 1)[1].strip()


def main() -> int:
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *BENCH_ARGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=ROOT,
        text=True,
    )
    try:
        url = _wait_for_ready(proc)
        if url is None:
            return _fail(f"server exited (code {proc.poll()}) before binding")
        print(f"server ready at {url}")

        health = json.load(urllib.request.urlopen(url + "/v1/health"))
        if health.get("status") != "ok":
            return _fail(f"/v1/health returned {health}")

        request = urllib.request.Request(
            url + "/v1/search",
            data=json.dumps({"query_index": 0, "k": K}).encode(),
            method="POST",
        )
        wire_body = urllib.request.urlopen(request).read()
        cli = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "search",
                *BENCH_ARGS,
                "--query",
                "0",
                "--k",
                str(K),
                "--json",
            ],
            env=env,
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        wire = dump_result(canonical_result_payload(json.loads(wire_body)))
        direct = dump_result(canonical_result_payload(json.loads(cli.stdout)))
        if wire != direct:
            return _fail("wire response and CLI --json output diverge")
        print("parity: wire /v1/search == CLI search --json (canonical bytes)")

        metrics = json.load(urllib.request.urlopen(url + "/v1/metrics"))
        counters = metrics["counters"]
        if counters["served"] != 1 or counters["errors"] != 0:
            return _fail(f"unexpected counters {counters}")
        print(f"metrics: {counters}")

        # Streaming ingest round-trip: CLI -> POST /v1/ingest -> query.  The
        # streamed table clones benchmark query 0's content, so re-running
        # that query must now surface it (identical content, top overlap).
        version_before = metrics["lake"]["version"]
        benchmark = generate_ugen_benchmark(num_queries=2, seed=3)
        query = benchmark.query_tables[0]
        streamed = {
            "name": "smoke_stream",
            "columns": list(query.columns),
            "rows": [list(row) for row in query.rows],
        }
        events_path = ROOT / ".cache" / "smoke_ingest.jsonl"
        events_path.parent.mkdir(exist_ok=True)
        events_path.write_text(
            json.dumps({"op": "add", "name": "smoke_stream", "table": streamed})
            + "\n"
        )
        try:
            ingest = subprocess.run(
                [
                    sys.executable, "-m", "repro", "ingest",
                    "--url", url, "--events", str(events_path),
                ],
                env=env,
                cwd=ROOT,
                capture_output=True,
                text=True,
                check=True,
            )
        finally:
            events_path.unlink(missing_ok=True)
        print(f"ingest: {ingest.stdout.strip()}")
        if "1 micro-batch(es) applied" not in ingest.stdout:
            return _fail(f"ingest CLI did not apply a batch: {ingest.stdout!r}")
        request = urllib.request.Request(
            url + "/v1/search",
            data=json.dumps({"query_index": 0, "k": K}).encode(),
            method="POST",
        )
        hits = json.loads(urllib.request.urlopen(request).read())
        hit_tables = {hit["table"] for hit in hits["search_results"]}
        if "smoke_stream" not in hit_tables:
            return _fail(f"ingested table not served back, got {hit_tables}")
        metrics = json.load(urllib.request.urlopen(url + "/v1/metrics"))
        if metrics["lake"]["version"] <= version_before:
            return _fail(f"lake version did not advance: {metrics['lake']}")
        if metrics["ingest"]["batches_applied"] < 1:
            return _fail(f"ingest stats missing the batch: {metrics['ingest']}")
        print(
            "ingest round-trip: CLI JSONL -> /v1/ingest -> searchable "
            f"(lake version {version_before} -> {metrics['lake']['version']})"
        )
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            return _fail("server did not exit within 30s of SIGTERM")
        # Surface whatever the server printed while shutting down.
        if proc.stdout is not None:
            tail = proc.stdout.read()
            if tail:
                print(f"serve: {tail.rstrip()}")

    if code != 0:
        return _fail(f"server exited with code {code} after SIGTERM")
    print("PASS: clean SIGTERM shutdown (exit 0)")
    return 0


if __name__ == "__main__":
    # Give the whole smoke a hard ceiling so a wedged server cannot hang CI.
    signal.signal(signal.SIGALRM, lambda *_: sys.exit("FAIL: smoke timed out"))
    signal.alarm(270)
    sys.exit(main())
