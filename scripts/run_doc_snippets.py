"""Extract and execute the fenced python snippets in the documentation.

Documentation rots silently unless it is executed; this runner is the CI
`docs` job's teeth.  It scans markdown files for fenced code blocks whose
info string is exactly ``python`` (blocks tagged ``text``, ``bash``, or
``python no-run`` are skipped), then executes each file's snippets **in
order, in one shared namespace per file** — so later snippets in a page can
build on earlier ones, exactly as a reader would run them.

Each file runs in its own temporary working directory, so snippets that
write relative paths (e.g. ``.cache/index-store``) never dirty the
repository, and with ``src/`` on ``sys.path`` so the docs exercise the
checked-out code, not an installed copy.

Run directly::

    python scripts/run_doc_snippets.py            # docs/*.md + README.md
    python scripts/run_doc_snippets.py docs/api.md --list
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ```python ... ``` fences; the info string must be exactly "python"
#: (e.g. "python no-run" is deliberately not matched).
_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)


def extract_snippets(markdown: str) -> list[str]:
    """Return the executable python snippets of one markdown document."""
    return [match.group(1) for match in _FENCE.finditer(markdown)]


def run_file(path: Path) -> int:
    """Execute every snippet of ``path``; returns the number executed."""
    snippets = extract_snippets(path.read_text())
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        os.chdir(scratch)
        try:
            for number, snippet in enumerate(snippets, start=1):
                try:
                    exec(compile(snippet, f"{path}#snippet{number}", "exec"), namespace)
                except Exception:
                    sys.stderr.write(
                        f"\nFAILED: {path} snippet {number}/{len(snippets)}:\n"
                        + "".join(
                            f"    {line}\n" for line in snippet.strip().splitlines()
                        )
                    )
                    raise
        finally:
            os.chdir(cwd)
    return len(snippets)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to run (default: docs/*.md and README.md)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the snippets that would run, without executing them",
    )
    args = parser.parse_args(argv)

    files = args.files or [*sorted((REPO_ROOT / "docs").glob("*.md")), REPO_ROOT / "README.md"]
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    total = 0
    for path in files:
        if args.list:
            snippets = extract_snippets(path.read_text())
            print(f"{path}: {len(snippets)} snippet(s)")
            total += len(snippets)
            continue
        count = run_file(path)
        total += count
        print(f"ok: {path} ({count} snippet(s))")
    print(f"{total} documentation snippet(s) {'found' if args.list else 'executed'} green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
