"""Capture diversification selections on fixed fixtures for refactor parity checks.

Run with the seed code to produce a baseline JSON, then again after the
refactor with --check to assert the selections are unchanged.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro import DustPipeline, PipelineConfig
from repro.benchgen import generate_ugen_benchmark
from repro.core import DustConfig, DustDiversifier
from repro.core.pruning import prune_by_table
from repro.diversify import (
    CLTDiversifier,
    DiversificationRequest,
    GMCDiversifier,
    GNEDiversifier,
    MaxMinDiversifier,
    MaxSumDiversifier,
    RandomDiversifier,
    SwapDiversifier,
)
from repro.embeddings import CellLevelColumnEncoder, FastTextLikeModel, GloveLikeModel
from repro.search import ValueOverlapSearcher

OUT = "scripts/baseline_selections.json"


def diversifier_selections() -> dict:
    out = {}
    for seed in range(12):
        rng = np.random.default_rng(seed)
        n_clusters = 4 + seed % 4
        centers = rng.standard_normal((n_clusters, 16)) * 4
        candidates = np.vstack(
            [center + 0.05 * rng.standard_normal((20, 16)) for center in centers]
        )
        query = centers[0] + 0.05 * rng.standard_normal((4, 16))
        table_ids = [f"t{i // 10}" for i in range(candidates.shape[0])]
        k = 5 + seed % 3
        methods = {
            "gmc": GMCDiversifier(),
            "gne": GNEDiversifier(iterations=2, max_swaps=40, seed=seed),
            "clt": CLTDiversifier(),
            "swap": SwapDiversifier(),
            "maxmin": MaxMinDiversifier(),
            "maxsum": MaxSumDiversifier(),
            "random": RandomDiversifier(seed=seed),
        }
        for name, method in methods.items():
            request = DiversificationRequest(query, candidates, k=k)
            out[f"{name}/{seed}"] = method.select(request)
        dust_request = DiversificationRequest(query, candidates, k=k)
        out[f"dust/{seed}"] = DustDiversifier(
            DustConfig(prune_limit=60)
        ).select(dust_request, table_ids=table_ids)
        out[f"prune/{seed}"] = prune_by_table(
            candidates, table_ids, limit=25, metric="cosine"
        )
    return out


def pipeline_selections() -> dict:
    bench = generate_ugen_benchmark(num_queries=2, seed=17)
    pipeline = DustPipeline(
        searcher=ValueOverlapSearcher(),
        column_encoder=CellLevelColumnEncoder(FastTextLikeModel()),
        tuple_encoder=GloveLikeModel(dimension=128),
        config=PipelineConfig(k=12, num_search_tables=6, dust=DustConfig(prune_limit=500)),
    ).index(bench.lake)
    out = {}
    for query in bench.query_tables:
        result = pipeline.run(query)
        out[f"pipeline/{query.name}"] = [
            [t.source_table, t.source_row] for t in result.selected_tuples
        ]
        out[f"pipeline_emb/{query.name}"] = [
            float(x) for x in np.asarray(result.selected_embeddings).sum(axis=1)
        ]
    return out


def main() -> None:
    captured = {**diversifier_selections(), **pipeline_selections()}
    if "--check" in sys.argv:
        with open(OUT) as handle:
            baseline = json.load(handle)
        mismatches = []
        for key, expected in baseline.items():
            if captured.get(key) != expected:
                mismatches.append(key)
        if mismatches:
            print(f"MISMATCH in {len(mismatches)} entries:")
            for key in mismatches:
                print(f"  {key}: baseline={baseline[key]} now={captured.get(key)}")
            sys.exit(1)
        print(f"OK: {len(baseline)} selection sets identical to the seed baseline")
    else:
        with open(OUT, "w") as handle:
            json.dump(captured, handle, indent=1)
        print(f"captured {len(captured)} selection sets -> {OUT}")


if __name__ == "__main__":
    main()
