"""Tests for incremental lake mutation + delta index maintenance.

Covers the versioned :class:`DataLake` mutation API (journal netting,
fingerprint diffs), the :meth:`TableUnionSearcher.update_index`/``refresh``
protocol (per-backend delta-vs-rebuild ranking parity, rebuild fallback), the
delta-aware :class:`IndexStore`, :meth:`QueryService.refresh` cache
invalidation and the lazy :meth:`Discovery.refresh` facade semantics.
"""

import json

import pytest

import repro.datalake.lake as lake_module
from repro.api import Discovery
from repro.benchgen import generate_tus_benchmark
from repro.datalake import DataLake, LakeDelta, Table, diff_table_fingerprints
from repro.search import (
    D3LSearcher,
    OracleSearcher,
    SantosSearcher,
    StarmieSearcher,
    ValueOverlapSearcher,
)
from repro.search.base import TableUnionSearcher
from repro.serving import IndexStore, QueryService
from repro.utils.errors import (
    ConfigurationError,
    DataLakeError,
    IndexDeltaUnsupported,
    SearchError,
    ServingError,
)


@pytest.fixture(scope="module")
def tus_bench():
    """A small TUS-style benchmark with ground truth (for the oracle)."""
    return generate_tus_benchmark(
        num_base_tables=4, base_rows=30, lake_tables_per_base=4, num_queries=2, seed=11
    )


BACKEND_FACTORIES = {
    "overlap": lambda bench: ValueOverlapSearcher(),
    "starmie": lambda bench: StarmieSearcher(),
    "d3l": lambda bench: D3LSearcher(),
    "santos": lambda bench: SantosSearcher(),
    "oracle": lambda bench: OracleSearcher(bench.ground_truth),
}


def make_table(name: str, seed: str = "x") -> Table:
    return Table(
        name=name,
        columns=["city", "population"],
        rows=[(f"{seed}ville{i}", str(1000 + i)) for i in range(6)],
    )


def fresh_lake(bench) -> DataLake:
    """An independent copy of the benchmark lake (safe to mutate)."""
    return DataLake((table.copy() for table in bench.lake), name=bench.lake.name)


def mutate_tenth(lake: DataLake, bench) -> None:
    """Standard small mutation: one add, one remove, one in-place replace."""
    protected = {name for names in bench.ground_truth.values() for name in names}
    removable = [table.name for table in lake if table.name not in protected]
    lake.remove_table(removable[0])
    lake.add_table(make_table("zz_added"))
    target = lake.get(removable[1])
    grown = target.copy()
    grown.append_rows([tuple(f"new{i}" for i in range(target.num_columns))])
    lake.replace_table(grown)


def rankings(searcher, queries, k=8):
    return [
        [(hit.table_name, hit.score) for hit in searcher.search(query, k)]
        for query in queries
    ]


# --------------------------------------------------------------------- datalake
class TestLakeVersioning:
    def test_constructor_seeds_without_journaling(self):
        # Seed tables are the version-0 state, not mutations: constructing a
        # lake burns no journal entries and version-0 consumers see no delta.
        lake = DataLake([make_table("a"), make_table("b")])
        assert lake.version == 0
        delta = lake.changes_since(0)
        assert delta is not None and delta.is_empty

    def test_construction_churn_keeps_journal_window(self, monkeypatch):
        # Regression: seeding used to journal every table, so building a
        # large lake exhausted MAX_JOURNAL_ENTRIES and forced version-0
        # consumers into spurious full rebuilds (changes_since -> None).
        monkeypatch.setattr(lake_module, "MAX_JOURNAL_ENTRIES", 4)
        lake = DataLake([make_table(f"seed{i}") for i in range(32)])
        delta = lake.changes_since(0)
        assert delta is not None and delta.is_empty
        lake.add_table(make_table("late"))
        assert lake.changes_since(0).added == ("late",)

    def test_mutations_bump_version_and_journal(self):
        lake = DataLake([make_table("a")])
        base = lake.version
        lake.add_table(make_table("b"))
        lake.remove_table("a")
        delta = lake.changes_since(base)
        assert delta == LakeDelta(base_version=base, version=lake.version, added=("b",), removed=("a",))

    def test_add_then_remove_cancels(self):
        lake = DataLake([make_table("a")])
        base = lake.version
        lake.add_table(make_table("b"))
        lake.remove_table("b")
        delta = lake.changes_since(base)
        assert delta.is_empty and delta.num_changes == 0

    def test_replace_appears_in_both_lists(self):
        lake = DataLake([make_table("a")])
        base = lake.version
        lake.replace_table(make_table("a", seed="y"))
        delta = lake.changes_since(base)
        assert delta.added == ("a",) and delta.removed == ("a",)

    def test_replace_identical_content_is_noop(self):
        lake = DataLake([make_table("a")])
        base = lake.version
        previous = lake.replace_table(make_table("a"))
        assert previous.name == "a"
        assert lake.version == base
        assert lake.changes_since(base).is_empty

    def test_replace_missing_raises(self):
        lake = DataLake([make_table("a")])
        with pytest.raises(DataLakeError):
            lake.replace_table(make_table("ghost"))

    def test_touch_registers_inplace_mutation(self):
        lake = DataLake([make_table("a")])
        base = lake.version
        lake.get("a").append_rows([("late", "1")])
        assert lake.changes_since(base).is_empty  # append alone is invisible
        lake.touch("a")
        delta = lake.changes_since(base)
        assert delta.added == ("a",) and delta.removed == ("a",)
        with pytest.raises(DataLakeError):
            lake.touch("ghost")

    def test_future_version_returns_none(self):
        lake = DataLake([make_table("a")])
        assert lake.changes_since(lake.version + 1) is None

    def test_journal_floor_returns_none(self, monkeypatch):
        monkeypatch.setattr(lake_module, "MAX_JOURNAL_ENTRIES", 4)
        lake = DataLake()
        for i in range(8):
            lake.add_table(make_table(f"t{i}"))
        assert lake.changes_since(0) is None  # predates the retained window
        recent = lake.changes_since(lake.version - 2)
        assert recent is not None and len(recent.added) == 2

    def test_table_fingerprints_see_inplace_mutation(self):
        lake = DataLake([make_table("a"), make_table("b")])
        before = lake.table_fingerprints()
        lake.get("a").append_rows([("extra", "1")])
        added, removed = diff_table_fingerprints(before, lake.table_fingerprints())
        assert added == ["a"] and removed == ["a"]


class TestJournalCompaction:
    def test_trim_never_splits_a_replace_pair(self, monkeypatch):
        # Regression: the journal trim used to cut mid-group, so a consumer
        # whose anchor landed between a replace's remove+add entries (same
        # version) was served a spurious add-only delta.  The trim now
        # extends to the group boundary: every retained entry's version is
        # strictly above the floor.
        monkeypatch.setattr(lake_module, "MAX_JOURNAL_ENTRIES", 4)
        lake = DataLake([make_table("a"), make_table("b")])
        lake.replace_table(make_table("a", seed="v1"))  # 2 entries at one version
        lake.replace_table(make_table("b", seed="v1"))  # trim trips here
        lake.add_table(make_table("c"))
        assert all(
            version > lake.journal_floor for version, _, _ in lake._journal
        )
        # A consumer anchored exactly at the floor is served from the journal
        # and sees complete replace pairs, never an orphaned add.
        delta = lake.changes_since(lake.journal_floor)
        assert delta is not None
        assert set(delta.removed) <= set(delta.added) | {"a", "b"}
        for name in delta.added:
            if name in ("a", "b"):  # replaced tables appear in both lists
                assert name in delta.removed

    def test_floor_boundary_semantics(self, monkeypatch):
        monkeypatch.setattr(lake_module, "MAX_JOURNAL_ENTRIES", 4)
        lake = DataLake()
        for i in range(8):
            lake.add_table(make_table(f"t{i}"))
        floor = lake.journal_floor
        assert floor > 0
        assert lake.changes_since(floor) is not None  # at the floor: served
        assert lake.changes_since(floor - 1) is None  # past it, no checkpoint
        assert lake.journal_dropped == 8 - lake.journal_depth

    def test_checkpoint_serves_consumers_past_the_floor(self, monkeypatch):
        monkeypatch.setattr(lake_module, "MAX_JOURNAL_ENTRIES", 4)
        lake = DataLake([make_table("seed")])
        anchor = lake.checkpoint()
        for i in range(8):
            lake.add_table(make_table(f"t{i}"))
        lake.remove_table("seed")
        assert anchor < lake.journal_floor
        delta = lake.changes_since(anchor)
        assert delta is not None
        assert set(delta.added) == {f"t{i}" for i in range(8)}
        assert delta.removed == ("seed",)

    def test_checkpoint_ring_is_bounded(self):
        lake = DataLake()
        for i in range(lake_module.MAX_CHECKPOINTS + 5):
            lake.add_table(make_table(f"t{i}"))
            lake.checkpoint()
        versions = lake.checkpoint_versions
        assert len(versions) == lake_module.MAX_CHECKPOINTS
        assert versions == sorted(versions)
        # The oldest checkpoints were evicted; a consumer anchored on an
        # evicted version past the floor gets the honest "rebuild" answer.
        assert versions[0] == 6

    def test_checkpoint_at_current_version_yields_empty_delta(self):
        lake = DataLake([make_table("a")])
        lake.add_table(make_table("b"))
        version = lake.checkpoint()
        delta = lake.changes_since(version)
        assert delta is not None and delta.is_empty
        lake.replace_table(make_table("b", seed="v2"))
        delta = lake.changes_since(version)
        assert delta.added == ("b",) and delta.removed == ("b",)


# ----------------------------------------------------------- searcher protocol
class RebuildOnlySearcher(TableUnionSearcher):
    """A backend with no incremental path: update_index must rebuild."""

    def __init__(self):
        super().__init__()
        self.builds = 0

    def _build_index(self, lake):
        self.builds += 1

    def _score_table(self, query_table, lake_table):
        return float(lake_table.num_rows)


class TestUpdateProtocol:
    def test_update_before_index_raises(self):
        with pytest.raises(SearchError):
            RebuildOnlySearcher().update_index(added=[make_table("a")])

    def test_default_delta_falls_back_to_rebuild(self):
        lake = DataLake([make_table("a")])
        searcher = RebuildOnlySearcher().index(lake)
        assert searcher.builds == 1
        lake.add_table(make_table("b"))
        searcher.update_index(added=[lake.get("b")])
        assert searcher.builds == 2  # IndexDeltaUnsupported -> full rebuild
        assert {hit.table_name for hit in searcher.search(make_table("q"), 5)} == {"a", "b"}

    def test_update_validates_membership(self):
        lake = DataLake([make_table("a")])
        searcher = RebuildOnlySearcher().index(lake)
        with pytest.raises(SearchError):
            searcher.update_index(added=[make_table("stranger")])
        with pytest.raises(SearchError):
            searcher.update_index(removed=["a"])  # still a member

    def test_empty_delta_is_noop(self):
        lake = DataLake([make_table("a")])
        searcher = RebuildOnlySearcher().index(lake)
        searcher.update_index()
        assert searcher.builds == 1

    def test_refresh_noop_when_unchanged(self):
        lake = DataLake([make_table("a")])
        searcher = RebuildOnlySearcher().index(lake)
        searcher.refresh()
        assert searcher.builds == 1

    def test_refresh_sees_inplace_append_without_touch(self):
        lake = DataLake([make_table("a")])
        searcher = RebuildOnlySearcher().index(lake)
        lake.get("a").append_rows([("grown", "1")])
        searcher.refresh()
        assert searcher.builds == 2


# ------------------------------------------------------------ backend parity
class TestBackendDeltaParity:
    @pytest.mark.parametrize("backend", sorted(BACKEND_FACTORIES))
    def test_refresh_matches_rebuild_bit_for_bit(self, tus_bench, backend):
        lake = fresh_lake(tus_bench)
        maintained = BACKEND_FACTORIES[backend](tus_bench).index(lake)
        mutate_tenth(lake, tus_bench)
        maintained.refresh()
        rebuilt = BACKEND_FACTORIES[backend](tus_bench).index(lake)
        assert rankings(maintained, tus_bench.query_tables) == rankings(
            rebuilt, tus_bench.query_tables
        )

    @pytest.mark.parametrize("backend", ["overlap", "starmie", "d3l", "santos"])
    def test_delta_path_avoids_rebuild(self, tus_bench, backend, monkeypatch):
        lake = fresh_lake(tus_bench)
        searcher = BACKEND_FACTORIES[backend](tus_bench).index(lake)

        def forbid_rebuild(mutated_lake):
            raise AssertionError("delta update unexpectedly fell back to a rebuild")

        monkeypatch.setattr(searcher, "_build_index", forbid_rebuild)
        mutate_tenth(lake, tus_bench)
        searcher.refresh()

    def test_oracle_rejects_removing_labelled_table(self, tus_bench):
        lake = fresh_lake(tus_bench)
        searcher = OracleSearcher(tus_bench.ground_truth).index(lake)
        labelled = next(iter(tus_bench.ground_truth.values()))[0]
        lake.remove_table(labelled)
        with pytest.raises(SearchError):
            searcher.refresh()

    def test_repeated_refresh_converges(self, tus_bench):
        lake = fresh_lake(tus_bench)
        searcher = ValueOverlapSearcher().index(lake)
        for round_number in range(3):
            lake.add_table(make_table(f"round{round_number}", seed=str(round_number)))
            searcher.refresh()
        rebuilt = ValueOverlapSearcher().index(lake)
        assert rankings(searcher, tus_bench.query_tables) == rankings(
            rebuilt, tus_bench.query_tables
        )


class TestStarmieCorpusDelta:
    def oversized_table(self, name="huge"):
        # One column whose serialized document far exceeds the 512-token
        # limit, so its embedding depends on the fitted TF-IDF state.
        return Table(
            name=name,
            columns=["words"],
            rows=[(f"token{i}",) for i in range(700)],
        )

    def test_oversized_retained_table_forces_rebuild(self, tus_bench):
        lake = fresh_lake(tus_bench)
        lake.add_table(self.oversized_table())
        searcher = StarmieSearcher().index(lake)
        lake.add_table(make_table("fresh"))  # changes the corpus statistics
        with pytest.raises(IndexDeltaUnsupported):
            searcher._apply_index_delta([lake.get("fresh")], [])
        searcher.refresh()  # the public path rebuilds instead of raising
        rebuilt = StarmieSearcher().index(lake)
        assert rankings(searcher, tus_bench.query_tables) == rankings(
            rebuilt, tus_bench.query_tables
        )

    def test_oversized_added_table_keeps_delta(self, tus_bench, monkeypatch):
        # An oversized *added* table is encoded under the updated corpus, so
        # the delta path still applies as long as retained tables are small.
        lake = fresh_lake(tus_bench)
        searcher = StarmieSearcher().index(lake)
        monkeypatch.setattr(
            searcher,
            "_build_index",
            lambda mutated: (_ for _ in ()).throw(AssertionError("rebuilt")),
        )
        lake.add_table(self.oversized_table())
        searcher.refresh()
        queries = tus_bench.query_tables
        restored = StarmieSearcher().index(fresh_lake_with(lake))
        assert rankings(searcher, queries) == rankings(restored, queries)


def fresh_lake_with(lake: DataLake) -> DataLake:
    return DataLake((table.copy() for table in lake), name=lake.name)


# ------------------------------------------------------------------ IndexStore
class TestStoreDelta:
    def test_load_or_build_updates_prior_snapshot(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path)
        lake = fresh_lake(tus_bench)
        store.load_or_build(D3LSearcher(), lake)  # snapshot A persisted

        mutate_tenth(lake, tus_bench)
        warm = D3LSearcher()

        def forbid_build(mutated_lake):
            raise AssertionError("store delta path unexpectedly rebuilt from scratch")

        warm._build_index = forbid_build
        store.load_or_build(warm, lake)  # prior snapshot + delta, no build
        assert store.contains(warm, lake)  # updated entry persisted for B

        rebuilt = D3LSearcher().index(lake)
        assert rankings(warm, tus_bench.query_tables) == rankings(
            rebuilt, tus_bench.query_tables
        )

    def test_manifest_records_table_fingerprints(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path)
        lake = fresh_lake(tus_bench)
        searcher = ValueOverlapSearcher().index(lake)
        entry = store.save(searcher, lake)
        manifest = json.loads((entry / "manifest.json").read_text())
        assert manifest["table_fingerprints"] == lake.table_fingerprints()

    def test_entry_without_fingerprints_falls_back_to_build(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path)
        lake = fresh_lake(tus_bench)
        searcher = ValueOverlapSearcher().index(lake)
        entry = store.save(searcher, lake)
        manifest = json.loads((entry / "manifest.json").read_text())
        del manifest["table_fingerprints"]
        (entry / "manifest.json").write_text(json.dumps(manifest))

        mutate_tenth(lake, tus_bench)
        built = store.load_or_build(ValueOverlapSearcher(), lake)
        rebuilt = ValueOverlapSearcher().index(lake)
        assert rankings(built, tus_bench.query_tables) == rankings(
            rebuilt, tus_bench.query_tables
        )

    def test_delta_fraction_zero_disables_updates(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path, max_delta_fraction=0.0)
        lake = fresh_lake(tus_bench)
        store.load_or_build(ValueOverlapSearcher(), lake)
        mutate_tenth(lake, tus_bench)
        searcher = ValueOverlapSearcher()
        calls = {"updates": 0}
        original = searcher.update_index

        def counting_update(**kwargs):
            calls["updates"] += 1
            return original(**kwargs)

        searcher.update_index = counting_update
        store.load_or_build(searcher, lake)
        assert calls["updates"] == 0  # threshold suppressed the delta path

    def test_invalid_delta_fraction_rejected(self, tmp_path):
        with pytest.raises(ServingError):
            IndexStore(tmp_path, max_delta_fraction=1.5)
        with pytest.raises(ServingError):
            IndexStore(tmp_path, max_entries_per_backend=0)

    def test_save_evicts_superseded_entries(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path, max_entries_per_backend=2)
        lake = fresh_lake(tus_bench)
        searcher = ValueOverlapSearcher()
        store.load_or_build(searcher, lake)
        for round_number in range(4):  # 4 more content versions
            lake.add_table(make_table(f"churn{round_number}", seed=str(round_number)))
            searcher.refresh()
            store.save(searcher, lake)
        entries = list(store.backend_dir(searcher).glob("*/manifest.json"))
        assert len(entries) == 2  # oldest snapshots evicted
        assert store.contains(searcher, lake)  # newest content always kept

    def test_eviction_disabled_with_none(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path, max_entries_per_backend=None)
        lake = fresh_lake(tus_bench)
        searcher = ValueOverlapSearcher()
        store.load_or_build(searcher, lake)
        for round_number in range(3):
            lake.add_table(make_table(f"keep{round_number}", seed=str(round_number)))
            searcher.refresh()
            store.save(searcher, lake)
        assert len(list(store.backend_dir(searcher).glob("*/manifest.json"))) == 4


# ---------------------------------------------------------------- QueryService
class TestServiceRefresh:
    def test_refresh_before_warm_raises(self):
        with pytest.raises(ServingError):
            QueryService(ValueOverlapSearcher()).refresh()

    def test_refresh_drops_stale_cache_and_matches_fresh(self, tus_bench):
        lake = fresh_lake(tus_bench)
        service = QueryService(ValueOverlapSearcher(), parallelism="serial").warm(lake)
        query = tus_bench.query_tables[0]
        stale = service.search(query, 8)
        assert service.cache_stats["size"] == 1

        mutate_tenth(lake, tus_bench)
        assert service.search(query, 8) == stale  # stale-but-consistent pre-refresh

        service.refresh()
        assert service.cache_stats["size"] == 0
        fresh = QueryService(ValueOverlapSearcher(), parallelism="serial").warm(lake)
        assert service.search(query, 8) == fresh.search(query, 8)

    def test_refresh_noop_keeps_cache(self, tus_bench):
        lake = fresh_lake(tus_bench)
        service = QueryService(ValueOverlapSearcher(), parallelism="serial").warm(lake)
        service.search(tus_bench.query_tables[0], 8)
        service.refresh()
        assert service.cache_stats["size"] == 1

    def test_refresh_persists_updated_index(self, tus_bench, tmp_path):
        store = IndexStore(tmp_path)
        lake = fresh_lake(tus_bench)
        service = QueryService(
            ValueOverlapSearcher(), store=store, parallelism="serial"
        ).warm(lake)
        mutate_tenth(lake, tus_bench)
        service.refresh()
        assert store.contains(service.searcher, lake)


# ------------------------------------------------------------------- Discovery
class TestDiscoveryRefresh:
    def test_refresh_requires_attached_lake(self):
        with pytest.raises(ConfigurationError):
            Discovery.from_config({"searcher": {"name": "overlap"}}).refresh()

    def test_refresh_is_lazy_per_backend(self, tus_bench):
        lake = fresh_lake(tus_bench)
        discovery = Discovery.from_config({"searcher": {"name": "overlap"}}).attach(lake)
        discovery.search(tus_bench.query_tables[0], 5, backend="d3l")  # build a 2nd backend
        mutate_tenth(lake, tus_bench)
        discovery.refresh()
        assert discovery._stale_backends == {"overlap", "d3l"}
        discovery.search(tus_bench.query_tables[0], 5)  # default backend syncs
        assert discovery._stale_backends == {"d3l"}  # d3l still pending

    def test_refreshed_rankings_match_fresh_discovery(self, tus_bench):
        lake = fresh_lake(tus_bench)
        discovery = Discovery.from_config({"searcher": {"name": "overlap"}}).attach(lake)
        mutate_tenth(lake, tus_bench)
        discovery.refresh()
        refreshed = discovery.search(tus_bench.query_tables[0], 8)
        fresh = Discovery.from_config({"searcher": {"name": "overlap"}}).attach(lake)
        assert refreshed == fresh.search(tus_bench.query_tables[0], 8)

    def test_run_applies_pending_refresh_through_cached_pipeline(self, tus_bench):
        # Regression: pipeline() used to return the cached DustPipeline
        # without consulting the stale set, so run() after refresh() served
        # the pre-mutation index.
        lake = fresh_lake(tus_bench)
        discovery = Discovery.from_config(
            {"searcher": {"name": "overlap"}, "pipeline": {"k": 4, "num_search_tables": 4}}
        ).attach(lake)
        query = tus_bench.query_tables[0]
        discovery.run(query)  # builds and caches the pipeline
        clone = query.copy(name="query_clone_in_lake")
        lake.add_table(clone)  # a perfect-overlap table the old index can't know
        discovery.refresh()
        result = discovery.run(query)
        assert not discovery._stale_backends
        assert result.search_results[0].table_name == "query_clone_in_lake"

    def test_refresh_with_serving_invalidates_result_cache(self, tus_bench, tmp_path):
        lake = fresh_lake(tus_bench)
        discovery = Discovery.from_config(
            {
                "searcher": {"name": "overlap"},
                "serving": {"store_dir": str(tmp_path), "parallelism": "serial"},
            }
        ).attach(lake)
        query = tus_bench.query_tables[0]
        discovery.search(query, 8)
        mutate_tenth(lake, tus_bench)
        discovery.refresh()
        refreshed = discovery.search(query, 8)
        fresh = Discovery.from_config({"searcher": {"name": "overlap"}}).attach(lake)
        assert refreshed == fresh.search(query, 8)
