"""Tests for tuple serialization and the column encoders."""

import numpy as np
import pytest

from repro.cluster.distance import cosine_distance
from repro.datalake import Table
from repro.embeddings import (
    AlignedTuple,
    CellLevelColumnEncoder,
    ColumnLevelColumnEncoder,
    FastTextLikeModel,
    RobertaLikeModel,
    StarmieColumnEncoder,
    serialize_column,
    serialize_tuple,
)
from repro.embeddings.serialization import serialize_aligned_tuple
from repro.embeddings.tokenizer import CLS_TOKEN, SEP_TOKEN
from repro.utils.errors import EmbeddingError


class TestSerializeTuple:
    def test_paper_example_format(self):
        serialized = serialize_tuple(
            {"Park Name": "River Park", "Supervisor": "Vera Onate",
             "City": "Fresno", "Country": "USA"},
            ["Park Name", "Supervisor", "City", "Country"],
        )
        assert serialized == (
            "[CLS] Park Name River Park [SEP] Supervisor Vera Onate [SEP] "
            "City Fresno [SEP] Country USA [SEP]"
        )

    def test_nulls_are_skipped(self):
        serialized = serialize_tuple(
            {"Park Name": "Chippewa Park", "City": None, "Country": "USA"},
            ["Park Name", "City", "Country"],
        )
        assert "City" not in serialized
        assert "Country USA" in serialized

    def test_missing_columns_are_skipped(self):
        serialized = serialize_tuple({"a": 1}, ["a", "b"])
        assert serialized.count(SEP_TOKEN) == 1

    def test_all_null_tuple_still_serializes(self):
        serialized = serialize_tuple({}, ["a", "b"])
        assert serialized.startswith(CLS_TOKEN)
        assert SEP_TOKEN in serialized

    def test_empty_column_order_rejected(self):
        with pytest.raises(EmbeddingError):
            serialize_tuple({"a": 1}, [])

    def test_column_order_controls_output(self):
        values = {"a": 1, "b": 2}
        assert serialize_tuple(values, ["a", "b"]) != serialize_tuple(values, ["b", "a"])


class TestAlignedTuple:
    def test_as_row_and_present_columns(self):
        aligned = AlignedTuple(
            source_table="lake", source_row=3, values={"a": 1, "b": None}
        )
        assert aligned.as_row(["a", "b", "c"]) == (1, None, None)
        assert aligned.present_columns(["a", "b", "c"]) == ["a"]

    def test_serialize_aligned_tuple(self):
        aligned = AlignedTuple(source_table="lake", source_row=0, values={"a": "x"})
        assert "a x" in serialize_aligned_tuple(aligned, ["a", "b"])


class TestSerializeColumn:
    def test_header_and_values(self):
        sentence = serialize_column("Country", ["USA", None, "UK"])
        assert sentence == "Country USA UK"

    def test_max_values(self):
        sentence = serialize_column("c", ["a", "b", "c"], max_values=2)
        assert sentence == "c a b"


@pytest.fixture(scope="module")
def park_tables() -> tuple[Table, Table]:
    parks = Table(
        name="parks",
        columns=["Park Name", "Supervisor", "Country"],
        rows=[
            ("River Park", "Vera Onate", "USA"),
            ("Hyde Park", "Jenny Rishi", "UK"),
            ("Grant Park", "Alice Morgan", "USA"),
        ],
    )
    paintings = Table(
        name="paintings",
        columns=["Painting", "Medium", "Country"],
        rows=[
            ("Northern Lake", "Oil on canvas", "Canada"),
            ("Memory Landscape", "Mixed media", "USA"),
            ("Harbor Dusk", "Watercolor", "Canada"),
        ],
    )
    return parks, paintings


class TestColumnEncoders:
    def test_cell_level_shape_and_determinism(self, park_tables):
        parks, _ = park_tables
        encoder = CellLevelColumnEncoder(FastTextLikeModel())
        vector = encoder.encode_column("Park Name", parks.column_values("Park Name"))
        assert vector.shape == (300,)
        assert np.allclose(
            vector, encoder.encode_column("Park Name", parks.column_values("Park Name"))
        )

    def test_cell_level_empty_column_uses_header(self):
        encoder = CellLevelColumnEncoder(FastTextLikeModel())
        vector = encoder.encode_column("Country", [None, None])
        assert np.linalg.norm(vector) > 0

    def test_column_level_same_content_closer_than_other_topic(self, park_tables):
        parks, paintings = park_tables
        encoder = ColumnLevelColumnEncoder(RobertaLikeModel())
        encoder.fit_tables([parks, paintings])
        park_names = encoder.encode_column("Park Name", parks.column_values("Park Name"))
        park_names_again = encoder.encode_column(
            "Name", parks.column_values("Park Name")[:2]
        )
        painting_names = encoder.encode_column(
            "Painting", paintings.column_values("Painting")
        )
        assert cosine_distance(park_names, park_names_again) < cosine_distance(
            park_names, painting_names
        )

    def test_column_level_invalid_token_limit(self):
        with pytest.raises(ValueError):
            ColumnLevelColumnEncoder(RobertaLikeModel(), token_limit=0)

    def test_starmie_encoder_pulls_same_table_columns_together(self, park_tables):
        parks, paintings = park_tables
        plain = ColumnLevelColumnEncoder(RobertaLikeModel())
        starmie = StarmieColumnEncoder(RobertaLikeModel(), table_context_weight=0.6)
        plain_vectors = {
            column: plain.encode_column(column, parks.column_values(column))
            for column in parks.columns
        }
        starmie_vectors = starmie.encode_table_columns(parks)

        def mean_pairwise_distance(vectors):
            columns = list(vectors)
            distances = [
                cosine_distance(vectors[a], vectors[b])
                for i, a in enumerate(columns)
                for b in columns[i + 1 :]
            ]
            return float(np.mean(distances))

        assert mean_pairwise_distance(starmie_vectors) < mean_pairwise_distance(plain_vectors)

    def test_starmie_table_embedding(self, park_tables):
        parks, paintings = park_tables
        encoder = StarmieColumnEncoder(RobertaLikeModel())
        parks_embedding = encoder.encode_table(parks)
        paintings_embedding = encoder.encode_table(paintings)
        assert parks_embedding.shape == (768,)
        assert cosine_distance(parks_embedding, paintings_embedding) > 0.0

    def test_starmie_invalid_weight(self):
        with pytest.raises(ValueError):
            StarmieColumnEncoder(RobertaLikeModel(), table_context_weight=1.0)

    def test_cell_level_invalid_max_cells(self):
        with pytest.raises(ValueError):
            CellLevelColumnEncoder(FastTextLikeModel(), max_cells=0)
